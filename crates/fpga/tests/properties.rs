//! Property tests for the FPGA models.

use proptest::prelude::*;

use mp_bnn::FinnTopology;
use mp_fpga::cycle_model::{engine_cycles, fps, valid_p, valid_s};
use mp_fpga::design::DesignPoint;
use mp_fpga::device::Device;
use mp_fpga::folding::{EngineFolding, Folding, FoldingSearch};
use mp_fpga::memory::MemoryModel;
use mp_fpga::stream_sim::StreamSim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_parallel_conv_takes_output_pixels(engine_idx in 0usize..6) {
        let engines = FinnTopology::paper().engines();
        let e = &engines[engine_idx];
        // Fully unfolded: one output tile per cycle ⇒ OH·OW cycles.
        prop_assert_eq!(
            engine_cycles(e, e.weight_rows(), e.weight_cols()),
            e.output_pixels() as u64
        );
    }

    #[test]
    fn cycles_scale_inversely_with_folding(engine_idx in 0usize..9, pi in 0usize..4, si in 0usize..4) {
        let engines = FinnTopology::paper().engines();
        let e = &engines[engine_idx];
        let ps = valid_p(e);
        let ss = valid_s(e);
        let p = ps[pi % ps.len()];
        let s = ss[si % ss.len()];
        // Exact divisor folding: cycles × P × S = cycles(1,1).
        prop_assert_eq!(
            engine_cycles(e, p, s) * (p * s) as u64,
            engine_cycles(e, 1, 1)
        );
    }

    #[test]
    fn fps_monotone_in_cycles(c1 in 1u64..10_000_000, c2 in 1u64..10_000_000) {
        prop_assume!(c1 < c2);
        prop_assert!(fps(100e6, c1) > fps(100e6, c2));
    }

    #[test]
    fn design_points_internally_consistent(target in 30_000u64..2_000_000) {
        let engines = FinnTopology::paper().engines();
        let folding = FoldingSearch::new(&engines).balanced(target);
        let device = Device::zc702();
        let p = DesignPoint::evaluate(&engines, &folding, &device, false);
        prop_assert_eq!(p.total_pe, folding.total_pe());
        prop_assert_eq!(
            p.bottleneck_cycles,
            *p.engine_cycles.iter().max().unwrap()
        );
        prop_assert!(p.obtained_fps < p.expected_fps);
        prop_assert!((p.bram_pct - 100.0 * p.bram_18k as f64 / 280.0).abs() < 1e-9);
    }

    #[test]
    fn partitioned_memory_never_worse_per_engine(
        engine_idx in 0usize..9, p_pick in 0usize..3, s_pick in 0usize..3
    ) {
        let engines = FinnTopology::paper().engines();
        let e = &engines[engine_idx];
        let ps = valid_p(e);
        let ss = valid_s(e);
        let f = EngineFolding::new(ps[p_pick % ps.len()], ss[s_pick % ss.len()]);
        let naive = MemoryModel::naive().allocate_engine(e, f);
        let part = MemoryModel::partitioned().allocate_engine(e, f);
        prop_assert!(part.bram_18k() <= naive.bram_18k());
        // Partitioning never changes what is stored.
        prop_assert_eq!(part.weights.stored_bits, naive.weights.stored_bits);
    }

    #[test]
    fn stream_sim_image_conservation(batch in 1usize..300) {
        // Makespan × throughput = batch, by construction — guard the
        // arithmetic stays consistent under refactors.
        let sim = StreamSim::new(vec![1e-3, 2e-3], 2, 5e-4);
        let r = sim.run(batch);
        prop_assert!((r.throughput_fps * r.makespan_s - batch as f64).abs() < 1e-6);
        prop_assert!(r.mean_latency_s >= r.first_latency_s.min(1e9) * 0.0);
        prop_assert!(r.first_latency_s > 0.0);
    }

    #[test]
    fn folding_total_pe_counts(ps in proptest::collection::vec((1usize..16, 1usize..16), 1..6)) {
        let engines: Vec<EngineFolding> =
            ps.iter().map(|&(p, s)| EngineFolding::new(p, s)).collect();
        let folding = Folding::new(engines);
        prop_assert_eq!(folding.total_pe(), ps.iter().map(|&(p, _)| p).sum::<usize>());
        prop_assert_eq!(
            folding.total_lanes(),
            ps.iter().map(|&(p, s)| p * s).sum::<usize>()
        );
    }
}
