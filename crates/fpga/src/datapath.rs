//! Compute-datapath area model.
//!
//! FINN builds each engine's datapath from `P` processing elements of
//! `S` SIMD lanes. For binary activations a lane is an XNOR gate feeding
//! a popcount tree; for an `n`-bit partially-binarised activation the
//! lane becomes an add/subtract of an `n`-bit operand, costing roughly
//! `n` LUTs where the XNOR lane costs one — the area trade quantified by
//! the `partial_binarisation` bench.

use serde::{Deserialize, Serialize};

use mp_bnn::EngineSpec;

use crate::folding::EngineFolding;

/// LUT cost model of the FINN compute fabric.
///
/// # Example
///
/// ```
/// use mp_fpga::datapath::DatapathModel;
///
/// let m = DatapathModel::default();
/// assert!(m.infra_luts > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatapathModel {
    /// Fixed cost of the shell: AXI data movers, control, the sliding
    /// window units' address generators.
    pub infra_luts: u64,
    /// Per-engine cost independent of folding.
    pub engine_luts: u64,
    /// LUTs per SIMD lane *per activation bit* (XNOR + popcount slice at
    /// 1 bit; ripple partial products at `n` bits).
    pub luts_per_lane_bit: u64,
    /// LUTs per PE (accumulator + threshold comparator).
    pub luts_per_pe: u64,
}

impl Default for DatapathModel {
    fn default() -> Self {
        Self {
            infra_luts: 14_000,
            engine_luts: 600,
            luts_per_lane_bit: 6,
            luts_per_pe: 40,
        }
    }
}

impl DatapathModel {
    /// LUTs of one engine's datapath under `folding`, accounting for the
    /// engine's activation input width.
    pub fn engine_luts(&self, spec: &EngineSpec, folding: EngineFolding) -> u64 {
        let lane_bits = spec.input_bits.max(1) as u64;
        self.engine_luts
            + folding.p as u64
                * (folding.s as u64 * self.luts_per_lane_bit * lane_bits + self.luts_per_pe)
    }

    /// Total compute LUTs for a network of engines.
    ///
    /// # Panics
    ///
    /// Panics if `foldings` has a different length than `specs`.
    pub fn network_luts(&self, specs: &[EngineSpec], foldings: &[EngineFolding]) -> u64 {
        assert_eq!(specs.len(), foldings.len(), "engine count mismatch");
        self.infra_luts
            + specs
                .iter()
                .zip(foldings)
                .map(|(spec, &f)| self.engine_luts(spec, f))
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_bnn::FinnTopology;

    #[test]
    fn wider_activations_cost_more_lanes() {
        let model = DatapathModel::default();
        let engines = FinnTopology::paper().engines();
        let wide = FinnTopology::paper().engines_partially_binarised(4);
        let f = EngineFolding::new(8, 16);
        // Inner engines grow 4× in *lane* cost; the first engine
        // (already 8-bit) is unchanged.
        let base = model.engine_luts(&engines[1], f);
        let grown = model.engine_luts(&wide[1], f);
        let lane_cost = f.lanes() as u64 * model.luts_per_lane_bit;
        assert_eq!(grown - base, 3 * lane_cost, "extra bits cost 3 extra lanes");
        assert!(grown > base * 2);
        assert_eq!(
            model.engine_luts(&wide[0], f),
            model.engine_luts(&engines[0], f)
        );
    }

    #[test]
    fn network_cost_includes_infrastructure() {
        let model = DatapathModel::default();
        let engines = FinnTopology::paper().engines();
        let foldings: Vec<EngineFolding> =
            engines.iter().map(|_| EngineFolding::new(1, 1)).collect();
        let total = model.network_luts(&engines, &foldings);
        assert!(total > model.infra_luts);
        let per_engine: u64 = engines
            .iter()
            .zip(&foldings)
            .map(|(s, &f)| model.engine_luts(s, f))
            .sum();
        assert_eq!(total, model.infra_luts + per_engine);
    }

    #[test]
    #[should_panic(expected = "engine count mismatch")]
    fn mismatched_lengths_panic() {
        let model = DatapathModel::default();
        let engines = FinnTopology::paper().engines();
        let _ = model.network_luts(&engines, &[EngineFolding::new(1, 1)]);
    }

    #[test]
    fn more_parallelism_more_luts() {
        let model = DatapathModel::default();
        let engines = FinnTopology::paper().engines();
        let small = model.engine_luts(&engines[1], EngineFolding::new(2, 4));
        let big = model.engine_luts(&engines[1], EngineFolding::new(8, 16));
        assert!(big > small);
    }
}
