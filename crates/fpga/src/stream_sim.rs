//! Discrete-event simulation of the FINN streaming pipeline.
//!
//! FINN is "a streaming multi-layer pipeline architecture where every
//! layer is composed of a compute engine surrounded by input/output
//! buffers" (paper §II). [`StreamSim`] models each engine as a single
//! server with a fixed per-image service time (its folded cycle count at
//! the device clock) connected by finite FIFOs, and replays a batch
//! through the pipeline. This produces the *obtained* performance next
//! to the cycle model's *expected* values: ramp-up/ramp-down, FIFO
//! back-pressure, and the serialised input-transfer overhead all show up
//! here — the effects the paper attributes its expected/obtained gap and
//! batch-size behaviour to.

use std::fmt;

use mp_obs::{schema, ObsEvent, Recorder};
use serde::{Deserialize, Error, Serialize, Value};

/// An invalid streaming-pipeline or stream-fault configuration.
///
/// The checked constructors ([`StreamSim::try_new`],
/// [`StreamFaults::try_new`]) return this instead of panicking, and the
/// `Deserialize` impls route through them so a config read back from
/// disk cannot smuggle an invariant-violating value past validation
/// (the same pattern `BitVec` and `Folding` use).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamConfigError {
    /// The pipeline has no stages.
    EmptyPipeline,
    /// A stage's service time is negative (or NaN).
    BadServiceTime {
        /// Index of the offending stage.
        stage: usize,
        /// The rejected value.
        value: f64,
    },
    /// The inter-stage FIFO capacity is zero.
    ZeroFifoCapacity,
    /// The source interval is negative (or NaN).
    BadSourceInterval(f64),
    /// The stall probability is outside `[0, 1]` (or NaN).
    BadStallRate(f64),
    /// The stall duration is negative (or NaN).
    BadStallDuration(f64),
    /// The jitter fraction is outside `[0, 1]` (or NaN).
    BadJitterFraction(f64),
}

impl fmt::Display for StreamConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyPipeline => write!(f, "pipeline needs at least one stage"),
            Self::BadServiceTime { stage, value } => {
                write!(
                    f,
                    "stage {stage}: service time {value} must be non-negative"
                )
            }
            Self::ZeroFifoCapacity => write!(f, "FIFO capacity must be positive"),
            Self::BadSourceInterval(v) => {
                write!(f, "source interval {v} must be non-negative")
            }
            Self::BadStallRate(v) => write!(f, "stall rate {v} must be in [0,1]"),
            Self::BadStallDuration(v) => {
                write!(f, "stall duration {v} must be non-negative")
            }
            Self::BadJitterFraction(v) => write!(f, "jitter {v} must be in [0,1]"),
        }
    }
}

impl std::error::Error for StreamConfigError {}

/// Deterministic fault model for [`StreamSim`]: seeded source stalls and
/// source-interval jitter.
///
/// The paper's obtained-vs-expected gap (§III-A) is dominated by the
/// serialised input transfer; in deployment that transfer also
/// *misbehaves* — DMA contention stalls the source, and arrival spacing
/// jitters around its nominal interval. `StreamFaults` injects both,
/// keyed purely on `(seed, image index)` so the same plan replays
/// byte-identically regardless of when or where it runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamFaults {
    /// Root seed; all per-image decisions derive from it.
    pub seed: u64,
    /// Probability that an image's arrival is preceded by a stall.
    pub stall_rate: f64,
    /// Duration of each injected stall, in seconds.
    pub stall_s: f64,
    /// Source-interval jitter as a fraction of the nominal interval:
    /// each inter-arrival gap is scaled by a factor drawn uniformly from
    /// `[1 − jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
}

impl StreamFaults {
    /// A fault-free plan: [`StreamSim::run_with_faults`] with this plan
    /// is byte-identical to [`StreamSim::run`].
    pub fn none() -> Self {
        Self {
            seed: 0,
            stall_rate: 0.0,
            stall_s: 0.0,
            jitter_frac: 0.0,
        }
    }

    /// Creates a fault-free plan carrying only a seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::none()
        }
    }

    /// Creates a fully-specified plan, validating every invariant the
    /// builder methods assert.
    ///
    /// # Errors
    ///
    /// Returns [`StreamConfigError`] if `stall_rate` or `jitter_frac`
    /// is outside `[0, 1]` or `stall_s` is negative (NaN fails every
    /// range check).
    pub fn try_new(
        seed: u64,
        stall_rate: f64,
        stall_s: f64,
        jitter_frac: f64,
    ) -> Result<Self, StreamConfigError> {
        if !(0.0..=1.0).contains(&stall_rate) {
            return Err(StreamConfigError::BadStallRate(stall_rate));
        }
        if stall_s.is_nan() || stall_s < 0.0 {
            return Err(StreamConfigError::BadStallDuration(stall_s));
        }
        if !(0.0..=1.0).contains(&jitter_frac) {
            return Err(StreamConfigError::BadJitterFraction(jitter_frac));
        }
        Ok(Self {
            seed,
            stall_rate,
            stall_s,
            jitter_frac,
        })
    }

    /// Sets the stall process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `stall_s` is negative;
    /// use [`Self::try_new`] to handle invalid values gracefully.
    pub fn with_stalls(self, rate: f64, stall_s: f64) -> Self {
        match Self::try_new(self.seed, rate, stall_s, self.jitter_frac) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the source-interval jitter fraction.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`; use [`Self::try_new`] to
    /// handle invalid values gracefully.
    pub fn with_jitter(self, frac: f64) -> Self {
        match Self::try_new(self.seed, self.stall_rate, self.stall_s, frac) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        (self.stall_rate == 0.0 || self.stall_s == 0.0) && self.jitter_frac == 0.0
    }

    /// The injected stall before image `index`, in seconds (0 if none).
    pub fn stall_before(&self, index: usize) -> f64 {
        if self.stall_rate > 0.0 && unit_hash(self.seed, index as u64, 0) < self.stall_rate {
            self.stall_s
        } else {
            0.0
        }
    }

    /// The jitter factor applied to the gap before image `index`.
    pub fn gap_factor(&self, index: usize) -> f64 {
        if self.jitter_frac == 0.0 {
            1.0
        } else {
            1.0 + self.jitter_frac * (2.0 * unit_hash(self.seed, index as u64, 1) - 1.0)
        }
    }
}

impl Default for StreamFaults {
    fn default() -> Self {
        Self::none()
    }
}

// Manual Deserialize: a plan read back from disk must re-validate the
// ranges `with_stalls`/`with_jitter` assert, or a corrupted record
// would misbehave (negative stalls rewind virtual time, a >1 rate is
// nonsense) long after the load site.
impl<'de> Deserialize<'de> for StreamFaults {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seed = u64::from_value(value.get_field("seed")?)?;
        let stall_rate = f64::from_value(value.get_field("stall_rate")?)?;
        let stall_s = f64::from_value(value.get_field("stall_s")?)?;
        let jitter_frac = f64::from_value(value.get_field("jitter_frac")?)?;
        StreamFaults::try_new(seed, stall_rate, stall_s, jitter_frac).map_err(Error::custom)
    }
}

/// SplitMix64-style hash of `(seed, index, salt)` folded into `[0, 1)`.
/// Deterministic across platforms; no RNG state to thread around.
fn unit_hash(seed: u64, index: u64, salt: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Result of simulating one batch through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Time from first input to last output, in seconds.
    pub makespan_s: f64,
    /// Batch throughput: images per second over the makespan.
    pub throughput_fps: f64,
    /// Latency of the first image (pipeline ramp-up), in seconds.
    pub first_latency_s: f64,
    /// Mean per-image latency, in seconds.
    pub mean_latency_s: f64,
}

/// A streaming pipeline of single-server stages with finite FIFOs.
///
/// # Example
///
/// ```
/// use mp_fpga::stream_sim::StreamSim;
///
/// // Three balanced stages of 1 ms each, generous FIFOs.
/// let sim = StreamSim::new(vec![1e-3, 1e-3, 1e-3], 4, 0.0);
/// let r = sim.run(100);
/// // Steady state: one image per bottleneck interval.
/// assert!((r.throughput_fps - 1000.0).abs() / 1000.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamSim {
    service_s: Vec<f64>,
    fifo_capacity: usize,
    source_interval_s: f64,
}

// Manual Deserialize: the asserted invariants (non-empty stage list,
// non-negative service times, positive FIFO capacity) must hold for
// data read back from disk too, or `run` panics — or worse, silently
// simulates nonsense — far from the load site.
impl<'de> Deserialize<'de> for StreamSim {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let service_s = Vec::<f64>::from_value(value.get_field("service_s")?)?;
        let fifo_capacity = usize::from_value(value.get_field("fifo_capacity")?)?;
        let source_interval_s = f64::from_value(value.get_field("source_interval_s")?)?;
        StreamSim::try_new(service_s, fifo_capacity, source_interval_s).map_err(Error::custom)
    }
}

impl StreamSim {
    /// Creates a pipeline.
    ///
    /// `service_s` is the per-image service time of each stage;
    /// `fifo_capacity` is the number of images each inter-stage FIFO
    /// holds; `source_interval_s` is the minimum spacing between input
    /// images (0 for an always-ready source).
    ///
    /// # Panics
    ///
    /// Panics if there are no stages, a service time is negative, or
    /// `fifo_capacity` is zero; use [`Self::try_new`] to handle the
    /// invalid cases gracefully.
    pub fn new(service_s: Vec<f64>, fifo_capacity: usize, source_interval_s: f64) -> Self {
        match Self::try_new(service_s, fifo_capacity, source_interval_s) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a pipeline, rejecting invalid configurations with a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Returns [`StreamConfigError`] if there are no stages, a service
    /// time is negative, `fifo_capacity` is zero, or the source
    /// interval is negative (NaN fails every range check).
    pub fn try_new(
        service_s: Vec<f64>,
        fifo_capacity: usize,
        source_interval_s: f64,
    ) -> Result<Self, StreamConfigError> {
        if service_s.is_empty() {
            return Err(StreamConfigError::EmptyPipeline);
        }
        let bad = |s: f64| s.is_nan() || s < 0.0;
        if let Some((stage, &value)) = service_s.iter().enumerate().find(|&(_, &s)| bad(s)) {
            return Err(StreamConfigError::BadServiceTime { stage, value });
        }
        if fifo_capacity == 0 {
            return Err(StreamConfigError::ZeroFifoCapacity);
        }
        if bad(source_interval_s) {
            return Err(StreamConfigError::BadSourceInterval(source_interval_s));
        }
        Ok(Self {
            service_s,
            fifo_capacity,
            source_interval_s,
        })
    }

    /// Builds a pipeline from per-engine cycle counts at a device clock.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StreamSim::new`]; additionally `clock_hz`
    /// must be positive.
    pub fn from_cycles(cycles: &[u64], clock_hz: f64, fifo_capacity: usize) -> Self {
        assert!(clock_hz > 0.0, "clock must be positive");
        Self::new(
            cycles.iter().map(|&c| c as f64 / clock_hz).collect(),
            fifo_capacity,
            0.0,
        )
    }

    /// Sets the source interval (e.g. DMA transfer time per image).
    pub fn with_source_interval(mut self, interval_s: f64) -> Self {
        assert!(interval_s >= 0.0, "source interval must be non-negative");
        self.source_interval_s = interval_s;
        self
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.service_s.len()
    }

    /// The pipeline's steady-state initiation interval: the slowest of
    /// the source and any stage.
    pub fn bottleneck_interval_s(&self) -> f64 {
        self.service_s
            .iter()
            .copied()
            .fold(self.source_interval_s, f64::max)
    }

    /// Replays `batch` images through the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn run(&self, batch: usize) -> SimResult {
        self.run_with_faults(batch, &StreamFaults::none())
    }

    /// Replays `batch` images with `faults` perturbing the source: each
    /// image's arrival is delayed by seeded stalls and its inter-arrival
    /// gap scaled by seeded jitter. With [`StreamFaults::none`] this is
    /// byte-identical to [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn run_with_faults(&self, batch: usize, faults: &StreamFaults) -> SimResult {
        self.run_with_faults_obs(batch, faults, &mp_obs::NULL_RECORDER)
    }

    /// [`StreamSim::run_with_faults`] with the simulated schedule written
    /// into `rec` as **virtual-time** observations: one `stream.stage<i>`
    /// span per image per stage (timestamps are virtual nanoseconds since
    /// the batch start, not wall time), a `stream.latency_s` histogram of
    /// per-image latencies, a `stream.images` counter, and one
    /// [`ObsEvent::Stream`] per image (oldest dropped beyond the event
    /// cap).
    ///
    /// Recording is strictly passive: the returned [`SimResult`] is
    /// byte-identical to the uninstrumented path.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn run_with_faults_obs(
        &self,
        batch: usize,
        faults: &StreamFaults,
        rec: &dyn Recorder,
    ) -> SimResult {
        assert!(batch > 0, "batch must be positive");
        let m = self.service_s.len();
        let cap = self.fifo_capacity;
        let fault_free = faults.is_none();
        let stage_names;
        let obs: Option<(&dyn Recorder, &[String])> = if rec.enabled() {
            stage_names = (0..m)
                .map(|i| format!("{}{i}", schema::SPAN_STREAM_STAGE_PREFIX))
                .collect::<Vec<_>>();
            Some((rec, stage_names.as_slice()))
        } else {
            None
        };
        let virt_ns = |s: f64| (s.max(0.0) * 1e9) as u64;
        // departures[j][i]: when image j leaves stage i (it has also
        // secured a slot downstream — blocking-after-service).
        let mut departures = vec![vec![0.0f64; m]; batch];
        let mut latencies = Vec::with_capacity(batch);
        let mut prev_arrival = 0.0f64;
        for j in 0..batch {
            let arrival = if fault_free {
                j as f64 * self.source_interval_s
            } else if j == 0 {
                faults.stall_before(0)
            } else {
                prev_arrival
                    + self.source_interval_s * faults.gap_factor(j)
                    + faults.stall_before(j)
            };
            prev_arrival = arrival;
            let mut upstream = arrival;
            for i in 0..m {
                // Server free after the previous image left.
                let server_free = if j > 0 { departures[j - 1][i] } else { 0.0 };
                let start = upstream.max(server_free);
                let mut t = start + self.service_s[i];
                // Back-pressure: a slot frees downstream once image
                // j-cap has left stage i+1.
                if i + 1 < m && j >= cap {
                    t = t.max(departures[j - cap][i + 1]);
                }
                departures[j][i] = t;
                upstream = t;
                if let Some((rec, names)) = obs {
                    rec.record_span(&names[i], virt_ns(start), virt_ns(t));
                }
            }
            let latency = departures[j][m - 1] - arrival;
            latencies.push(latency);
            if let Some((rec, _)) = obs {
                rec.observe(schema::HIST_STREAM_LATENCY_S, latency);
                rec.record_event(ObsEvent::Stream {
                    image: j,
                    arrival_s: arrival,
                    departure_s: departures[j][m - 1],
                });
            }
        }
        if let Some((rec, _)) = obs {
            rec.add(schema::CTR_STREAM_IMAGES, batch as u64);
        }
        let makespan = departures[batch - 1][m - 1];
        SimResult {
            makespan_s: makespan,
            throughput_fps: batch as f64 / makespan,
            first_latency_s: latencies[0],
            mean_latency_s: latencies.iter().sum::<f64>() / batch as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_throughput_is_inverse_service() {
        let sim = StreamSim::new(vec![2e-3], 2, 0.0);
        let r = sim.run(500);
        assert!((r.throughput_fps - 500.0).abs() < 1.0);
        assert!((r.first_latency_s - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_stage_sets_steady_state() {
        let sim = StreamSim::new(vec![1e-3, 5e-3, 1e-3], 4, 0.0);
        let r = sim.run(1000);
        // ≈ 200 fps from the 5 ms stage.
        assert!((r.throughput_fps - 200.0).abs() / 200.0 < 0.02);
    }

    #[test]
    fn ramp_up_latency_is_sum_of_services() {
        let sim = StreamSim::new(vec![1e-3, 2e-3, 3e-3], 8, 0.0);
        let r = sim.run(1);
        assert!((r.first_latency_s - 6e-3).abs() < 1e-9);
        assert!((r.makespan_s - 6e-3).abs() < 1e-9);
    }

    #[test]
    fn slow_source_limits_throughput() {
        let sim = StreamSim::new(vec![1e-3], 2, 4e-3);
        let r = sim.run(200);
        assert!((r.throughput_fps - 250.0).abs() / 250.0 < 0.05);
        assert!((sim.bottleneck_interval_s() - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn tight_fifos_create_back_pressure() {
        // Fast stage feeding a slow one: with a 1-slot FIFO the fast
        // stage blocks, so per-image latency in the fast stage grows.
        let tight = StreamSim::new(vec![1e-3, 10e-3], 1, 0.0).run(50);
        let loose = StreamSim::new(vec![1e-3, 10e-3], 64, 0.0).run(50);
        // Throughput is bottleneck-bound either way…
        assert!((tight.throughput_fps - loose.throughput_fps).abs() / loose.throughput_fps < 0.05);
        // …but generous FIFOs let later images queue longer upstream.
        assert!(loose.mean_latency_s >= tight.mean_latency_s * 0.9);
    }

    #[test]
    fn larger_batches_amortise_ramp() {
        // The paper: larger batch ⇒ slightly better throughput (ramp is
        // amortised) but higher per-image latency.
        let sim = StreamSim::new(vec![1e-3, 2e-3, 1e-3], 2, 0.0);
        let small = sim.run(4);
        let large = sim.run(400);
        assert!(large.throughput_fps > small.throughput_fps);
        assert!(large.mean_latency_s >= small.mean_latency_s);
    }

    #[test]
    fn from_cycles_converts_clock() {
        let sim = StreamSim::from_cycles(&[100_000, 200_000], 100e6, 2);
        assert!((sim.bottleneck_interval_s() - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn no_faults_is_byte_identical_to_run() {
        let sim = StreamSim::new(vec![1e-3, 2e-3, 1e-3], 2, 5e-4);
        let plain = sim.run(100);
        let faulty = sim.run_with_faults(100, &StreamFaults::seeded(42));
        assert_eq!(plain, faulty);
    }

    #[test]
    fn stalls_reduce_throughput() {
        let sim = StreamSim::new(vec![1e-3], 2, 0.0);
        let clean = sim.run(200);
        let stalled = sim.run_with_faults(200, &StreamFaults::seeded(7).with_stalls(0.5, 5e-3));
        assert!(stalled.throughput_fps < clean.throughput_fps);
        assert!(stalled.makespan_s > clean.makespan_s);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let sim = StreamSim::new(vec![1e-3, 2e-3], 4, 1e-3);
        let f = StreamFaults::seeded(11).with_jitter(0.5);
        let a = sim.run_with_faults(300, &f);
        let b = sim.run_with_faults(300, &f);
        assert_eq!(a, b);
        let c = sim.run_with_faults(300, &StreamFaults::seeded(12).with_jitter(0.5));
        assert_ne!(a, c);
    }

    #[test]
    fn jitter_cannot_make_gaps_negative() {
        let f = StreamFaults::seeded(3).with_jitter(1.0);
        for j in 0..1000 {
            let g = f.gap_factor(j);
            assert!((0.0..=2.0).contains(&g), "gap factor {g}");
        }
    }

    #[test]
    fn instrumented_run_is_passive_and_logs_virtual_time() {
        let sim = StreamSim::new(vec![1e-3, 2e-3, 1e-3], 2, 5e-4);
        let faults = StreamFaults::seeded(5)
            .with_stalls(0.2, 3e-3)
            .with_jitter(0.3);
        let plain = sim.run_with_faults(40, &faults);
        let rec = mp_obs::SharedRecorder::new();
        let obs = sim.run_with_faults_obs(40, &faults, &rec);
        assert_eq!(plain, obs);
        let report = rec.report();
        mp_obs::schema::validate_report(&report).unwrap();
        assert_eq!(report.counter(schema::CTR_STREAM_IMAGES), 40);
        for i in 0..3 {
            let span = report.span(&format!("stream.stage{i}")).unwrap();
            assert_eq!(span.count, 40);
        }
        let lat = report.histogram(schema::HIST_STREAM_LATENCY_S).unwrap();
        assert_eq!(lat.count, 40);
        assert!((lat.sum - plain.mean_latency_s * 40.0).abs() < 1e-9);
        assert_eq!(report.events.len(), 40);
    }

    #[test]
    #[should_panic(expected = "stall rate")]
    fn bad_stall_rate_rejected() {
        let _ = StreamFaults::none().with_stalls(1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let _ = StreamSim::new(vec![], 2, 0.0);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = StreamSim::new(vec![1.0], 1, 0.0).run(0);
    }

    #[test]
    fn stream_sim_deserialize_round_trips() {
        let sim = StreamSim::new(vec![1e-3, 2e-3], 4, 5e-4);
        let round = StreamSim::from_value(&sim.to_value()).expect("valid sim");
        assert_eq!(round, sim);
        let faults = StreamFaults::seeded(7)
            .with_stalls(0.2, 3e-3)
            .with_jitter(0.4);
        let round = StreamFaults::from_value(&faults.to_value()).expect("valid faults");
        assert_eq!(round, faults);
    }

    #[test]
    fn stream_sim_deserialize_rejects_invalid() {
        // Smuggled-invalid structs (constructed directly, bypassing
        // try_new) must fail to deserialize with a typed error, not
        // panic later in run().
        let empty = StreamSim {
            service_s: vec![],
            fifo_capacity: 2,
            source_interval_s: 0.0,
        };
        let err = StreamSim::from_value(&empty.to_value()).unwrap_err();
        assert!(err.to_string().contains("at least one stage"), "{err}");

        let zero_fifo = StreamSim {
            service_s: vec![1e-3],
            fifo_capacity: 0,
            source_interval_s: 0.0,
        };
        let err = StreamSim::from_value(&zero_fifo.to_value()).unwrap_err();
        assert!(err.to_string().contains("FIFO capacity"), "{err}");

        let negative_service = StreamSim {
            service_s: vec![1e-3, -2e-3],
            fifo_capacity: 2,
            source_interval_s: 0.0,
        };
        let err = StreamSim::from_value(&negative_service.to_value()).unwrap_err();
        assert!(err.to_string().contains("stage 1"), "{err}");

        let negative_source = StreamSim {
            service_s: vec![1e-3],
            fifo_capacity: 2,
            source_interval_s: -1.0,
        };
        assert!(StreamSim::from_value(&negative_source.to_value()).is_err());
    }

    #[test]
    fn stream_faults_deserialize_rejects_invalid() {
        let bad_rate = StreamFaults {
            seed: 1,
            stall_rate: 1.5,
            stall_s: 0.0,
            jitter_frac: 0.0,
        };
        let err = StreamFaults::from_value(&bad_rate.to_value()).unwrap_err();
        assert!(err.to_string().contains("stall rate"), "{err}");

        let bad_stall = StreamFaults {
            seed: 1,
            stall_rate: 0.1,
            stall_s: -2.0,
            jitter_frac: 0.0,
        };
        let err = StreamFaults::from_value(&bad_stall.to_value()).unwrap_err();
        assert!(err.to_string().contains("stall duration"), "{err}");

        let bad_jitter = StreamFaults {
            seed: 1,
            stall_rate: 0.1,
            stall_s: 0.0,
            jitter_frac: f64::NAN,
        };
        assert!(StreamFaults::from_value(&bad_jitter.to_value()).is_err());
    }

    #[test]
    fn try_new_matches_new_on_valid_input() {
        let a = StreamSim::try_new(vec![1e-3, 2e-3], 4, 0.0).unwrap();
        let b = StreamSim::new(vec![1e-3, 2e-3], 4, 0.0);
        assert_eq!(a, b);
        let f = StreamFaults::try_new(9, 0.25, 1e-3, 0.5).unwrap();
        let g = StreamFaults::seeded(9)
            .with_stalls(0.25, 1e-3)
            .with_jitter(0.5);
        assert_eq!(f, g);
    }
}
