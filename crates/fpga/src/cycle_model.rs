//! The paper's clock-cycle model: equations (3), (4) and (5).
//!
//! For a convolution engine with `P` processing elements and `S` SIMD
//! lanes (eq. 3):
//!
//! ```text
//! CC_CONV = OD/P · (K·K·ID)/S · OH·OW
//! ```
//!
//! for a fully-connected engine (eq. 4):
//!
//! ```text
//! CC_FC = OD/P · ID/S
//! ```
//!
//! and the engine's frame rate at a given clock (eq. 5):
//!
//! ```text
//! FPS = clock / CC
//! ```
//!
//! The paper validates these against the Vivado HLS Analysis Perspective;
//! here they are the ground truth for the "expected" curves of Figs. 3–4,
//! with the streaming simulator supplying the "obtained" ones.

use mp_bnn::{EngineKind, EngineSpec};

/// Clock cycles for one engine to produce all activations of one image.
///
/// Implements eq. (3) for conv engines and eq. (4) for FC engines. `P`
/// and `S` that do not divide the weight-matrix dimensions are still
/// accepted (the tile iteration count rounds up, matching padded weight
/// memories); use [`valid_p`]/[`valid_s`] to enumerate the paddings-free
/// choices the paper restricts itself to.
///
/// # Panics
///
/// Panics if `p` or `s` is zero.
pub fn engine_cycles(spec: &EngineSpec, p: usize, s: usize) -> u64 {
    assert!(p > 0 && s > 0, "P and S must be positive");
    let od_tiles = spec.out_channels.div_ceil(p) as u64;
    let col_tiles = spec.weight_cols().div_ceil(s) as u64;
    match spec.kind {
        EngineKind::Conv => od_tiles * col_tiles * spec.output_pixels() as u64,
        EngineKind::Fc => od_tiles * col_tiles,
    }
}

/// Eq. (5): frames per second of an engine (or a whole rate-balanced
/// network, using its slowest engine's cycle count).
///
/// # Panics
///
/// Panics if `cycles` is zero.
pub fn fps(clock_hz: f64, cycles: u64) -> f64 {
    assert!(cycles > 0, "cycle count must be positive");
    clock_hz / cycles as f64
}

/// Divisors of the engine's weight-matrix row count `OD`: the valid `P`
/// values that avoid padding the weight memory (paper §III-A).
pub fn valid_p(spec: &EngineSpec) -> Vec<usize> {
    divisors(spec.weight_rows())
}

/// Divisors of the engine's weight-matrix column count: the valid `S`
/// values that avoid padding the weight memory.
pub fn valid_s(spec: &EngineSpec) -> Vec<usize> {
    divisors(spec.weight_cols())
}

/// All divisors of `n`, ascending.
pub fn divisors(n: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d * d != n {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_bnn::FinnTopology;

    fn paper_engines() -> Vec<EngineSpec> {
        FinnTopology::paper().engines()
    }

    #[test]
    fn conv_cycles_match_equation_3() {
        let engines = paper_engines();
        // Engine 2: OD=64, K·K·ID=576, OH·OW=28·28.
        let e = &engines[1];
        assert_eq!(engine_cycles(e, 1, 1), 64 * 576 * 784);
        assert_eq!(engine_cycles(e, 8, 16), (64 / 8) * (576 / 16) * 784);
        assert_eq!(engine_cycles(e, 64, 576), 784);
    }

    #[test]
    fn fc_cycles_match_equation_4() {
        let engines = paper_engines();
        // Engine 7: FC 256→64.
        let e = &engines[6];
        assert_eq!(engine_cycles(e, 1, 1), 64 * 256);
        assert_eq!(engine_cycles(e, 4, 8), 16 * 32);
    }

    #[test]
    fn non_divisor_folding_rounds_up() {
        let engines = paper_engines();
        let e = &engines[6]; // 64×256
                             // P=3 does not divide 64: 22 tiles.
        assert_eq!(engine_cycles(e, 3, 256), 22);
    }

    #[test]
    fn fps_is_clock_over_cycles() {
        assert!((fps(100e6, 232_558) - 430.0).abs() < 0.5);
        assert_eq!(fps(100e6, 100e6 as u64), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_p_rejected() {
        let engines = paper_engines();
        let _ = engine_cycles(&engines[0], 0, 1);
    }

    #[test]
    fn divisors_are_complete_and_sorted() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(64), vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(divisors(27), vec![1, 3, 9, 27]);
    }

    #[test]
    fn valid_ps_divide_rows() {
        let engines = paper_engines();
        for e in &engines {
            for p in valid_p(e) {
                assert_eq!(e.weight_rows() % p, 0);
            }
            for s in valid_s(e) {
                assert_eq!(e.weight_cols() % s, 0);
            }
        }
    }

    #[test]
    fn first_engine_dims_give_published_formula() {
        let engines = paper_engines();
        let e = &engines[0];
        // OD/P · K·K·ID/S · OH·OW with OD=64, KKID=27, OHOW=900.
        assert_eq!(engine_cycles(e, 64, 27,), 900);
        assert_eq!(engine_cycles(e, 1, 27), 64 * 900);
    }
}
