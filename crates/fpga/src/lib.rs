//! # mp-fpga
//!
//! A model of the FINN streaming-dataflow FPGA accelerator: the hardware
//! substrate the paper maps its binarised network onto (a Xilinx Zynq
//! XC7Z020 on the ZC702 board).
//!
//! The paper's §III-A analysis is reproduced by four cooperating models:
//!
//! - [`cycle_model`]: the clock-cycle equations (3) and (4) and the
//!   frames-per-second equation (5), parameterised by each engine's `P`
//!   (processing elements) and `S` (SIMD lanes per PE);
//! - [`folding`]: the rate-balancing search that picks `(P, S)` per
//!   engine from the divisors of its weight-matrix dimensions, sweeping
//!   a target latency to produce the configurations of Figs. 3–4;
//! - [`memory`]: the BRAM-18K/LUT allocation model, including the Vivado
//!   HLS power-of-two depth rounding that under-utilises BRAM (~22 %
//!   storage efficiency reported in the paper's reference \[8\]) and the
//!   block `array_partition` optimisation that recovers 15–18 %;
//! - [`stream_sim`]: a discrete-event simulator of the multi-engine
//!   streaming pipeline (finite FIFOs, batch ramp-up/down) that produces
//!   the "obtained" curves next to the analytic "expected" ones.
//!
//! [`design::DesignPoint`] ties them together: one record per evaluated
//! configuration with total PE count, expected/obtained img/s, and
//! BRAM/LUT utilisation — exactly the axes of the paper's Figs. 3 and 4.
//!
//! # Example
//!
//! ```
//! use mp_bnn::FinnTopology;
//! use mp_fpga::{design::DesignPoint, device::Device, folding::FoldingSearch};
//!
//! let engines = FinnTopology::paper().engines();
//! let device = Device::zc702();
//! // Fold for ~430 img/s (the configuration the paper selects).
//! let target = (device.clock_hz / 430.0) as u64;
//! let folding = FoldingSearch::new(&engines).balanced(target);
//! let point = DesignPoint::evaluate(&engines, &folding, &device, false);
//! assert!(point.expected_fps > 300.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cycle_model;
pub mod datapath;
pub mod design;
pub mod device;
pub mod folding;
pub mod memory;
pub mod stream_sim;

pub use design::DesignPoint;
pub use device::Device;
pub use folding::{EngineFolding, Folding, FoldingError, FoldingSearch};
pub use memory::MemoryModel;
pub use stream_sim::{SimResult, StreamFaults, StreamSim};
