//! BRAM-18K / LUT allocation model (paper §III-A, Figs. 3–4).
//!
//! FINN keeps every network parameter in on-chip memory: each engine has
//! `P` weight files of `total_weight_size/(P·S)` S-bit words and `P`
//! threshold files of `OD/P` words (24-bit in the first stage, 16-bit
//! inner, none in the last). Vivado HLS maps any array over ~1 Kbit to
//! BRAM-18Ks and **rounds the depth to the next power of two**, which is
//! the paper's explanation for the ~22 % average BRAM storage efficiency
//! reported in \[8\]. The block `array_partition` pragma splits a file
//! into smaller arrays so the rounding gap shrinks — the optimisation
//! behind Fig. 4's 15–18 % BRAM reduction.

use serde::{Deserialize, Serialize};

use mp_bnn::{EngineKind, EngineSpec};

use crate::folding::EngineFolding;

/// Bits in one BRAM-18K.
pub const BRAM18K_BITS: u64 = 18 * 1024;

/// Maximum data width of one BRAM-18K slice as Vivado HLS composes
/// them for `ap_memory` ports (1024 deep × 18 wide).
pub const BRAM18K_WIDTH: u64 = 18;

/// Depth of one BRAM-18K unit at [`BRAM18K_WIDTH`].
pub const BRAM18K_DEPTH: u64 = 1024;

/// Arrays at or below this bit count are mapped to LUTs instead of BRAM
/// (the "about 1 Kb" rule the paper cites).
pub const LUT_MAPPING_THRESHOLD_BITS: u64 = 1024;

/// LUTRAM capacity per LUT (a SLICEM LUT stores 64 bits).
pub const LUTRAM_BITS_PER_LUT: u64 = 64;

/// Resources allocated for one logical array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayAlloc {
    /// BRAM-18K blocks.
    pub bram_18k: u64,
    /// LUTs (LUTRAM storage plus partition muxing).
    pub luts: u64,
    /// Bits the array actually stores.
    pub stored_bits: u64,
}

impl ArrayAlloc {
    /// Capacity of the allocated BRAMs in bits.
    pub fn bram_capacity_bits(&self) -> u64 {
        self.bram_18k * BRAM18K_BITS
    }

    /// Fraction of allocated BRAM storage actually used (1.0 when the
    /// array lives in LUTs).
    pub fn bram_efficiency(&self) -> f64 {
        if self.bram_18k == 0 {
            1.0
        } else {
            self.stored_bits as f64 / self.bram_capacity_bits() as f64
        }
    }

    fn add(self, other: ArrayAlloc) -> ArrayAlloc {
        ArrayAlloc {
            bram_18k: self.bram_18k + other.bram_18k,
            luts: self.luts + other.luts,
            stored_bits: self.stored_bits + other.stored_bits,
        }
    }
}

/// BRAM-18Ks for a `depth × width` array under the Vivado HLS rules the
/// paper describes: the primitive aspect ratio is fixed by the word
/// width (the narrowest BRAM-18K configuration that fits the word, with
/// words wider than 18 bits cascading 18-bit slices), and the depth is
/// rounded **to the next power of two** before being built from units of
/// that aspect — the rounding responsible for the ~22 % average storage
/// efficiency reported in \[8\].
fn bram_blocks(depth: u64, width: u64) -> u64 {
    let (aspect_depth, slices) = if width <= 1 {
        (16384u64, 1u64)
    } else if width <= 2 {
        (8192, 1)
    } else if width <= 4 {
        (4096, 1)
    } else if width <= 9 {
        (2048, 1)
    } else if width <= BRAM18K_WIDTH {
        (BRAM18K_DEPTH, 1)
    } else {
        (BRAM18K_DEPTH, width.div_ceil(BRAM18K_WIDTH))
    };
    let depth_units = depth
        .max(1)
        .next_power_of_two()
        .div_ceil(aspect_depth)
        .max(1);
    slices * depth_units
}

/// Allocates one logical `depth × width` array.
///
/// `partition_blocks > 1` models `array_partition block factor=N`: the
/// array splits into `N` sub-arrays of `ceil(depth/N)` words, each
/// rounded and mapped independently, plus a small muxing LUT overhead
/// per extra partition. A factor larger than the depth is clamped to
/// the depth — partitions with no words hold no memory and cost
/// nothing, matching how the pragma degenerates to `complete`
/// partitioning.
///
/// # Panics
///
/// Panics if `width` or `partition_blocks` is zero, or if
/// `depth × width` overflows `u64` (no real array does).
pub fn allocate_array(depth: u64, width: u64, partition_blocks: u64) -> ArrayAlloc {
    assert!(width > 0, "array width must be positive");
    assert!(partition_blocks > 0, "partition count must be positive");
    let stored_bits = depth
        .checked_mul(width)
        .expect("array size overflows u64 bits");
    if stored_bits == 0 {
        return ArrayAlloc::default();
    }
    if stored_bits <= LUT_MAPPING_THRESHOLD_BITS {
        return ArrayAlloc {
            bram_18k: 0,
            luts: stored_bits.div_ceil(LUTRAM_BITS_PER_LUT),
            stored_bits,
        };
    }
    let blocks = partition_blocks.min(depth);
    let sub_depth = depth.div_ceil(blocks);
    let bram = blocks * bram_blocks(sub_depth, width);
    // Output muxing across partitions.
    let mux_luts = (blocks - 1) * width;
    ArrayAlloc {
        bram_18k: bram,
        luts: mux_luts,
        stored_bits,
    }
}

/// Best block-partitioning factor for a `depth × width` array: the one
/// minimising BRAMs (ties to fewer partitions), searched up to factor 8
/// — beyond that the partition muxing dominates, so the paper applies
/// the pragma only "if the allocated BRAMs can be reduced". Deep files
/// spanning multiple power-of-two units benefit; files using a fraction
/// of one BRAM cannot be improved (paper §III-A).
///
/// Degenerate arrays (zero depth, or any size that maps to LUTs) always
/// return a factor of 1: there is nothing to partition.
pub fn best_partition(depth: u64, width: u64) -> u64 {
    assert!(width > 0, "array width must be positive");
    let mut best_blocks = 1;
    let mut best = allocate_array(depth, width, 1);
    if best.bram_18k == 0 {
        return 1;
    }
    for factor in 2..=8u64.min(depth.max(1)) {
        let cand = allocate_array(depth, width, factor);
        if cand.bram_18k < best.bram_18k {
            best = cand;
            best_blocks = factor;
        }
    }
    best_blocks
}

/// Memory allocation report for one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMemory {
    /// Weight-memory allocation (P files).
    pub weights: ArrayAlloc,
    /// Threshold-memory allocation (P files; zero for the last engine).
    pub thresholds: ArrayAlloc,
    /// Inter-layer stream buffers (sliding-window line buffers).
    pub buffers: ArrayAlloc,
}

impl EngineMemory {
    /// Total BRAM-18Ks.
    pub fn bram_18k(&self) -> u64 {
        self.weights.bram_18k + self.thresholds.bram_18k + self.buffers.bram_18k
    }

    /// Total memory LUTs.
    pub fn luts(&self) -> u64 {
        self.weights.luts + self.thresholds.luts + self.buffers.luts
    }

    /// Weight+threshold storage efficiency over allocated BRAM capacity.
    pub fn parameter_bram_efficiency(&self) -> f64 {
        let alloc = self.weights.add(self.thresholds);
        alloc.bram_efficiency()
    }
}

/// The memory model: allocates an engine's weight, threshold and buffer
/// arrays under a folding, optionally applying block array partitioning
/// to the parameter memories (buffers are untouched, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Whether block `array_partition` is applied (Fig. 4 vs Fig. 3).
    pub partitioned: bool,
}

impl MemoryModel {
    /// A model with naive allocation (Fig. 3).
    pub fn naive() -> Self {
        Self { partitioned: false }
    }

    /// A model with block array partitioning (Fig. 4).
    pub fn partitioned() -> Self {
        Self { partitioned: true }
    }

    /// Allocates one engine's memories under `folding`.
    ///
    /// Weight memory: `P` files of `total_weight_size/(P·S)` words of `S`
    /// bits. Threshold memory: `P` files of `OD/P` words of
    /// `threshold_bits`. Conv engines additionally hold a `K`-line
    /// sliding-window buffer of the input feature map.
    pub fn allocate_engine(&self, spec: &EngineSpec, folding: EngineFolding) -> EngineMemory {
        let p = folding.p as u64;
        let weight_file_depth = spec.total_weight_bits().div_ceil(p * folding.s as u64);
        let weight_file = self.parameter_array(weight_file_depth, folding.s as u64);
        let weights = scale_alloc(weight_file, p);

        let thresholds = if spec.threshold_bits > 0 {
            let depth = (spec.out_channels as u64).div_ceil(p);
            scale_alloc(self.parameter_array(depth, spec.threshold_bits as u64), p)
        } else {
            ArrayAlloc::default()
        };

        let buffers = match spec.kind {
            EngineKind::Conv => {
                // K input lines of IW pixels, ID channels deep, at the
                // engine's input precision.
                let depth = (spec.kernel * spec.in_width) as u64;
                let width = (spec.in_channels * spec.input_bits) as u64;
                allocate_array(depth, width, 1)
            }
            EngineKind::Fc => {
                // Double-buffered input vector.
                allocate_array(2, spec.in_channels as u64, 1)
            }
        };

        EngineMemory {
            weights,
            thresholds,
            buffers,
        }
    }

    fn parameter_array(&self, depth: u64, width: u64) -> ArrayAlloc {
        if self.partitioned {
            allocate_array(depth, width, best_partition(depth, width))
        } else {
            allocate_array(depth, width, 1)
        }
    }
}

fn scale_alloc(one: ArrayAlloc, count: u64) -> ArrayAlloc {
    ArrayAlloc {
        bram_18k: one.bram_18k * count,
        luts: one.luts * count,
        stored_bits: one.stored_bits * count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_bnn::FinnTopology;

    #[test]
    fn small_arrays_map_to_luts() {
        let a = allocate_array(64, 16, 1);
        assert_eq!(a.bram_18k, 0);
        assert_eq!(a.luts, (64 * 16u64).div_ceil(64));
        assert_eq!(a.stored_bits, 1024);
    }

    #[test]
    fn empty_array_costs_nothing() {
        assert_eq!(allocate_array(0, 8, 1), ArrayAlloc::default());
    }

    #[test]
    fn power_of_two_rounding_wastes_bram() {
        // Depth 1025 rounds to 2048: two 1024×18 units for 16-bit words
        // vs. stored 1025·16 bits.
        let a = allocate_array(1025, 16, 1);
        assert_eq!(a.bram_18k, 2);
        assert!(
            a.bram_efficiency() < 0.6,
            "efficiency {}",
            a.bram_efficiency()
        );
    }

    #[test]
    fn exact_power_of_two_is_efficient() {
        let a = allocate_array(1024, 18, 1);
        assert_eq!(a.bram_18k, 1);
        assert!((a.bram_efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partitioning_reduces_rounding_waste() {
        // Depth 4500 rounds to 8192 → 8 units; five blocks of 900 round
        // to 1024 each → 5 units.
        let naive = allocate_array(4500, 16, 1);
        assert_eq!(naive.bram_18k, 8);
        let parts = best_partition(4500, 16);
        let part = allocate_array(4500, 16, parts);
        assert!(
            part.bram_18k < naive.bram_18k,
            "partitioned {} vs naive {}",
            part.bram_18k,
            naive.bram_18k
        );
        assert!(part.bram_efficiency() > naive.bram_efficiency());
    }

    #[test]
    fn best_partition_never_worse() {
        for depth in [100u64, 700, 1025, 3000, 4500, 10_000] {
            for width in [1u64, 4, 16, 24] {
                let naive = allocate_array(depth, width, 1);
                let best = allocate_array(depth, width, best_partition(depth, width));
                assert!(best.bram_18k <= naive.bram_18k, "d={depth} w={width}");
            }
        }
    }

    #[test]
    fn engine_memory_accounts_all_components() {
        let engines = FinnTopology::paper().engines();
        let model = MemoryModel::naive();
        let mem = model.allocate_engine(&engines[1], EngineFolding::new(8, 16));
        // Weights: 8 files of (64·576)/(8·16) = 288 words × 16 bits.
        assert_eq!(mem.weights.stored_bits, 64 * 576);
        // Thresholds: 8 files of 8 words × 16 bits — LUT-mapped.
        assert_eq!(mem.thresholds.stored_bits, 64 * 16);
        assert_eq!(mem.thresholds.bram_18k, 0);
        assert!(mem.buffers.stored_bits > 0);
        assert_eq!(
            mem.bram_18k(),
            mem.weights.bram_18k + mem.thresholds.bram_18k + mem.buffers.bram_18k
        );
    }

    #[test]
    fn partitioned_model_uses_no_more_bram() {
        let engines = FinnTopology::paper().engines();
        for spec in &engines {
            let folding = EngineFolding::new(1, 1);
            let naive = MemoryModel::naive().allocate_engine(spec, folding);
            let part = MemoryModel::partitioned().allocate_engine(spec, folding);
            assert!(
                part.bram_18k() <= naive.bram_18k(),
                "{}: {} vs {}",
                spec.name,
                part.bram_18k(),
                naive.bram_18k()
            );
        }
    }

    #[test]
    fn last_engine_has_no_threshold_memory() {
        let engines = FinnTopology::paper().engines();
        let mem = MemoryModel::naive()
            .allocate_engine(engines.last().expect("engines"), EngineFolding::new(1, 1));
        assert_eq!(mem.thresholds, ArrayAlloc::default());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = allocate_array(10, 0, 1);
    }

    #[test]
    #[should_panic(expected = "partition count must be positive")]
    fn zero_partition_rejected() {
        let _ = allocate_array(10, 8, 0);
    }

    #[test]
    fn oversized_partition_factor_clamps_to_depth() {
        // Depth 2 of 1024-bit words is BRAM-mapped; a factor of 8 must
        // not allocate 8 BRAMs for 2 words.
        let clamped = allocate_array(2, 1024, 8);
        let exact = allocate_array(2, 1024, 2);
        assert_eq!(clamped.bram_18k, exact.bram_18k);
        assert_eq!(clamped.luts, exact.luts);
        assert_eq!(clamped.stored_bits, 2 * 1024);
    }

    #[test]
    fn zero_depth_with_any_partition_costs_nothing() {
        assert_eq!(allocate_array(0, 8, 5), ArrayAlloc::default());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_array_size_rejected() {
        let _ = allocate_array(u64::MAX, 2, 1);
    }

    #[test]
    fn best_partition_of_degenerate_arrays_is_one() {
        assert_eq!(best_partition(0, 8), 1);
        assert_eq!(best_partition(1, 1), 1);
        // LUT-mapped array: nothing to partition.
        assert_eq!(best_partition(64, 16), 1);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn best_partition_rejects_zero_width() {
        let _ = best_partition(10, 0);
    }
}
