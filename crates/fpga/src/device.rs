//! FPGA device models.

use serde::{Deserialize, Serialize};

/// Resource and clock envelope of an FPGA device.
///
/// # Example
///
/// ```
/// use mp_fpga::Device;
///
/// let d = Device::zc702();
/// assert_eq!(d.bram_18k, 280);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Device name.
    pub name: String,
    /// Number of 18-kbit block RAMs.
    pub bram_18k: u64,
    /// Number of 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub flip_flops: u64,
    /// Achievable hardware clock in Hz.
    pub clock_hz: f64,
    /// Per-image host↔fabric transfer overhead in seconds.
    ///
    /// On the ZC702 the SDSoC data movers serialise input transfer with
    /// accelerator execution inside each batch, so the obtained rate is
    /// `1/(1/expected + overhead)`; the constant is calibrated on the
    /// paper's fastest Fig. 3 pair (expected ≈ 3051, obtained ≈ 1741).
    pub io_overhead_s: f64,
}

impl Device {
    /// The Xilinx Zynq-7000 XC7Z020 (ZC702 board) the paper targets:
    /// Artix-7 fabric with 280 BRAM-18Ks, 53 200 LUTs, and FINN designs
    /// clocked at 100 MHz.
    pub fn zc702() -> Self {
        Self {
            name: "XC7Z020 (ZC702)".to_owned(),
            bram_18k: 280,
            luts: 53_200,
            flip_flops: 106_400,
            clock_hz: 100e6,
            io_overhead_s: 2.47e-4,
        }
    }

    /// A larger Zynq UltraScale+ style device for headroom experiments
    /// (the paper's future-work direction of higher-end devices).
    pub fn zu3eg() -> Self {
        Self {
            name: "XCZU3EG (Ultra96)".to_owned(),
            bram_18k: 432,
            luts: 70_560,
            flip_flops: 141_120,
            clock_hz: 300e6,
            io_overhead_s: 8e-5,
        }
    }

    /// Fraction of BRAM-18Ks consumed by `used` blocks, in percent.
    pub fn bram_utilisation_pct(&self, used: u64) -> f64 {
        100.0 * used as f64 / self.bram_18k as f64
    }

    /// Fraction of LUTs consumed, in percent.
    pub fn lut_utilisation_pct(&self, used: u64) -> f64 {
        100.0 * used as f64 / self.luts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc702_matches_datasheet() {
        let d = Device::zc702();
        assert_eq!(d.bram_18k, 280);
        assert_eq!(d.luts, 53_200);
        assert_eq!(d.clock_hz, 100e6);
    }

    #[test]
    fn utilisation_percentages() {
        let d = Device::zc702();
        assert!((d.bram_utilisation_pct(140) - 50.0).abs() < 1e-9);
        assert!((d.lut_utilisation_pct(26_600) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ultrascale_is_bigger_and_faster() {
        let a = Device::zc702();
        let b = Device::zu3eg();
        assert!(b.bram_18k > a.bram_18k);
        assert!(b.clock_hz > a.clock_hz);
    }
}
