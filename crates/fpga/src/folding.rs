//! Rate-balancing folding search (paper §III-A).
//!
//! Every engine's throughput is set by its `(P, S)` pair; the slowest
//! engine decides the network's throughput. Given a target per-image
//! latency in clock cycles, [`FoldingSearch::balanced`] picks, for each
//! engine, the cheapest `(P, S)` (fewest multipliers `P·S`) among the
//! divisors of its weight-matrix dimensions that meets the target — the
//! procedure the paper describes for producing the configurations of
//! Fig. 3.

use std::fmt;

use serde::{Deserialize, Error, Serialize, Value};

use mp_bnn::EngineSpec;

use crate::cycle_model::{engine_cycles, valid_p, valid_s};

/// A degenerate folding request: `P` or `S` was zero.
///
/// Zero tiles would divide by zero in the cycle model (eqs. 3–4) and
/// allocate nothing in the memory model, so folding constructors reject
/// them with this typed error (mp-verify's `MP0301` is the static twin
/// of this runtime check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldingError {
    /// The rejected PE count.
    pub p: usize,
    /// The rejected SIMD lane count.
    pub s: usize,
    /// Index of the offending engine, when known.
    pub engine: Option<usize>,
}

impl fmt::Display for FoldingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.engine {
            Some(i) => write!(
                f,
                "engine {i}: folding P={} S={} is degenerate (P and S must be positive)",
                self.p, self.s
            ),
            None => write!(
                f,
                "folding P={} S={} is degenerate (P and S must be positive)",
                self.p, self.s
            ),
        }
    }
}

impl std::error::Error for FoldingError {}

/// The `(P, S)` choice for one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct EngineFolding {
    /// Processing elements (rows of the weight tile).
    pub p: usize,
    /// SIMD lanes per PE (columns of the weight tile).
    pub s: usize,
}

impl EngineFolding {
    /// Creates a folding.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `s` is zero; use [`Self::try_new`] to handle
    /// the degenerate case gracefully.
    pub fn new(p: usize, s: usize) -> Self {
        match Self::try_new(p, s) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a folding, rejecting zero `P`/`S` with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`FoldingError`] if `p` or `s` is zero.
    pub fn try_new(p: usize, s: usize) -> Result<Self, FoldingError> {
        if p == 0 || s == 0 {
            return Err(FoldingError { p, s, engine: None });
        }
        Ok(Self { p, s })
    }

    /// Multiplier (XNOR-lane) count `P·S`.
    pub fn lanes(&self) -> usize {
        self.p * self.s
    }
}

// Manual Deserialize: the fields are public (struct-literal
// construction can still produce zeros for tests), but data read back
// from disk must not smuggle a degenerate folding past the
// constructors.
impl<'de> Deserialize<'de> for EngineFolding {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let p = usize::from_value(value.get_field("p")?)?;
        let s = usize::from_value(value.get_field("s")?)?;
        EngineFolding::try_new(p, s).map_err(Error::custom)
    }
}

/// A whole-network folding: one [`EngineFolding`] per engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Folding {
    engines: Vec<EngineFolding>,
}

impl Folding {
    /// Creates a folding from per-engine choices.
    ///
    /// # Panics
    ///
    /// Panics if any engine's `P` or `S` is zero (possible via the
    /// public fields of [`EngineFolding`]); use [`Self::try_new`] to
    /// handle it gracefully.
    pub fn new(engines: Vec<EngineFolding>) -> Self {
        match Self::try_new(engines) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a folding, validating every engine's `(P, S)`.
    ///
    /// # Errors
    ///
    /// Returns [`FoldingError`] naming the first degenerate engine.
    pub fn try_new(engines: Vec<EngineFolding>) -> Result<Self, FoldingError> {
        for (i, f) in engines.iter().enumerate() {
            if f.p == 0 || f.s == 0 {
                return Err(FoldingError {
                    p: f.p,
                    s: f.s,
                    engine: Some(i),
                });
            }
        }
        Ok(Self { engines })
    }

    /// Creates a folding without validation, for constructing
    /// deliberately broken configurations in tests and for mp-verify's
    /// golden fixtures. Anything downstream may panic on zeros.
    pub fn new_unchecked(engines: Vec<EngineFolding>) -> Self {
        Self { engines }
    }

    /// Per-engine foldings.
    pub fn engines(&self) -> &[EngineFolding] {
        &self.engines
    }

    /// Total PE count across engines — the x-axis of the paper's
    /// Figs. 3–4.
    pub fn total_pe(&self) -> usize {
        self.engines.iter().map(|e| e.p).sum()
    }

    /// Total SIMD lane count across engines.
    pub fn total_lanes(&self) -> usize {
        self.engines.iter().map(|e| e.lanes()).sum()
    }

    /// Per-image cycle count of every engine under this folding.
    ///
    /// # Panics
    ///
    /// Panics if the folding has a different engine count than `specs`.
    pub fn cycles(&self, specs: &[EngineSpec]) -> Vec<u64> {
        assert_eq!(self.engines.len(), specs.len(), "engine count mismatch");
        specs
            .iter()
            .zip(&self.engines)
            .map(|(spec, f)| engine_cycles(spec, f.p, f.s))
            .collect()
    }

    /// The slowest engine's cycle count: the network's per-image
    /// initiation interval.
    ///
    /// # Panics
    ///
    /// Panics if the folding has a different engine count than `specs`.
    pub fn bottleneck_cycles(&self, specs: &[EngineSpec]) -> u64 {
        self.cycles(specs).into_iter().max().unwrap_or(1)
    }
}

/// Searches foldings for a set of engines.
#[derive(Debug, Clone)]
pub struct FoldingSearch<'a> {
    specs: &'a [EngineSpec],
}

impl<'a> FoldingSearch<'a> {
    /// Creates a search over `specs`.
    pub fn new(specs: &'a [EngineSpec]) -> Self {
        Self { specs }
    }

    /// Cheapest `(P, S)` for one engine meeting `target_cycles`, choosing
    /// only divisors of the weight-matrix dimensions (no padding).
    ///
    /// Ties on the lane count `P·S` break toward a square weight tile
    /// (`P` close to `S`), matching how FINN balances the PE count
    /// against SIMD depth, then toward fewer PEs.
    pub fn fold_engine(spec: &EngineSpec, target_cycles: u64) -> EngineFolding {
        fn imbalance(f: EngineFolding) -> f64 {
            ((f.p as f64).ln() - (f.s as f64).ln()).abs()
        }
        let mut best: Option<EngineFolding> = None;
        for &p in &valid_p(spec) {
            for &s in &valid_s(spec) {
                if engine_cycles(spec, p, s) <= target_cycles {
                    let cand = EngineFolding::new(p, s);
                    let better = match best {
                        None => true,
                        Some(b) => {
                            (cand.lanes(), imbalance(cand), cand.p) < (b.lanes(), imbalance(b), b.p)
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                    break; // larger S only costs more at this P
                }
            }
        }
        // Unreachable target: run fully parallel. The `.max(1)` keeps
        // the fallback non-degenerate even for a zero-dimension spec
        // (which mp-verify reports as MP0109 separately).
        best.unwrap_or_else(|| {
            EngineFolding::new(spec.weight_rows().max(1), spec.weight_cols().max(1))
        })
    }

    /// Rate-balanced folding: every engine meets `target_cycles` as
    /// cheaply as possible.
    pub fn balanced(&self, target_cycles: u64) -> Folding {
        Folding::new(
            self.specs
                .iter()
                .map(|spec| Self::fold_engine(spec, target_cycles))
                .collect(),
        )
    }

    /// The non-dominated `(lanes, cycles)` frontier of one engine's
    /// divisor-only foldings: every `(P, S)` pair such that no other
    /// pair is both cheaper (fewer `P·S` lanes) and faster (fewer
    /// eq. (3)/(4) cycles). Returned in increasing lane order, which is
    /// strictly decreasing cycle order.
    ///
    /// This is the per-engine search space a design-space explorer
    /// needs: any folding off this frontier is dominated for every
    /// objective that is monotone in lanes and cycles, so joint
    /// searches over engines can enumerate frontier options only.
    /// Ties on the lane count keep the squarer tile, matching
    /// [`Self::fold_engine`]'s preference.
    pub fn engine_frontier(spec: &EngineSpec) -> Vec<(EngineFolding, u64)> {
        fn imbalance(f: EngineFolding) -> f64 {
            ((f.p as f64).ln() - (f.s as f64).ln()).abs()
        }
        let mut options: Vec<(EngineFolding, u64)> = Vec::new();
        for &p in &valid_p(spec) {
            for &s in &valid_s(spec) {
                let f = EngineFolding::new(p, s);
                options.push((f, engine_cycles(spec, p, s)));
            }
        }
        // Cheap-first; at equal cost, fastest first, then squarest.
        options.sort_by(|(fa, ca), (fb, cb)| {
            (fa.lanes(), ca)
                .cmp(&(fb.lanes(), cb))
                .then(imbalance(*fa).total_cmp(&imbalance(*fb)))
        });
        let mut frontier: Vec<(EngineFolding, u64)> = Vec::new();
        for (f, cycles) in options {
            match frontier.last() {
                // Strictly faster than everything cheaper → keep.
                Some(&(_, best)) if cycles >= best => {}
                _ => frontier.push((f, cycles)),
            }
        }
        frontier
    }

    /// Sweeps a geometric grid of latency targets, returning deduplicated
    /// foldings ordered by increasing total PE count — the configuration
    /// series plotted in Figs. 3–4.
    pub fn sweep(&self, min_cycles: u64, max_cycles: u64, steps: usize) -> Vec<Folding> {
        assert!(
            min_cycles > 0 && max_cycles >= min_cycles,
            "bad sweep range"
        );
        assert!(steps >= 2, "need at least two sweep steps");
        let lo = (min_cycles as f64).ln();
        let hi = (max_cycles as f64).ln();
        let mut out: Vec<Folding> = Vec::new();
        for i in 0..steps {
            let t = (lo + (hi - lo) * i as f64 / (steps - 1) as f64).exp() as u64;
            let folding = self.balanced(t.max(1));
            if !out.contains(&folding) {
                out.push(folding);
            }
        }
        out.sort_by_key(Folding::total_pe);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_bnn::FinnTopology;

    fn engines() -> Vec<EngineSpec> {
        FinnTopology::paper().engines()
    }

    #[test]
    fn folded_engines_meet_target() {
        let engines = engines();
        let target = 250_000;
        let folding = FoldingSearch::new(&engines).balanced(target);
        for (cycles, spec) in folding.cycles(&engines).iter().zip(&engines) {
            assert!(
                *cycles <= target,
                "{} missed target: {cycles} > {target}",
                spec.name
            );
        }
    }

    #[test]
    fn folding_uses_divisors_only() {
        let engines = engines();
        let folding = FoldingSearch::new(&engines).balanced(100_000);
        for (f, spec) in folding.engines().iter().zip(&engines) {
            assert_eq!(spec.weight_rows() % f.p, 0, "{}: P={}", spec.name, f.p);
            assert_eq!(spec.weight_cols() % f.s, 0, "{}: S={}", spec.name, f.s);
        }
    }

    #[test]
    fn tighter_targets_cost_more_pe() {
        let engines = engines();
        let search = FoldingSearch::new(&engines);
        let slow = search.balanced(1_000_000);
        let fast = search.balanced(50_000);
        assert!(fast.total_pe() > slow.total_pe());
        assert!(fast.bottleneck_cycles(&engines) < slow.bottleneck_cycles(&engines));
    }

    #[test]
    fn unreachable_target_goes_fully_parallel() {
        let engines = engines();
        // 1 cycle per image is impossible; engines go max-parallel.
        let f = FoldingSearch::fold_engine(&engines[1], 1);
        assert_eq!(f.p, engines[1].weight_rows());
        assert_eq!(f.s, engines[1].weight_cols());
    }

    #[test]
    fn sweep_is_monotone_and_deduplicated() {
        let engines = engines();
        let sweep = FoldingSearch::new(&engines).sweep(20_000, 2_000_000, 12);
        assert!(sweep.len() >= 4, "sweep produced {} points", sweep.len());
        for pair in sweep.windows(2) {
            assert!(pair[0].total_pe() <= pair[1].total_pe());
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn engine_frontier_is_strictly_monotone_and_covers_balanced_picks() {
        let engines = engines();
        for spec in &engines {
            let frontier = FoldingSearch::engine_frontier(spec);
            assert!(!frontier.is_empty(), "{}", spec.name);
            for pair in frontier.windows(2) {
                let ((fa, ca), (fb, cb)) = (pair[0], pair[1]);
                assert!(
                    fa.lanes() < fb.lanes(),
                    "{}: lanes not increasing",
                    spec.name
                );
                assert!(ca > cb, "{}: cycles not decreasing", spec.name);
            }
            for (f, cycles) in &frontier {
                assert_eq!(spec.weight_rows() % f.p, 0);
                assert_eq!(spec.weight_cols() % f.s, 0);
                assert_eq!(*cycles, engine_cycles(spec, f.p, f.s));
            }
            // Every balanced pick is meet-or-beat by a frontier point at
            // no greater lane cost (the frontier dominates fold_engine).
            for target in [50_000u64, 250_000, 1_000_000] {
                let picked = FoldingSearch::fold_engine(spec, target);
                let picked_cycles = engine_cycles(spec, picked.p, picked.s);
                assert!(
                    frontier
                        .iter()
                        .any(|(f, c)| f.lanes() <= picked.lanes() && *c <= picked_cycles),
                    "{}: no frontier point dominates {picked:?}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn paper_anchor_configuration() {
        // The paper's selected operating point: ~430 img/s at 100 MHz,
        // i.e. a ~232 kcycle initiation interval.
        let engines = engines();
        let folding = FoldingSearch::new(&engines).balanced(232_558);
        let cc = folding.bottleneck_cycles(&engines);
        let fps = 100e6 / cc as f64;
        assert!(
            (390.0..=470.0).contains(&fps),
            "anchor folding gives {fps} img/s"
        );
    }

    #[test]
    fn total_counts_sum() {
        let f = Folding::new(vec![EngineFolding::new(2, 4), EngineFolding::new(3, 5)]);
        assert_eq!(f.total_pe(), 5);
        assert_eq!(f.total_lanes(), 23);
    }

    #[test]
    fn try_new_rejects_zero_p_or_s() {
        assert_eq!(
            EngineFolding::try_new(0, 4),
            Err(FoldingError {
                p: 0,
                s: 4,
                engine: None
            })
        );
        assert_eq!(
            EngineFolding::try_new(4, 0),
            Err(FoldingError {
                p: 4,
                s: 0,
                engine: None
            })
        );
        assert!(EngineFolding::try_new(1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn new_panics_on_zero() {
        let _ = EngineFolding::new(0, 1);
    }

    #[test]
    fn folding_try_new_names_the_offending_engine() {
        let err = Folding::try_new(vec![EngineFolding::new(1, 1), EngineFolding { p: 2, s: 0 }])
            .unwrap_err();
        assert_eq!(err.engine, Some(1));
        assert!(err.to_string().contains("engine 1"), "{err}");
    }

    #[test]
    #[should_panic(expected = "engine 0")]
    fn folding_new_panics_on_smuggled_zero() {
        let _ = Folding::new(vec![EngineFolding { p: 0, s: 3 }]);
    }

    #[test]
    fn deserialize_rejects_zero_folding() {
        let good = EngineFolding::new(2, 3);
        let round = EngineFolding::from_value(&good.to_value()).expect("valid folding");
        assert_eq!(round, good);
        let bad = EngineFolding { p: 0, s: 3 };
        assert!(EngineFolding::from_value(&bad.to_value()).is_err());
        // A folding containing a zero engine fails as a whole.
        let f = Folding::new_unchecked(vec![EngineFolding { p: 1, s: 0 }]);
        assert!(Folding::from_value(&f.to_value()).is_err());
    }

    #[test]
    fn fold_engine_never_degenerate() {
        let engines = engines();
        for spec in &engines {
            for target in [1u64, 1_000, 100_000, u64::MAX] {
                let f = FoldingSearch::fold_engine(spec, target);
                assert!(f.p > 0 && f.s > 0, "{}: {f:?}", spec.name);
            }
        }
        // Even a zero-dimension spec yields a usable (1, 1) fallback.
        let mut broken = engines[0].clone();
        broken.out_channels = 0;
        let f = FoldingSearch::fold_engine(&broken, 1_000);
        assert!(f.p > 0 && f.s > 0);
    }
}
