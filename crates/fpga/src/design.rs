//! Whole-design evaluation: one record per Fig. 3/Fig. 4 data point.

use serde::{Deserialize, Serialize};

use mp_bnn::EngineSpec;

use crate::cycle_model;
use crate::datapath::DatapathModel;
use crate::device::Device;
use crate::folding::Folding;
use crate::memory::{EngineMemory, MemoryModel};
use crate::stream_sim::StreamSim;

/// Relative clock penalty block array partitioning imposes on designs
/// with little parallelism (the paper: low-PE configurations "slow
/// down" while high-PE ones retain their performance — partition muxes
/// sit on the critical path only when the datapath is shallow).
const PARTITION_SLOWDOWN: f64 = 0.93;

/// Expected-throughput level below which the partitioning penalty
/// applies (low-throughput designs have shallow datapaths, so the
/// partition muxes land on the critical path).
const PARTITION_SLOWDOWN_FPS: f64 = 700.0;

/// One evaluated accelerator configuration: the tuple of quantities
/// plotted per x-axis point in the paper's Figs. 3 and 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Total PE count across engines (the figures' x-axis).
    pub total_pe: usize,
    /// Total SIMD lanes across engines.
    pub total_lanes: usize,
    /// Per-engine cycle counts under the folding.
    pub engine_cycles: Vec<u64>,
    /// The slowest engine's cycles (initiation interval).
    pub bottleneck_cycles: u64,
    /// Analytic throughput from eqs. (3)–(5).
    pub expected_fps: f64,
    /// Throughput after transfer overhead and (when partitioned at low
    /// parallelism) the partition clock penalty.
    pub obtained_fps: f64,
    /// BRAM-18K blocks used.
    pub bram_18k: u64,
    /// LUTs used (compute + memory).
    pub luts: u64,
    /// BRAM utilisation of the device, percent.
    pub bram_pct: f64,
    /// LUT utilisation of the device, percent.
    pub lut_pct: f64,
    /// Fraction of allocated parameter-BRAM storage actually used.
    pub parameter_bram_efficiency: f64,
    /// Whether block array partitioning was applied.
    pub partitioned: bool,
}

impl DesignPoint {
    /// Evaluates one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `folding` has a different engine count than `specs`.
    pub fn evaluate(
        specs: &[EngineSpec],
        folding: &Folding,
        device: &Device,
        partitioned: bool,
    ) -> Self {
        let engine_cycles = folding.cycles(specs);
        let bottleneck = engine_cycles.iter().copied().max().unwrap_or(1);
        let expected_fps = cycle_model::fps(device.clock_hz, bottleneck);
        // Input transfer serialises with execution on the SDSoC data
        // movers: obtained = 1/(1/expected + overhead).
        let mut obtained_fps = 1.0 / (1.0 / expected_fps + device.io_overhead_s);
        if partitioned && expected_fps < PARTITION_SLOWDOWN_FPS {
            obtained_fps *= PARTITION_SLOWDOWN;
        }
        let model = if partitioned {
            MemoryModel::partitioned()
        } else {
            MemoryModel::naive()
        };
        let memories: Vec<EngineMemory> = specs
            .iter()
            .zip(folding.engines())
            .map(|(spec, &f)| model.allocate_engine(spec, f))
            .collect();
        let bram_18k: u64 = memories.iter().map(EngineMemory::bram_18k).sum();
        let memory_luts: u64 = memories.iter().map(EngineMemory::luts).sum();
        let compute_luts: u64 = DatapathModel::default().network_luts(specs, folding.engines());
        let luts = compute_luts + memory_luts;
        // Parameter efficiency: stored bits over allocated BRAM capacity
        // across weight+threshold memories that landed in BRAM.
        let (stored, capacity) = memories.iter().fold((0u64, 0u64), |(s, c), m| {
            let bram = m.weights.bram_18k + m.thresholds.bram_18k;
            if bram > 0 {
                (
                    s + m.weights.stored_bits + m.thresholds.stored_bits,
                    c + bram * crate::memory::BRAM18K_BITS,
                )
            } else {
                (s, c)
            }
        });
        let parameter_bram_efficiency = if capacity > 0 {
            stored as f64 / capacity as f64
        } else {
            1.0
        };
        Self {
            total_pe: folding.total_pe(),
            total_lanes: folding.total_lanes(),
            engine_cycles,
            bottleneck_cycles: bottleneck,
            expected_fps,
            obtained_fps,
            bram_18k,
            luts,
            bram_pct: device.bram_utilisation_pct(bram_18k),
            lut_pct: device.lut_utilisation_pct(luts),
            parameter_bram_efficiency,
            partitioned,
        }
    }

    /// Simulates a batch through this design's streaming pipeline,
    /// including the device's per-image transfer overhead as the source
    /// interval.
    pub fn simulate_batch(
        &self,
        device: &Device,
        batch: usize,
        fifo_capacity: usize,
    ) -> crate::stream_sim::SimResult {
        StreamSim::from_cycles(&self.engine_cycles, device.clock_hz, fifo_capacity)
            .with_source_interval(device.io_overhead_s)
            .run(batch)
    }

    /// Whether the design fits the device.
    pub fn fits(&self, device: &Device) -> bool {
        self.bram_18k <= device.bram_18k && self.luts <= device.luts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::FoldingSearch;
    use mp_bnn::FinnTopology;

    fn point(target: u64, partitioned: bool) -> DesignPoint {
        let engines = FinnTopology::paper().engines();
        let folding = FoldingSearch::new(&engines).balanced(target);
        DesignPoint::evaluate(&engines, &folding, &Device::zc702(), partitioned)
    }

    #[test]
    fn obtained_never_exceeds_expected() {
        for target in [50_000u64, 232_558, 1_000_000] {
            let p = point(target, false);
            assert!(p.obtained_fps < p.expected_fps);
            assert!(p.obtained_fps > 0.0);
        }
    }

    #[test]
    fn io_overhead_calibration_matches_paper_pair() {
        // Fastest Fig. 3 pair: expected ≈ 3051 → obtained ≈ 1741.
        let expected = 3051.0f64;
        let obtained = 1.0 / (1.0 / expected + Device::zc702().io_overhead_s);
        assert!((obtained - 1741.0).abs() < 60.0, "obtained {obtained}");
    }

    #[test]
    fn partitioning_reduces_bram() {
        let naive = point(232_558, false);
        let part = point(232_558, true);
        assert!(part.bram_18k < naive.bram_18k);
        let drop_pct = 100.0 * (naive.bram_pct - part.bram_pct) / naive.bram_pct;
        // The paper reports 15–18 % drops; accept a generous band since
        // the allocator is a model, not Vivado.
        assert!(drop_pct > 5.0, "drop {drop_pct}%");
        assert!(part.parameter_bram_efficiency >= naive.parameter_bram_efficiency);
    }

    #[test]
    fn partition_penalty_applies_only_to_low_pe() {
        let slow = point(1_000_000, true); // few PEs
        let slow_naive = point(1_000_000, false);
        assert!(slow.obtained_fps < slow_naive.obtained_fps);
        let fast = point(30_000, true); // many PEs
        let fast_naive = point(30_000, false);
        assert!((fast.obtained_fps - fast_naive.obtained_fps).abs() < 1e-6);
    }

    #[test]
    fn more_pe_more_fps_more_area() {
        let small = point(1_000_000, false);
        let big = point(50_000, false);
        assert!(big.total_pe > small.total_pe);
        assert!(big.expected_fps > small.expected_fps);
        assert!(big.luts > small.luts);
    }

    #[test]
    fn naive_parameter_efficiency_is_poor() {
        // The paper cites ~22 % average storage efficiency for naive
        // allocation; our model should land clearly below 60 %.
        let p = point(232_558, false);
        assert!(
            p.parameter_bram_efficiency < 0.6,
            "efficiency {}",
            p.parameter_bram_efficiency
        );
    }

    #[test]
    fn anchor_fits_zc702() {
        let p = point(232_558, true);
        assert!(p.fits(&Device::zc702()), "anchor design: {p:?}");
    }

    #[test]
    fn batch_simulation_close_to_obtained_model() {
        let p = point(232_558, false);
        let sim = p.simulate_batch(&Device::zc702(), 256, 2);
        // The DES pipelines transfers with compute, so it sits between
        // the serialised "obtained" model and the analytic expectation.
        assert!(sim.throughput_fps <= p.expected_fps * 1.01);
        assert!(sim.throughput_fps >= p.obtained_fps * 0.9);
    }
}
