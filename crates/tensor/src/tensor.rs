use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{Shape, ShapeError};

/// An owned, row-major `f32` n-dimensional array.
///
/// `Tensor` is the single numeric container shared by the float network
/// ([`mp-nn`]), the binarised network's training path, and the dataset
/// generators. It deliberately stays simple: owned storage, row-major
/// layout, and checked shape arithmetic, trading a copy here and there for
/// an API that cannot alias or dangle.
///
/// # Example
///
/// ```
/// use mp_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let t = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
/// assert_eq!(t.len(), 12);
/// let u = t.map(|x| x + 1.0);
/// assert!(u.iter().all(|&x| x == 1.0));
/// # Ok(())
/// # }
/// ```
///
/// [`mp-nn`]: https://example.com/multiprec
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn filled(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Wraps a data vector in a tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match the shape's
    /// element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, ShapeError> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(ShapeError::new(
                "from_vec",
                format!(
                    "shape {shape} holds {} elements but {} were provided",
                    shape.len(),
                    data.len()
                ),
            ));
        }
        Ok(Self { shape, data })
    }

    /// Builds a tensor by evaluating `f` at each linear index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(&mut f).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> Result<f32, ShapeError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank mismatch or out-of-bounds coordinates.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), ShapeError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutably iterates over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Returns a tensor with the same data viewed under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, ShapeError> {
        let shape = shape.into();
        self.shape.check_same_len(&shape, "reshape")?;
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Consuming variant of [`reshape`](Self::reshape) that avoids a copy.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when element counts differ.
    pub fn into_reshaped(self, shape: impl Into<Shape>) -> Result<Tensor, ShapeError> {
        let shape = shape.into();
        self.shape.check_same_len(&shape, "into_reshaped")?;
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(
                "zip_with",
                format!("shapes {} and {} differ", self.shape, other.shape),
            ));
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Adds `scale * other` into `self` (the BLAS `axpy` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(
                "axpy",
                format!("shapes {} and {} differ", self.shape, other.shape),
            ));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Minimum element, or `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Index of the maximum element (first on ties), or `None` when the
    /// tensor is empty or every element is NaN.
    ///
    /// NaN elements are ignored rather than poisoning the comparison; see
    /// [`nan_aware_argmax`].
    pub fn argmax(&self) -> Option<usize> {
        nan_aware_argmax(&self.data)
    }

    /// Extracts image `n` from an NCHW batch as a `[1, C, H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank-4 or `n` is out of
    /// bounds.
    pub fn batch_item(&self, n: usize) -> Result<Tensor, ShapeError> {
        if self.shape.rank() != 4 {
            return Err(ShapeError::new(
                "batch_item",
                format!("expected rank-4 NCHW tensor, got {}", self.shape),
            ));
        }
        let (nn, c, h, w) = (
            self.shape.dim(0),
            self.shape.dim(1),
            self.shape.dim(2),
            self.shape.dim(3),
        );
        if n >= nn {
            return Err(ShapeError::new(
                "batch_item",
                format!("image {n} out of bounds for batch of {nn}"),
            ));
        }
        let stride = c * h * w;
        let data = self.data[n * stride..(n + 1) * stride].to_vec();
        Tensor::from_vec(Shape::nchw(1, c, h, w), data)
    }

    /// Row `r` of a rank-2 tensor as a vector tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank-2 or `r` is out of
    /// bounds.
    pub fn row(&self, r: usize) -> Result<Tensor, ShapeError> {
        if self.shape.rank() != 2 {
            return Err(ShapeError::new(
                "row",
                format!("expected matrix, got {}", self.shape),
            ));
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        if r >= rows {
            return Err(ShapeError::new(
                "row",
                format!("row {r} out of bounds for {rows} rows"),
            ));
        }
        Tensor::from_vec(
            Shape::vector(cols),
            self.data[r * cols..(r + 1) * cols].to_vec(),
        )
    }

    /// Stacks rank-4 `[1, C, H, W]` tensors into an `[N, C, H, W]` batch.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `items` is empty or the shapes disagree.
    pub fn stack_batch(items: &[Tensor]) -> Result<Tensor, ShapeError> {
        let first = items
            .first()
            .ok_or_else(|| ShapeError::new("stack_batch", "no tensors provided"))?;
        if first.shape.rank() != 4 || first.shape.dim(0) != 1 {
            return Err(ShapeError::new(
                "stack_batch",
                format!("expected [1,C,H,W] items, got {}", first.shape),
            ));
        }
        let mut data = Vec::with_capacity(first.len() * items.len());
        for item in items {
            if item.shape != first.shape {
                return Err(ShapeError::new(
                    "stack_batch",
                    format!("item shape {} differs from {}", item.shape, first.shape),
                ));
            }
            data.extend_from_slice(&item.data);
        }
        Tensor::from_vec(
            Shape::nchw(
                items.len(),
                first.shape.dim(1),
                first.shape.dim(2),
                first.shape.dim(3),
            ),
            data,
        )
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "[{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::zip_with`] for a checked
    /// variant.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
            .expect("tensor add: shape mismatch")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::zip_with`] for a checked
    /// variant.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
            .expect("tensor sub: shape mismatch")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// In-place elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::axpy`] for a checked variant.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs)
            .expect("tensor add_assign: shape mismatch");
    }
}

/// Index of the largest finite-or-comparable value in `values`, skipping
/// NaN entries; first index wins ties. Returns `None` when the slice is
/// empty or all-NaN.
///
/// This is the single argmax used for classification everywhere in the
/// workspace (`Tensor::argmax`, `Network::argmax_rows`, the pipeline's
///// BNN score stage): a NaN score must never be silently reported as
/// "class 0", it must be skipped — and an all-NaN row must surface as an
/// explicit `None` the caller turns into an error.
pub fn nan_aware_argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &x) in values.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some(b) if values[b] >= x => {}
            _ => best = Some(i),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros([2, 2]).iter().all(|&x| x == 0.0));
        assert!(Tensor::ones([2, 2]).iter().all(|&x| x == 1.0));
        assert!(Tensor::filled([3], 2.5).iter().all(|&x| x == 2.5));
        let f = Tensor::from_fn([4], |i| i as f32);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec([2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 7.0).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 7.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([4, 2]).is_err());
        let owned = t.into_reshaped([6]).unwrap();
        assert_eq!(owned.shape().dims(), &[6]);
    }

    #[test]
    fn map_and_zip_behave_elementwise() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!(a.map(|x| x * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(
            a.zip_with(&b, |x, y| y - x).unwrap().as_slice(),
            &[9.0, 18.0, 27.0]
        );
        let c = Tensor::zeros([4]);
        assert!(a.zip_with(&c, |x, _| x).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones([2]);
        let g = Tensor::from_vec([2], vec![2.0, 4.0]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 5.0, 0.0]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), Some(5.0));
        assert_eq!(t.min(), Some(-2.0));
        assert_eq!(t.argmax(), Some(2));
        let e = Tensor::zeros([0]);
        assert_eq!(e.argmax(), None);
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn argmax_takes_first_on_ties() {
        let t = Tensor::from_vec([3], vec![1.0, 1.0, 0.0]).unwrap();
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn argmax_skips_nan_instead_of_defaulting_to_zero() {
        assert_eq!(nan_aware_argmax(&[f32::NAN, 1.0, 2.0]), Some(2));
        assert_eq!(nan_aware_argmax(&[1.0, f32::NAN, 0.5]), Some(0));
        assert_eq!(nan_aware_argmax(&[f32::NAN, f32::NAN]), None);
        assert_eq!(nan_aware_argmax(&[]), None);
        assert_eq!(
            nan_aware_argmax(&[f32::NEG_INFINITY, f32::INFINITY]),
            Some(1)
        );
        let t = Tensor::from_vec([3], vec![f32::NAN, 0.1, 0.9]).unwrap();
        assert_eq!(t.argmax(), Some(2));
    }

    #[test]
    fn batch_item_extracts_images() {
        let t = Tensor::from_fn(Shape::nchw(2, 1, 2, 2), |i| i as f32);
        let img1 = t.batch_item(1).unwrap();
        assert_eq!(img1.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(t.batch_item(2).is_err());
        assert!(Tensor::zeros([4]).batch_item(0).is_err());
    }

    #[test]
    fn stack_batch_inverts_batch_item() {
        let t = Tensor::from_fn(Shape::nchw(3, 2, 1, 1), |i| i as f32);
        let items: Vec<Tensor> = (0..3).map(|n| t.batch_item(n).unwrap()).collect();
        let restacked = Tensor::stack_batch(&items).unwrap();
        assert_eq!(restacked, t);
        assert!(Tensor::stack_batch(&[]).is_err());
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        assert_eq!(t.row(1).unwrap().as_slice(), &[3.0, 4.0, 5.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn operators_match_zip() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec([2], vec![3.0, 5.0]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros([2, 2]);
        assert!(!t.to_string().is_empty());
        let long = Tensor::zeros([16]);
        assert!(long.to_string().contains('…'));
    }
}
