use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ShapeError;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// Shapes are row-major: the last dimension is contiguous in memory. A
/// zero-dimensional shape describes a scalar with one element.
///
/// # Example
///
/// ```
/// use mp_tensor::Shape;
///
/// let s = Shape::new([2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimensions, outermost first.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self { dims: dims.into() }
    }

    /// Shape of a scalar (one element, zero dimensions).
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// Shape of a length-`n` vector.
    pub fn vector(n: usize) -> Self {
        Self::new([n])
    }

    /// Shape of an `rows × cols` matrix.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Self::new([rows, cols])
    }

    /// Shape of an NCHW image batch: `n` images, `c` channels, `h × w` pixels.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self::new([n, c, h, w])
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` when the shape holds no elements (some dim is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `index` has the wrong rank or any
    /// coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize, ShapeError> {
        if index.len() != self.dims.len() {
            return Err(ShapeError::new(
                "offset",
                format!(
                    "index rank {} does not match shape rank {}",
                    index.len(),
                    self.dims.len()
                ),
            ));
        }
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(ShapeError::new(
                    "offset",
                    format!("index {i} out of bounds for axis {axis} of size {d}"),
                ));
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Checks element-count compatibility for a reshape to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when element counts differ.
    pub fn check_same_len(&self, other: &Shape, op: &str) -> Result<(), ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new(
                op,
                format!(
                    "cannot view {} elements ({self}) as {} elements ({other})",
                    self.len(),
                    other.len()
                ),
            ));
        }
        Ok(())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Self::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Self::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::vector(7).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_manual_walk() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::matrix(2, 2);
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 2]).is_err());
    }

    #[test]
    fn empty_shape_detected() {
        assert!(Shape::new([3, 0, 2]).is_empty());
        assert!(!Shape::new([3, 1, 2]).is_empty());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::nchw(1, 3, 32, 32).to_string(), "[1×3×32×32]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn check_same_len_accepts_reinterpretation() {
        let a = Shape::new([2, 6]);
        let b = Shape::new([3, 4]);
        assert!(a.check_same_len(&b, "reshape").is_ok());
        assert!(a.check_same_len(&Shape::new([5]), "reshape").is_err());
    }

    #[test]
    fn conversions_from_arrays_and_slices() {
        let s: Shape = [1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let v: Shape = vec![3, 4].into();
        assert_eq!(v.dims(), &[3, 4]);
        let r: Shape = (&[5usize, 6][..]).into();
        assert_eq!(r.dims(), &[5, 6]);
    }
}
