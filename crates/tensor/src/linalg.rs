//! Dense linear algebra over [`Tensor`] matrices.
//!
//! The workhorse is [`matmul`], a cache-blocked row-major GEMM used to lower
//! convolutions (via [`crate::conv::im2col`]) and fully-connected layers.
//! [`matmul_transpose_a`] / [`matmul_transpose_b`] cover the two transposed
//! products backpropagation needs without materialising transposed copies.
//!
//! Every product also has an `_into` variant that writes into a reusable
//! caller-owned buffer (see [`crate::Workspace`]) so hot inference loops can
//! run without per-call allocations.
//!
//! All kernels propagate non-finite values: `0 × NaN = NaN` and
//! `0 × ∞ = NaN` reach the output instead of being skipped, so upstream
//! numerical blowups surface instead of being masked by zero weights.

use crate::{Shape, ShapeError, Tensor};

/// Cache-blocking tile edge, tuned for 32 KiB L1 caches.
const BLOCK: usize = 64;

fn expect_matrix(t: &Tensor, op: &str, name: &str) -> Result<(usize, usize), ShapeError> {
    if t.shape().rank() != 2 {
        return Err(ShapeError::new(
            op,
            format!("{name} must be a matrix, got {}", t.shape()),
        ));
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

/// Core GEMM micro-kernel: `out[i][j] += sum_k a[i][k] * b[k][j]`.
///
/// Blocked over `m` and `k`, with the `k` loop unrolled by four so each
/// pass over an output row folds four rank-1 updates into one. `out` must
/// already be zeroed (or hold a partial sum to accumulate onto).
fn gemm_kernel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                let mut kk = k0;
                while kk + 4 <= k1 {
                    let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
                    let b0 = &b[kk * n..(kk + 1) * n];
                    let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                    let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                    let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                    kk += 4;
                }
                for kr in kk..k1 {
                    let aik = arow[kr];
                    let brow = &b[kr * n..(kr + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aik * bkj;
                    }
                }
            }
        }
    }
}

/// `aᵀ × b` micro-kernel: `out[i][j] += sum_k a[k][i] * b[k][j]`.
///
/// Mirrors [`gemm_kernel`]'s blocking and unroll grouping exactly, so the
/// result is bit-identical to `gemm_kernel` run on a materialised `aᵀ`.
fn gemm_ta_kernel(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let orow = &mut out[i * n..(i + 1) * n];
                let mut kk = k0;
                while kk + 4 <= k1 {
                    let a0 = a[kk * m + i];
                    let a1 = a[(kk + 1) * m + i];
                    let a2 = a[(kk + 2) * m + i];
                    let a3 = a[(kk + 3) * m + i];
                    let b0 = &b[kk * n..(kk + 1) * n];
                    let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                    let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                    let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                    kk += 4;
                }
                for kr in kk..k1 {
                    let aki = a[kr * m + i];
                    let brow = &b[kr * n..(kr + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aki * bkj;
                    }
                }
            }
        }
    }
}

/// `a × bᵀ` micro-kernel: `out[i][j] = dot(a_row_i, b_row_j)`.
///
/// Both operands are walked along contiguous rows; the dot is split over
/// four accumulators to break the serial FP dependency chain.
fn gemm_tb_kernel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc0 = 0.0f32;
            let mut acc1 = 0.0f32;
            let mut acc2 = 0.0f32;
            let mut acc3 = 0.0f32;
            let mut kk = 0;
            while kk + 4 <= k {
                acc0 += arow[kk] * brow[kk];
                acc1 += arow[kk + 1] * brow[kk + 1];
                acc2 += arow[kk + 2] * brow[kk + 2];
                acc3 += arow[kk + 3] * brow[kk + 3];
                kk += 4;
            }
            let mut acc = (acc0 + acc1) + (acc2 + acc3);
            for kr in kk..k {
                acc += arow[kr] * brow[kr];
            }
            *o += acc;
        }
    }
}

fn check_inner(op: &str, what: &str, ka: usize, kb: usize) -> Result<(), ShapeError> {
    if ka != kb {
        return Err(ShapeError::new(op, format!("{what} differ: {ka} vs {kb}")));
    }
    Ok(())
}

/// Zero-fills `out` to exactly `len` elements, reusing its capacity.
fn reset(out: &mut Vec<f32>, len: usize) {
    out.clear();
    out.resize(len, 0.0);
}

/// Matrix product `a × b` written into a reusable buffer.
///
/// `out` is cleared and resized to `m × n`; its existing capacity is
/// reused, so repeated calls with the same buffer do not allocate.
/// Returns the `(rows, cols)` of the product.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the inner
/// dimensions disagree.
pub fn matmul_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut Vec<f32>,
) -> Result<(usize, usize), ShapeError> {
    let (m, ka) = expect_matrix(a, "matmul", "a")?;
    let (kb, n) = expect_matrix(b, "matmul", "b")?;
    check_inner("matmul", "inner dimensions", ka, kb)?;
    reset(out, m * n);
    gemm_kernel(m, ka, n, a.as_slice(), b.as_slice(), out);
    Ok((m, n))
}

/// Matrix product `a × b` for row-major matrices.
///
/// Uses i-k-j loop order with cache blocking and a four-way unrolled
/// inner update, which vectorises well on the innermost contiguous axis.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the inner
/// dimensions disagree.
///
/// # Example
///
/// ```
/// use mp_tensor::{linalg, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let identity = Tensor::from_vec(Shape::matrix(2, 2), vec![1., 0., 0., 1.])?;
/// let m = Tensor::from_vec(Shape::matrix(2, 2), vec![1., 2., 3., 4.])?;
/// assert_eq!(linalg::matmul(&identity, &m)?, m);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let mut out = Vec::new();
    let (m, n) = matmul_into(a, b, &mut out)?;
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Matrix product `aᵀ × b` written into a reusable buffer.
///
/// Same buffer contract as [`matmul_into`]. Bit-identical to
/// `matmul_into(transpose(a), b, out)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the row counts
/// of `a` and `b` disagree.
pub fn matmul_transpose_a_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut Vec<f32>,
) -> Result<(usize, usize), ShapeError> {
    let (ka, m) = expect_matrix(a, "matmul_transpose_a", "a")?;
    let (kb, n) = expect_matrix(b, "matmul_transpose_a", "b")?;
    check_inner("matmul_transpose_a", "row counts", ka, kb)?;
    reset(out, m * n);
    gemm_ta_kernel(ka, m, n, a.as_slice(), b.as_slice(), out);
    Ok((m, n))
}

/// Matrix product `aᵀ × b` without materialising `aᵀ`.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the row counts
/// of `a` and `b` disagree.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let mut out = Vec::new();
    let (m, n) = matmul_transpose_a_into(a, b, &mut out)?;
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Matrix product `a × bᵀ` written into a reusable buffer.
///
/// Same buffer contract as [`matmul_into`].
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the column
/// counts of `a` and `b` disagree.
pub fn matmul_transpose_b_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut Vec<f32>,
) -> Result<(usize, usize), ShapeError> {
    let (m, ka) = expect_matrix(a, "matmul_transpose_b", "a")?;
    let (n, kb) = expect_matrix(b, "matmul_transpose_b", "b")?;
    check_inner("matmul_transpose_b", "column counts", ka, kb)?;
    reset(out, m * n);
    gemm_tb_kernel(m, ka, n, a.as_slice(), b.as_slice(), out);
    Ok((m, n))
}

/// Matrix product `a × bᵀ` without materialising `bᵀ`.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the column
/// counts of `a` and `b` disagree.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let mut out = Vec::new();
    let (m, n) = matmul_transpose_b_into(a, b, &mut out)?;
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Matrix–vector product `a × x`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a` is not a matrix, `x` is not a vector, or
/// the dimensions disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k) = expect_matrix(a, "matvec", "a")?;
    if x.shape().rank() != 1 || x.shape().dim(0) != k {
        return Err(ShapeError::new(
            "matvec",
            format!("expected vector of length {k}, got {}", x.shape()),
        ));
    }
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &av[i * k..(i + 1) * k];
        let mut acc = 0.0;
        for (&r, &v) in row.iter().zip(xv) {
            acc += r * v;
        }
        *o = acc;
    }
    Tensor::from_vec(Shape::vector(m), out)
}

/// Returns the transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a` is not rank-2.
pub fn transpose(a: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, n) = expect_matrix(a, "transpose", "a")?;
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(Shape::matrix(n, m), out)
}

/// Dot product of two equal-length vectors.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-1 or lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32, ShapeError> {
    if a.shape().rank() != 1 || b.shape().rank() != 1 || a.len() != b.len() {
        return Err(ShapeError::new(
            "dot",
            format!(
                "expected equal-length vectors, got {} and {}",
                a.shape(),
                b.shape()
            ),
        ));
    }
    Ok(a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum())
}

/// Naive triple-loop reference GEMM, kept for testing the blocked kernel.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, ka) = expect_matrix(a, "matmul_reference", "a")?;
    let (kb, n) = expect_matrix(b, "matmul_reference", "b")?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul_reference",
            format!("inner dimensions differ: {ka} vs {kb}"),
        ));
    }
    let mut out = Tensor::zeros(Shape::matrix(m, n));
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..ka {
                acc += a.as_slice()[i * ka + k] * b.as_slice()[k * n + j];
            }
            out.as_mut_slice()[i * n + j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: [usize; 2]) -> Tensor {
        Tensor::from_fn(shape, |i| (i as f32) * 0.37 - 2.0)
    }

    #[test]
    fn matmul_matches_reference_on_odd_sizes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (7, 13, 11), (65, 70, 67)] {
            let a = seq([m, k]);
            let b = seq([k, n]);
            let fast = matmul(&a, &b).unwrap();
            let slow = matmul_reference(&a, &b).unwrap();
            for (x, y) in fast.iter().zip(slow.iter()) {
                // Mixed tolerance: the unrolled kernel groups partial sums
                // differently from the naive loop, so large magnitudes can
                // differ in the last f32 ulp (|y|·2⁻²³ ≈ 0.1 at 9e5).
                let tol = 1e-3 + y.abs() * 1e-6;
                assert!((x - y).abs() < tol, "mismatch {x} vs {y} at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn transpose_products_match_explicit_transpose() {
        let a = seq([4, 6]);
        let b = seq([4, 5]);
        let at = transpose(&a).unwrap();
        let want = matmul(&at, &b).unwrap();
        let got = matmul_transpose_a(&a, &b).unwrap();
        assert_eq!(got, want);

        let c = seq([3, 6]);
        let ct = transpose(&c).unwrap();
        let want2 = matmul(&a, &ct).unwrap();
        let got2 = matmul_transpose_b(&a, &c).unwrap();
        for (x, y) in got2.iter().zip(want2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_a_is_bit_identical_to_explicit_transpose_across_block_edges() {
        // The unroll grouping in gemm_ta_kernel must mirror gemm_kernel so
        // reordered summation cannot introduce drift between the two paths.
        for (k, m, n) in [(5, 7, 3), (64, 65, 9), (130, 66, 4)] {
            let a = seq([k, m]);
            let b = seq([k, n]);
            let want = matmul(&transpose(&a).unwrap(), &b).unwrap();
            let got = matmul_transpose_a(&a, &b).unwrap();
            assert_eq!(got.as_slice(), want.as_slice(), "({k},{m},{n})");
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = seq([3, 7]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = seq([4, 3]);
        let x = Tensor::from_vec([3], vec![1.0, -1.0, 2.0]).unwrap();
        let xm = x.reshape([3, 1]).unwrap();
        let via_matmul = matmul(&a, &xm).unwrap();
        let via_matvec = matvec(&a, &x).unwrap();
        assert_eq!(via_matvec.as_slice(), via_matmul.as_slice());
        assert!(matvec(&a, &Tensor::zeros([4])).is_err());
    }

    #[test]
    fn dot_basic() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
        assert!(dot(&a, &Tensor::zeros([2])).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let n = 5;
        let eye = Tensor::from_fn([n, n], |i| if i / n == i % n { 1.0 } else { 0.0 });
        let a = seq([n, n]);
        assert_eq!(matmul(&eye, &a).unwrap(), a);
        assert_eq!(matmul(&a, &eye).unwrap(), a);
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_allocating_paths() {
        let a = seq([5, 9]);
        let b = seq([9, 7]);
        let mut buf = Vec::new();
        let (m, n) = matmul_into(&a, &b, &mut buf).unwrap();
        assert_eq!((m, n), (5, 7));
        assert_eq!(buf.as_slice(), matmul(&a, &b).unwrap().as_slice());
        let cap = buf.capacity();

        // Smaller product into the same buffer: no reallocation.
        let c = seq([3, 9]);
        matmul_into(&c, &b, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_slice(), matmul(&c, &b).unwrap().as_slice());

        let ta = seq([9, 5]);
        matmul_transpose_a_into(&ta, &b, &mut buf).unwrap();
        assert_eq!(
            buf.as_slice(),
            matmul_transpose_a(&ta, &b).unwrap().as_slice()
        );

        let tb = seq([7, 9]);
        matmul_transpose_b_into(&a, &tb, &mut buf).unwrap();
        assert_eq!(
            buf.as_slice(),
            matmul_transpose_b(&a, &tb).unwrap().as_slice()
        );
    }

    #[test]
    fn matmul_propagates_nan_through_zero_weights() {
        // Regression: the old kernel skipped a[i][k] == 0.0, so a zero
        // weight silently swallowed a NaN/inf activation.
        let a = Tensor::from_vec([1, 2], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![f32::NAN, f32::INFINITY, 1.0, 2.0]).unwrap();
        let y = matmul(&a, &b).unwrap();
        assert!(y.as_slice()[0].is_nan(), "0 × NaN must propagate");
        assert!(
            y.as_slice()[1].is_nan(),
            "0 × ∞ must propagate (inf + finite stays NaN-free, 0·∞ = NaN)"
        );
    }

    #[test]
    fn matmul_transpose_a_propagates_nan_through_zero_weights() {
        let a = Tensor::from_vec([2, 1], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![f32::NAN, f32::INFINITY, 1.0, 2.0]).unwrap();
        let y = matmul_transpose_a(&a, &b).unwrap();
        assert!(y.as_slice()[0].is_nan());
        assert!(y.as_slice()[1].is_nan());
    }

    #[test]
    fn matmul_transpose_b_propagates_nan_through_zero_weights() {
        let a = Tensor::from_vec([1, 2], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec([1, 2], vec![f32::NAN, 1.0]).unwrap();
        let y = matmul_transpose_b(&a, &b).unwrap();
        assert!(y.as_slice()[0].is_nan());
    }

    #[test]
    fn nan_rows_stay_nan_across_all_variants() {
        let a = Tensor::from_fn([3, 4], |i| if i < 4 { f32::NAN } else { 1.0 });
        let b = seq([4, 5]);
        let y = matmul(&a, &b).unwrap();
        assert!(y.as_slice()[..5].iter().all(|v| v.is_nan()));
        assert!(y.as_slice()[5..].iter().all(|v| v.is_finite()));

        let bt = seq([5, 4]);
        let yt = matmul_transpose_b(&a, &bt).unwrap();
        assert!(yt.as_slice()[..5].iter().all(|v| v.is_nan()));
        assert!(yt.as_slice()[5..].iter().all(|v| v.is_finite()));
    }
}
