//! Dense linear algebra over [`Tensor`] matrices.
//!
//! The workhorse is [`matmul`], a cache-blocked row-major GEMM used to lower
//! convolutions (via [`crate::conv::im2col`]) and fully-connected layers.
//! [`matmul_transpose_a`] / [`matmul_transpose_b`] cover the two transposed
//! products backpropagation needs without materialising transposed copies.

use crate::{Shape, ShapeError, Tensor};

/// Cache-blocking tile edge, tuned for 32 KiB L1 caches.
const BLOCK: usize = 64;

fn expect_matrix(t: &Tensor, op: &str, name: &str) -> Result<(usize, usize), ShapeError> {
    if t.shape().rank() != 2 {
        return Err(ShapeError::new(
            op,
            format!("{name} must be a matrix, got {}", t.shape()),
        ));
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

/// Matrix product `a × b` for row-major matrices.
///
/// Uses i-k-j loop order with cache blocking, which vectorises well on the
/// innermost contiguous axis.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the inner
/// dimensions disagree.
///
/// # Example
///
/// ```
/// use mp_tensor::{linalg, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let identity = Tensor::from_vec(Shape::matrix(2, 2), vec![1., 0., 0., 1.])?;
/// let m = Tensor::from_vec(Shape::matrix(2, 2), vec![1., 2., 3., 4.])?;
/// assert_eq!(linalg::matmul(&identity, &m)?, m);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, ka) = expect_matrix(a, "matmul", "a")?;
    let (kb, n) = expect_matrix(b, "matmul", "b")?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul",
            format!("inner dimensions differ: {ka} vs {kb}"),
        ));
    }
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..ka).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(ka);
            for i in i0..i1 {
                let arow = &av[i * ka..(i + 1) * ka];
                let orow = &mut out[i * n..(i + 1) * n];
                for k in k0..k1 {
                    let aik = arow[k];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bv[k * n..(k + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aik * bkj;
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Matrix product `aᵀ × b` without materialising `aᵀ`.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the row counts
/// of `a` and `b` disagree.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (ka, m) = expect_matrix(a, "matmul_transpose_a", "a")?;
    let (kb, n) = expect_matrix(b, "matmul_transpose_a", "b")?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul_transpose_a",
            format!("row counts differ: {ka} vs {kb}"),
        ));
    }
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        let brow = &bv[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Matrix product `a × bᵀ` without materialising `bᵀ`.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-2 or the column
/// counts of `a` and `b` disagree.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, ka) = expect_matrix(a, "matmul_transpose_b", "a")?;
    let (n, kb) = expect_matrix(b, "matmul_transpose_b", "b")?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul_transpose_b",
            format!("column counts differ: {ka} vs {kb}"),
        ));
    }
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bv[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Matrix–vector product `a × x`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a` is not a matrix, `x` is not a vector, or
/// the dimensions disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k) = expect_matrix(a, "matvec", "a")?;
    if x.shape().rank() != 1 || x.shape().dim(0) != k {
        return Err(ShapeError::new(
            "matvec",
            format!("expected vector of length {k}, got {}", x.shape()),
        ));
    }
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &av[i * k..(i + 1) * k];
        let mut acc = 0.0;
        for (&r, &v) in row.iter().zip(xv) {
            acc += r * v;
        }
        *o = acc;
    }
    Tensor::from_vec(Shape::vector(m), out)
}

/// Returns the transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a` is not rank-2.
pub fn transpose(a: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, n) = expect_matrix(a, "transpose", "a")?;
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(Shape::matrix(n, m), out)
}

/// Dot product of two equal-length vectors.
///
/// # Errors
///
/// Returns [`ShapeError`] if either input is not rank-1 or lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32, ShapeError> {
    if a.shape().rank() != 1 || b.shape().rank() != 1 || a.len() != b.len() {
        return Err(ShapeError::new(
            "dot",
            format!(
                "expected equal-length vectors, got {} and {}",
                a.shape(),
                b.shape()
            ),
        ));
    }
    Ok(a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum())
}

/// Naive triple-loop reference GEMM, kept for testing the blocked kernel.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, ka) = expect_matrix(a, "matmul_reference", "a")?;
    let (kb, n) = expect_matrix(b, "matmul_reference", "b")?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul_reference",
            format!("inner dimensions differ: {ka} vs {kb}"),
        ));
    }
    let mut out = Tensor::zeros(Shape::matrix(m, n));
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..ka {
                acc += a.as_slice()[i * ka + k] * b.as_slice()[k * n + j];
            }
            out.as_mut_slice()[i * n + j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: [usize; 2]) -> Tensor {
        Tensor::from_fn(shape, |i| (i as f32) * 0.37 - 2.0)
    }

    #[test]
    fn matmul_matches_reference_on_odd_sizes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (7, 13, 11), (65, 70, 67)] {
            let a = seq([m, k]);
            let b = seq([k, n]);
            let fast = matmul(&a, &b).unwrap();
            let slow = matmul_reference(&a, &b).unwrap();
            for (x, y) in fast.iter().zip(slow.iter()) {
                assert!((x - y).abs() < 1e-3, "mismatch {x} vs {y} at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn transpose_products_match_explicit_transpose() {
        let a = seq([4, 6]);
        let b = seq([4, 5]);
        let at = transpose(&a).unwrap();
        let want = matmul(&at, &b).unwrap();
        let got = matmul_transpose_a(&a, &b).unwrap();
        assert_eq!(got, want);

        let c = seq([3, 6]);
        let ct = transpose(&c).unwrap();
        let want2 = matmul(&a, &ct).unwrap();
        let got2 = matmul_transpose_b(&a, &c).unwrap();
        for (x, y) in got2.iter().zip(want2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = seq([3, 7]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = seq([4, 3]);
        let x = Tensor::from_vec([3], vec![1.0, -1.0, 2.0]).unwrap();
        let xm = x.reshape([3, 1]).unwrap();
        let via_matmul = matmul(&a, &xm).unwrap();
        let via_matvec = matvec(&a, &x).unwrap();
        assert_eq!(via_matvec.as_slice(), via_matmul.as_slice());
        assert!(matvec(&a, &Tensor::zeros([4])).is_err());
    }

    #[test]
    fn dot_basic() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
        assert!(dot(&a, &Tensor::zeros([2])).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let n = 5;
        let eye = Tensor::from_fn([n, n], |i| if i / n == i % n { 1.0 } else { 0.0 });
        let a = seq([n, n]);
        assert_eq!(matmul(&eye, &a).unwrap(), a);
        assert_eq!(matmul(&a, &eye).unwrap(), a);
    }
}
