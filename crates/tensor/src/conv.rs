//! Convolution lowering: `im2col` / `col2im`.
//!
//! FINN (and this reproduction's float engine) computes convolutions as
//! matrix–matrix products by unrolling input patches into columns, the
//! approach of Chellapilla et al. that the paper cites as \[7\]. The forward
//! lowering is [`im2col`]; its adjoint, used by backpropagation to scatter
//! column gradients back into image space, is [`col2im`].

use serde::{Deserialize, Serialize};

use crate::{Shape, ShapeError, Tensor};

/// Spatial geometry of a 2-D convolution or pooling window.
///
/// # Example
///
/// ```
/// use mp_tensor::conv::ConvGeometry;
///
/// // A 3×3 valid convolution over a 32×32 input, as in the paper's FINN
/// // network (no zero padding).
/// let g = ConvGeometry::new(3, 1, 0);
/// assert_eq!(g.output_dim(32), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Square kernel edge `K`.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding added on every border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry with a square `kernel`, `stride` and `padding`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial extent for an input extent of `input`.
    ///
    /// Returns 0 when the window does not fit, including when
    /// `input + 2·padding` would overflow `usize` — absurd padding must
    /// not wrap around and report a bogus (tiny) output size in release
    /// builds.
    pub fn output_dim(&self, input: usize) -> usize {
        let padded = match self
            .padding
            .checked_mul(2)
            .and_then(|both| input.checked_add(both))
        {
            Some(padded) => padded,
            None => return 0,
        };
        if padded < self.kernel {
            0
        } else {
            (padded - self.kernel) / self.stride + 1
        }
    }
}

/// Unrolls a `[1, C, H, W]` image into a patch matrix.
///
/// The result has shape `[C·K·K, OH·OW]`: column `o` holds the receptive
/// field of output pixel `o`, ordered channel-major then row-major within
/// the kernel window. A weight matrix of shape `[OD, C·K·K]` multiplied by
/// this matrix yields the `[OD, OH·OW]` convolution output.
///
/// # Errors
///
/// Returns [`ShapeError`] if `image` is not a `[1, C, H, W]` tensor or the
/// window does not fit the padded input.
pub fn im2col(image: &Tensor, geom: ConvGeometry) -> Result<Tensor, ShapeError> {
    let mut out = Vec::new();
    let (rows, cols) = im2col_into(image, geom, &mut out)?;
    Tensor::from_vec(Shape::matrix(rows, cols), out)
}

/// [`im2col`] writing into a reusable caller-owned buffer.
///
/// `out` is cleared and resized to `C·K·K × OH·OW`, reusing its existing
/// capacity; returns the `(rows, cols)` of the patch matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`im2col`].
pub fn im2col_into(
    image: &Tensor,
    geom: ConvGeometry,
    out: &mut Vec<f32>,
) -> Result<(usize, usize), ShapeError> {
    let shape = image.shape();
    if shape.rank() != 4 || shape.dim(0) != 1 {
        return Err(ShapeError::new(
            "im2col",
            format!("expected [1,C,H,W] image, got {shape}"),
        ));
    }
    let (c, h, w) = (shape.dim(1), shape.dim(2), shape.dim(3));
    im2col_slice_into(image.as_slice(), c, h, w, geom, out)
}

/// [`im2col`] over a raw `C·H·W` plane slice, writing into a reusable
/// buffer.
///
/// This is the zero-copy entry point batched inference uses: one image of
/// an NCHW batch can be lowered directly from its slice of the batch
/// tensor, without first materialising a `[1, C, H, W]` copy.
///
/// # Errors
///
/// Returns [`ShapeError`] if `image` is not exactly `c·h·w` elements or
/// the window does not fit the padded input.
pub fn im2col_slice_into(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
    out: &mut Vec<f32>,
) -> Result<(usize, usize), ShapeError> {
    if image.len() != c * h * w {
        return Err(ShapeError::new(
            "im2col",
            format!(
                "expected {c}×{h}×{w} = {} elements, got {}",
                c * h * w,
                image.len()
            ),
        ));
    }
    let oh = geom.output_dim(h);
    let ow = geom.output_dim(w);
    if oh == 0 || ow == 0 {
        return Err(ShapeError::new(
            "im2col",
            format!(
                "kernel {0}×{0} stride {1} does not fit {h}×{w} input with padding {2}",
                geom.kernel, geom.stride, geom.padding
            ),
        ));
    }
    let k = geom.kernel;
    let cols = oh * ow;
    let rows = c * k * k;
    out.clear();
    out.resize(rows * cols, 0.0);
    for ch in 0..c {
        let plane = &image[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = src_row[ix as usize];
                    }
                }
            }
        }
    }
    Ok((rows, cols))
}

/// Adjoint of [`im2col`]: scatters a patch-matrix gradient back to image
/// space, summing overlapping contributions.
///
/// `cols` must have shape `[C·K·K, OH·OW]` for the image geometry given by
/// `(channels, height, width)` and `geom`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `cols` does not match the expected patch
/// matrix shape.
pub fn col2im(
    cols: &Tensor,
    channels: usize,
    height: usize,
    width: usize,
    geom: ConvGeometry,
) -> Result<Tensor, ShapeError> {
    let oh = geom.output_dim(height);
    let ow = geom.output_dim(width);
    let k = geom.kernel;
    let want = Shape::matrix(channels * k * k, oh * ow);
    if cols.shape() != &want {
        return Err(ShapeError::new(
            "col2im",
            format!("expected {want}, got {}", cols.shape()),
        ));
    }
    let ncols = oh * ow;
    let mut img = vec![0.0f32; channels * height * width];
    let cv = cols.as_slice();
    for ch in 0..channels {
        let plane = &mut img[ch * height * width..(ch + 1) * height * width];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let col_row = &cv[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= height as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= width as isize {
                            continue;
                        }
                        plane[iy as usize * width + ix as usize] += col_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::nchw(1, channels, height, width), img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg;

    #[test]
    fn output_dim_formula() {
        let g = ConvGeometry::new(3, 1, 0);
        assert_eq!(g.output_dim(32), 30);
        assert_eq!(g.output_dim(3), 1);
        assert_eq!(g.output_dim(2), 0);
        let p = ConvGeometry::new(3, 1, 1);
        assert_eq!(p.output_dim(32), 32);
        let s = ConvGeometry::new(2, 2, 0);
        assert_eq!(s.output_dim(8), 4);
    }

    #[test]
    fn output_dim_overflow_returns_zero() {
        // Regression: `input + 2·padding` used to wrap in release builds
        // and report a bogus output size.
        let g = ConvGeometry::new(3, 1, usize::MAX / 2 + 1);
        assert_eq!(g.output_dim(10), 0);
        let h = ConvGeometry::new(3, 1, 1);
        assert_eq!(h.output_dim(usize::MAX - 1), 0);
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        let _ = ConvGeometry::new(0, 1, 0);
    }

    #[test]
    fn im2col_into_matches_allocating_path_and_reuses_buffer() {
        let img = Tensor::from_fn(Shape::nchw(1, 2, 5, 4), |i| (i as f32) * 0.3 - 2.0);
        let geom = ConvGeometry::new(3, 1, 1);
        let want = im2col(&img, geom).unwrap();
        let mut buf = vec![7.0f32; 3]; // stale contents must be overwritten
        let (rows, cols) = im2col_into(&img, geom, &mut buf).unwrap();
        assert_eq!((rows, cols), (want.shape().dim(0), want.shape().dim(1)));
        assert_eq!(buf.as_slice(), want.as_slice());
        let cap = buf.capacity();
        im2col_into(&img, geom, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap);

        // The slice entry point lowers straight out of a batch tensor.
        let plane = img.as_slice();
        let (r2, c2) = im2col_slice_into(plane, 2, 5, 4, geom, &mut buf).unwrap();
        assert_eq!((r2, c2), (rows, cols));
        assert_eq!(buf.as_slice(), want.as_slice());
        assert!(im2col_slice_into(&plane[1..], 2, 5, 4, geom, &mut buf).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1×1 kernel im2col is just a channel-row view of the image.
        let img = Tensor::from_fn(Shape::nchw(1, 2, 2, 2), |i| i as f32);
        let cols = im2col(&img, ConvGeometry::new(1, 1, 0)).unwrap();
        assert_eq!(cols.shape().dims(), &[2, 4]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_known_3x3() {
        // 1 channel, 3×3 image, 2×2 kernel: 4 patches of 4 values.
        let img = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| i as f32);
        let cols = im2col(&img, ConvGeometry::new(2, 1, 0)).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // Patch matrix row r holds kernel element r across the 4 output pixels.
        // Patches (top-left origins): (0,0),(0,1),(1,0),(1,1).
        assert_eq!(cols.as_slice()[0..4], [0.0, 1.0, 3.0, 4.0]); // k(0,0)
        assert_eq!(cols.as_slice()[4..8], [1.0, 2.0, 4.0, 5.0]); // k(0,1)
        assert_eq!(cols.as_slice()[8..12], [3.0, 4.0, 6.0, 7.0]); // k(1,0)
        assert_eq!(cols.as_slice()[12..16], [4.0, 5.0, 7.0, 8.0]); // k(1,1)
    }

    #[test]
    fn im2col_with_padding_zero_fills() {
        let img = Tensor::ones(Shape::nchw(1, 1, 2, 2));
        let cols = im2col(&img, ConvGeometry::new(3, 1, 1)).unwrap();
        assert_eq!(cols.shape().dims(), &[9, 4]);
        // Center kernel element always hits a real pixel.
        assert_eq!(cols.as_slice()[4 * 4..4 * 4 + 4], [1.0, 1.0, 1.0, 1.0]);
        // Top-left kernel element only hits a real pixel for output (1,1).
        assert_eq!(cols.as_slice()[0..4], [0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn convolution_via_matmul_matches_direct() {
        // Direct 2-D convolution vs im2col+GEMM on a small case.
        let img = Tensor::from_fn(Shape::nchw(1, 1, 4, 4), |i| (i as f32) - 7.5);
        let w = Tensor::from_vec([1, 4], vec![1.0, -1.0, 0.5, 2.0]).unwrap(); // 2×2 kernel
        let geom = ConvGeometry::new(2, 1, 0);
        let cols = im2col(&img, geom).unwrap();
        let out = linalg::matmul(&w, &cols).unwrap();
        // Direct computation at output (1, 2): window rows 1..3, cols 2..4.
        let v = |y: usize, x: usize| img.as_slice()[y * 4 + x];
        let direct = v(1, 2) - v(1, 3) + 0.5 * v(2, 2) + 2.0 * v(2, 3);
        let got = out.as_slice()[3 + 2];
        assert!((got - direct).abs() < 1e-5, "{got} vs {direct}");
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let geom = ConvGeometry::new(3, 2, 1);
        let (c, h, w) = (2, 5, 6);
        let x = Tensor::from_fn(Shape::nchw(1, c, h, w), |i| ((i * 7919) % 13) as f32 - 6.0);
        let cols = im2col(&x, geom).unwrap();
        let y = Tensor::from_fn(cols.shape().clone(), |i| ((i * 104729) % 11) as f32 - 5.0);
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, c, h, w, geom).unwrap();
        let rhs: f32 = x.iter().zip(back.iter()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn errors_on_bad_inputs() {
        let img = Tensor::zeros(Shape::nchw(2, 1, 4, 4));
        assert!(im2col(&img, ConvGeometry::new(2, 1, 0)).is_err());
        let tiny = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(im2col(&tiny, ConvGeometry::new(3, 1, 0)).is_err());
        let bad_cols = Tensor::zeros([3, 3]);
        assert!(col2im(&bad_cols, 1, 4, 4, ConvGeometry::new(2, 1, 0)).is_err());
    }
}
