use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are inconsistent with an operation.
///
/// Carries the operation name and a human-readable description of the
/// mismatch so failures deep inside a network surface with context.
///
/// # Example
///
/// ```
/// use mp_tensor::{Shape, Tensor};
///
/// let err = Tensor::from_vec(Shape::matrix(2, 2), vec![1.0]).unwrap_err();
/// assert!(err.to_string().contains("from_vec"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: String,
    detail: String,
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with a mismatch `detail`.
    pub fn new(op: impl Into<String>, detail: impl Into<String>) -> Self {
        Self {
            op: op.into(),
            detail: detail.into(),
        }
    }

    /// The operation that rejected its inputs (e.g. `"matmul"`).
    pub fn op(&self) -> &str {
        &self.op
    }

    /// Human-readable description of the mismatch.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error in {}: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_and_detail() {
        let e = ShapeError::new("matmul", "inner dims 3 vs 4");
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("inner dims 3 vs 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }

    #[test]
    fn accessors_round_trip() {
        let e = ShapeError::new("conv2d", "bad kernel");
        assert_eq!(e.op(), "conv2d");
        assert_eq!(e.detail(), "bad kernel");
    }
}
