//! Seeded random tensor initialisers.
//!
//! Every stochastic component of the workspace draws from [`TensorRng`], a
//! thin deterministic wrapper over a counter-seeded PCG-style generator from
//! the `rand` crate, so that experiments are exactly reproducible from a
//! single `u64` seed recorded in the experiment logs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Shape, Tensor};

/// Deterministic random source for tensor initialisation and datasets.
///
/// # Example
///
/// ```
/// use mp_tensor::init::TensorRng;
///
/// let mut a = TensorRng::seed_from(42);
/// let mut b = TensorRng::seed_from(42);
/// assert_eq!(a.uniform([4], -1.0, 1.0), b.uniform([4], -1.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one uniform sample from `[lo, hi)`.
    pub fn next_uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// Draws one standard-normal sample via the Box–Muller transform.
    ///
    /// Implemented locally because the offline dependency set excludes
    /// `rand_distr`.
    pub fn next_normal(&mut self) -> f32 {
        // Box–Muller: u1 ∈ (0,1] keeps ln() finite.
        let u1: f32 = 1.0 - self.rng.gen::<f32>();
        let u2: f32 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Draws one sample from `N(mean, std²)`.
    pub fn next_gaussian(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.next_normal()
    }

    /// Uniform random integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn next_bool(&mut self, p: f32) -> bool {
        self.rng.gen::<f32>() < p
    }

    /// Tensor of i.i.d. uniform samples from `[lo, hi)`.
    pub fn uniform(&mut self, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
        let shape = shape.into();
        Tensor::from_fn(shape, |_| self.next_uniform(lo, hi))
    }

    /// Tensor of i.i.d. `N(mean, std²)` samples.
    pub fn normal(&mut self, shape: impl Into<Shape>, mean: f32, std: f32) -> Tensor {
        let shape = shape.into();
        Tensor::from_fn(shape, |_| self.next_gaussian(mean, std))
    }

    /// He (Kaiming) initialisation for layers feeding ReLUs: `N(0, √(2/fan_in))`.
    pub fn he(&mut self, shape: impl Into<Shape>, fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        self.normal(shape, 0.0, std)
    }

    /// Xavier (Glorot) uniform initialisation: `U(±√(6/(fan_in+fan_out)))`.
    pub fn xavier(&mut self, shape: impl Into<Shape>, fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        self.uniform(shape, -bound, bound)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Forks an independent generator seeded from this one's stream.
    ///
    /// Useful for giving parallel workers decorrelated streams while
    /// keeping the whole run reproducible from the root seed.
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed_from(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_normal(), b.next_normal());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.next_normal() == b.next_normal())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from(3);
        let t = rng.uniform([1000], -0.5, 0.5);
        assert!(t.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = TensorRng::seed_from(4);
        let t = rng.normal([20_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut rng = TensorRng::seed_from(5);
        let wide = rng.he([10_000], 1000);
        let narrow = rng.he([10_000], 10);
        let spread = |t: &Tensor| t.iter().map(|&x| x * x).sum::<f32>() / t.len() as f32;
        assert!(spread(&narrow) > spread(&wide) * 10.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = TensorRng::seed_from(8);
        let mut f1 = root.fork();
        let mut f2 = root.fork();
        assert_ne!(f1.next_normal(), f2.next_normal());
    }

    #[test]
    fn next_bool_probability() {
        let mut rng = TensorRng::seed_from(9);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        assert!((hits as f32 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
