//! # mp-tensor
//!
//! Dense `f32` tensor substrate for the `multiprec` workspace.
//!
//! This crate provides the numeric foundation every other crate builds on:
//!
//! - [`Shape`]: dimension bookkeeping with row-major strides,
//! - [`Tensor`]: an owned, row-major `f32` n-dimensional array,
//! - [`linalg`]: blocked matrix multiplication and friends,
//! - [`conv`]: `im2col`/`col2im` lowering used by convolution layers,
//! - [`init`]: seeded random initialisers (uniform, normal, He, Xavier).
//!
//! The design follows the convolution-lowering approach of Chellapilla et
//! al. that the paper's FINN substrate also uses: convolutions become
//! matrix–matrix products over patch matrices.
//!
//! # Example
//!
//! ```
//! use mp_tensor::{Tensor, Shape};
//!
//! # fn main() -> Result<(), mp_tensor::ShapeError> {
//! let a = Tensor::from_vec(Shape::matrix(2, 3), vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::from_vec(Shape::matrix(3, 2), vec![7., 8., 9., 10., 11., 12.])?;
//! let c = mp_tensor::linalg::matmul(&a, &b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.as_slice()[0], 58.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod error;
mod shape;
mod tensor;
mod workspace;

pub mod conv;
pub mod init;
pub mod linalg;

pub use error::ShapeError;
pub use shape::Shape;
pub use tensor::{nan_aware_argmax, Tensor};
pub use workspace::{Parallelism, Workspace};
