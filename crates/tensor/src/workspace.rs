//! Reusable scratch buffers and thread-count configuration for batched
//! inference.
//!
//! The hot inference path lowers every convolution through
//! [`crate::conv::im2col_slice_into`] and a GEMM `_into` variant
//! (see [`crate::linalg`]). Those kernels write into caller-owned
//! `Vec<f32>` buffers; a [`Workspace`] pools such buffers so a layer can
//! borrow scratch space per image and hand it back, keeping steady-state
//! inference allocation-free. [`Parallelism`] says how many scoped worker
//! threads a batched operation may shard its rows across.

use serde::{Deserialize, Serialize};

/// A pool of reusable `f32` scratch buffers.
///
/// `take` hands out a buffer with at least the requested capacity
/// (contents unspecified — kernels writing into it are responsible for
/// initialisation); `put` returns it for reuse. One workspace serves one
/// thread: shards of a parallel batch each own their own `Workspace`.
///
/// # Example
///
/// ```
/// use mp_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let mut buf = ws.take(128);
/// buf.clear();
/// buf.resize(128, 0.0);
/// ws.put(buf);
/// let again = ws.take(64); // reuses the first buffer's allocation
/// assert!(again.capacity() >= 128);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a buffer with capacity for at least `len` elements.
    ///
    /// The buffer's length and contents are unspecified; callers must
    /// `clear`/`resize` (the `_into` kernels in [`crate::linalg`] and
    /// [`crate::conv`] do this themselves). Prefers the pooled buffer
    /// with the largest capacity so allocations converge to the high-water
    /// mark of the workload.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.reserve(len.saturating_sub(buf.len()));
                buf
            }
            None => Vec::with_capacity(len),
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn put(&mut self, mut buf: Vec<f32>) {
        buf.clear();
        // Keep the pool sorted by capacity so `take` pops the largest.
        let at = self
            .free
            .partition_point(|b| b.capacity() <= buf.capacity());
        self.free.insert(at, buf);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// How many threads a batched operation may shard its rows across.
///
/// `Parallelism` is plumbed from the pipeline down to
/// `Network::infer_batch_with` and `HardwareBnn::infer_batch_with`; both
/// produce bit-identical results at any thread count because batch rows
/// are computed independently with the same kernels, so the setting is a
/// pure throughput knob that never perturbs predictions or
/// fault-injection accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Single-threaded execution (the default).
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// Exactly `threads` workers; zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// One worker per hardware thread the OS reports.
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self { threads }
    }

    /// Configured worker count (always at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when work should stay on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Splits `items` work items into at most `threads` contiguous chunks
    /// of near-equal size, returned as `(start, end)` ranges. Never
    /// returns empty chunks; fewer chunks than threads when items run out.
    pub fn chunks(&self, items: usize) -> Vec<(usize, usize)> {
        let workers = self.threads.min(items).max(1);
        let base = items / workers;
        let extra = items % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            if len == 0 {
                break;
            }
            ranges.push((start, start + len));
            start += len;
        }
        ranges
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_prefers_largest_pooled_buffer() {
        let mut ws = Workspace::new();
        ws.put(Vec::with_capacity(16));
        ws.put(Vec::with_capacity(256));
        ws.put(Vec::with_capacity(64));
        let buf = ws.take(8);
        assert!(buf.capacity() >= 256);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn take_grows_when_pool_is_small() {
        let mut ws = Workspace::new();
        ws.put(Vec::with_capacity(4));
        let buf = ws.take(100);
        assert!(buf.capacity() >= 100);
    }

    #[test]
    fn chunks_cover_range_without_gaps() {
        for threads in 1..6 {
            for items in 0..20 {
                let par = Parallelism::new(threads);
                let chunks = par.chunks(items);
                let mut expect = 0;
                for &(s, e) in &chunks {
                    assert_eq!(s, expect);
                    assert!(e > s, "empty chunk");
                    expect = e;
                }
                assert_eq!(expect, items);
                assert!(chunks.len() <= threads);
            }
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert!(Parallelism::sequential().is_sequential());
        assert!(Parallelism::available().threads() >= 1);
    }
}
