//! Property tests for the tensor substrate.

use proptest::prelude::*;

use mp_tensor::conv::{im2col, ConvGeometry};
use mp_tensor::init::TensorRng;
use mp_tensor::{linalg, Shape, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matmul_associates_with_reference(m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        let a = Tensor::from_fn([m, k], |i| ((i * 17) % 7) as f32 - 3.0);
        let b = Tensor::from_fn([k, n], |i| ((i * 23) % 5) as f32 - 2.0);
        let fast = linalg::matmul(&a, &b).unwrap();
        let slow = linalg::matmul_reference(&a, &b).unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_products_consistent(m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = Tensor::from_fn([k, m], |i| (i as f32).sin());
        let b = Tensor::from_fn([k, n], |i| (i as f32).cos());
        let direct = linalg::matmul_transpose_a(&a, &b).unwrap();
        let explicit = linalg::matmul(&linalg::transpose(&a).unwrap(), &b).unwrap();
        for (x, y) in direct.iter().zip(explicit.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn reshape_preserves_sum(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let t = Tensor::from_fn(dims.clone(), |i| i as f32 * 0.5);
        let flat = t.reshape([t.len()]).unwrap();
        prop_assert!((t.sum() - flat.sum()).abs() < 1e-4);
    }

    #[test]
    fn offsets_are_bijective(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5) {
        let shape = Shape::new([d0, d1, d2]);
        let mut seen = vec![false; shape.len()];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let off = shape.offset(&[i, j, k]).unwrap();
                    prop_assert!(!seen[off], "offset {off} repeated");
                    seen[off] = true;
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn im2col_column_count_matches_geometry(
        c in 1usize..3, h in 3usize..10, w in 3usize..10, k in 1usize..3
    ) {
        let geom = ConvGeometry::new(k, 1, 0);
        prop_assume!(geom.output_dim(h) > 0 && geom.output_dim(w) > 0);
        let img = Tensor::zeros(Shape::nchw(1, c, h, w));
        let cols = im2col(&img, geom).unwrap();
        prop_assert_eq!(cols.shape().dims()[0], c * k * k);
        prop_assert_eq!(cols.shape().dims()[1], geom.output_dim(h) * geom.output_dim(w));
    }

    #[test]
    fn seeded_rng_is_pure(seed in any::<u64>()) {
        let mut a = TensorRng::seed_from(seed);
        let mut b = TensorRng::seed_from(seed);
        let ta = a.normal([16], 0.0, 1.0);
        let tb = b.normal([16], 0.0, 1.0);
        prop_assert_eq!(ta, tb);
    }

    #[test]
    fn axpy_matches_elementwise(scale in -4.0f32..4.0, len in 1usize..32) {
        let mut acc = Tensor::from_fn([len], |i| i as f32);
        let other = Tensor::from_fn([len], |i| (i as f32).cos());
        let want: Vec<f32> = acc
            .iter()
            .zip(other.iter())
            .map(|(&a, &b)| a + scale * b)
            .collect();
        acc.axpy(scale, &other).unwrap();
        for (x, y) in acc.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
