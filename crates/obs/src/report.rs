//! The exported observation snapshot and its JSON round-trip.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::ObsEvent;

/// Aggregate of all spans sharing one name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Stable span name (see [`crate::schema`]).
    pub name: String,
    /// Spans recorded under this name.
    pub count: u64,
    /// Summed duration, in seconds.
    pub total_s: f64,
    /// Shortest single span, in seconds.
    pub min_s: f64,
    /// Longest single span, in seconds.
    pub max_s: f64,
}

/// A monotonic counter's final value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    /// Stable counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A fixed-bucket histogram snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    /// Stable histogram name (its suffix selects the bucket edges).
    pub name: String,
    /// Upper bucket edges (`value <= edge`), from
    /// [`crate::schema::bucket_edges`].
    pub bucket_edges: Vec<f64>,
    /// Per-bucket counts; one more than `bucket_edges` (overflow last).
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// A deterministic snapshot of one recorder, exported as
/// `results/obs_<tag>.json`. Field names, metric names and bucket edges
/// are stable (guarded by the golden-schema test and
/// [`crate::schema::validate_report`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Schema version ([`crate::schema::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Typed events in arrival order (capped).
    pub events: Vec<ObsEvent>,
    /// Events discarded beyond the cap.
    pub events_dropped: u64,
}

impl ObsReport {
    /// The span aggregate named `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The counter value for `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The histogram named `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Writes `report` as pretty JSON to `<dir>/obs_<tag>.json`, creating
/// `dir` if needed, and returns the written path.
///
/// # Errors
///
/// Returns [`io::Error`] on serialization or filesystem failure, and an
/// [`io::ErrorKind::InvalidInput`] error when `tag` is not a well-formed
/// schema name (it becomes part of the filename).
pub fn write_report(report: &ObsReport, dir: &Path, tag: &str) -> io::Result<PathBuf> {
    if !crate::schema::valid_name(tag) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid report tag {tag:?}"),
        ));
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("obs_{tag}.json"));
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Parses a report back from its JSON text.
///
/// # Errors
///
/// Returns a description of the parse failure.
pub fn report_from_json(text: &str) -> Result<ObsReport, String> {
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsEvent, Recorder, SharedRecorder};

    fn sample() -> ObsReport {
        let rec = SharedRecorder::new();
        rec.record_span("pipeline.execute", 10, 2_000_010);
        rec.add("pipeline.images", 40);
        rec.observe("pipeline.bnn_image_s", 2e-3);
        rec.observe("pipeline.queue_depth", 3.0);
        rec.record_event(ObsEvent::Rerun { image: 7 });
        rec.record_event(ObsEvent::Degraded {
            image: 9,
            kind: "HostTransient".into(),
        });
        rec.report()
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let report = sample();
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back = report_from_json(&text).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn write_report_creates_tagged_file() {
        let dir = std::env::temp_dir().join("mp_obs_test_write");
        let path = write_report(&sample(), &dir, "unit").unwrap();
        assert!(path.ends_with("obs_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back = report_from_json(&text).unwrap();
        assert_eq!(back, sample());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_tag_rejected() {
        let dir = std::env::temp_dir();
        assert!(write_report(&sample(), &dir, "has space").is_err());
    }

    #[test]
    fn accessors_find_metrics() {
        let r = sample();
        assert!(r.span("pipeline.execute").is_some());
        assert_eq!(r.counter("pipeline.images"), 40);
        assert_eq!(r.counter("missing"), 0);
        assert!(r.histogram("pipeline.queue_depth").is_some());
    }
}
