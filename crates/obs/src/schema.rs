//! The stable metric schema: span/counter/histogram names and bucket
//! edges are part of the repository's external contract (dashboards and
//! the CI golden-schema test key on them). Renaming anything here is a
//! breaking change and must bump [`SCHEMA_VERSION`].

use crate::report::ObsReport;

/// Version stamped into every [`ObsReport`].
pub const SCHEMA_VERSION: u32 = 1;

/// Span: one whole `MultiPrecisionPipeline::execute` call.
pub const SPAN_PIPELINE_EXECUTE: &str = "pipeline.execute";
/// Span: the BNN + DMU classification stage (batched executor).
pub const SPAN_PIPELINE_BNN_STAGE: &str = "pipeline.bnn_stage";
/// Span: one BNN inference block in the overlapped threaded executor
/// (pure compute — host-queue backpressure waits are excluded and land
/// in [`HIST_BACKPRESSURE_WAIT_S`] instead).
pub const SPAN_PIPELINE_BNN_BLOCK: &str = "pipeline.bnn_block";
/// Span: one host re-inference batch (deferred flush of flagged images).
pub const SPAN_PIPELINE_HOST_RERUN: &str = "pipeline.host_rerun";
/// Span-name prefix for per-stage BNN timing: `bnn.stage<i>.<kind>`
/// where `<kind>` is one of `first_conv`, `bin_conv`, `bin_fc`,
/// `output_fc`.
pub const SPAN_BNN_STAGE_PREFIX: &str = "bnn.stage";
/// Span-name prefix for per-layer host timing: `host.layer<i>.<name>`.
pub const SPAN_HOST_LAYER_PREFIX: &str = "host.layer";
/// Span: one image's virtual-time passage through a `StreamSim` stage
/// (`stream.stage<i>`); timestamps are virtual nanoseconds.
pub const SPAN_STREAM_STAGE_PREFIX: &str = "stream.stage";
/// Span: one dispatched serving batch, admission to completion;
/// timestamps are virtual nanoseconds (the serving clock).
pub const SPAN_SERVE_BATCH: &str = "serve.batch";
/// Span: one dispatched fleet batch on some replica, dispatch to
/// completion; timestamps are virtual nanoseconds (the fleet clock).
pub const SPAN_FLEET_BATCH: &str = "fleet.batch";
/// Span-name prefix for per-stage quantized-path timing:
/// `quant.stage<i>.<kind>` where `<kind>` is one of `first_conv`,
/// `conv`, `fc`, `output`.
pub const SPAN_QUANT_STAGE_PREFIX: &str = "quant.stage";
/// Span-name prefix for per-stage cascade timing: `cascade.stage<i>`
/// (see [`cascade_stage_span`]) — the wall time one cascade stage spent
/// scoring its entering subset.
pub const SPAN_CASCADE_STAGE_PREFIX: &str = "cascade.stage";

/// Counter: images classified by the pipeline.
pub const CTR_IMAGES: &str = "pipeline.images";
/// Counter: images the DMU flagged for host re-inference.
pub const CTR_FLAGGED: &str = "pipeline.flagged";
/// Counter: flagged images successfully re-inferred on the host.
pub const CTR_RERUN_OK: &str = "pipeline.rerun_ok";
/// Counter: flagged images degraded to their BNN prediction.
pub const CTR_DEGRADED: &str = "pipeline.degraded";
/// Counter: host retries performed under the degradation policy.
pub const CTR_RETRIES: &str = "pipeline.retries";
/// Counter: circuit-breaker trips into BNN-only mode.
pub const CTR_BREAKER_TRIPS: &str = "pipeline.breaker_trips";
/// Counter: producer sends that found the bounded channel full.
pub const CTR_BACKPRESSURE: &str = "pipeline.backpressure";
/// Counter: host inference attempts (first tries, retries, probes).
pub const CTR_HOST_ATTEMPTS: &str = "pipeline.host_attempts";
/// Counter: images replayed through the stream simulator.
pub const CTR_STREAM_IMAGES: &str = "stream.images";
/// Counter: requests offered to the serving front-end (accepted + shed).
pub const CTR_SERVE_REQUESTS: &str = "serve.requests";
/// Counter: requests shed by admission-queue backpressure.
pub const CTR_SERVE_SHED: &str = "serve.shed";
/// Counter: batches dispatched by the dynamic batcher.
pub const CTR_SERVE_BATCHES: &str = "serve.batches";
/// Counter: requests offered to the fleet router.
pub const CTR_FLEET_REQUESTS: &str = "fleet.requests";
/// Counter: requests served with exactly one prediction.
pub const CTR_FLEET_SERVED: &str = "fleet.served";
/// Counter: requests shed explicitly (admission or replica death with
/// no healthy capacity left).
pub const CTR_FLEET_SHED: &str = "fleet.shed";
/// Counter: requests re-routed off a dead replica onto a healthy one.
pub const CTR_FLEET_REDIRECTED: &str = "fleet.redirected";
/// Counter: hedge copies issued for requests stuck past the deadline.
pub const CTR_FLEET_HEDGES: &str = "fleet.hedges";
/// Counter: hedged requests whose hedge copy completed first.
pub const CTR_FLEET_HEDGE_WINS: &str = "fleet.hedge_wins";
/// Counter: per-replica circuit breakers tripping open.
pub const CTR_FLEET_BREAKER_OPENS: &str = "fleet.breaker_opens";
/// Counter: per-replica circuit breakers closing after a probe.
pub const CTR_FLEET_BREAKER_CLOSES: &str = "fleet.breaker_closes";
/// Counter: replica crash events.
pub const CTR_FLEET_CRASHES: &str = "fleet.crashes";
/// Counter: replica recovery events.
pub const CTR_FLEET_RECOVERIES: &str = "fleet.recoveries";
/// Counter-name prefix for per-replica accounting:
/// `fleet.replica<i>.served` / `fleet.replica<i>.redirected`.
pub const CTR_FLEET_REPLICA_PREFIX: &str = "fleet.replica";
/// Counter-name prefix for per-stage cascade traffic:
/// `cascade.stage<i>.entered` / `cascade.stage<i>.accepted` (see
/// [`cascade_entered_counter`] / [`cascade_accepted_counter`]). Every
/// pipeline run reports these — the legacy threshold path is the
/// 2-stage instance.
pub const CTR_CASCADE_STAGE_PREFIX: &str = "cascade.stage";
/// Counter: images classified by the quantized integer path.
pub const CTR_QUANT_IMAGES: &str = "quant.images";
/// Counter: binary plane-MACs executed by the quantized integer path
/// (each engine's MACs times its shift-add decomposition width).
pub const CTR_QUANT_PLANE_MACS: &str = "quant.plane_macs";

/// Histogram: per-image BNN inference latency (threaded executor). The
/// overlapped executor infers whole blocks, so each image of a block
/// observes the block's amortised per-image latency (block wall time
/// divided by block size) — the histogram count stays one entry per
/// image.
pub const HIST_BNN_IMAGE_S: &str = "pipeline.bnn_image_s";
/// Histogram: host re-inference latency per deferred batch.
pub const HIST_HOST_BATCH_S: &str = "pipeline.host_batch_s";
/// Histogram: virtual backoff charged per recovered/degraded image.
pub const HIST_BACKOFF_S: &str = "pipeline.backoff_s";
/// Histogram: bounded-channel occupancy observed at each producer send.
pub const HIST_QUEUE_DEPTH: &str = "pipeline.queue_depth";
/// Histogram: producer wall time spent blocked on a full host queue
/// (one entry per backpressure stall, matching [`CTR_BACKPRESSURE`]),
/// so host-queue waits are attributed to backpressure rather than
/// silently inflating BNN stage time.
pub const HIST_BACKPRESSURE_WAIT_S: &str = "pipeline.backpressure_wait_s";
/// Histogram: per-image virtual latency through the stream simulator.
pub const HIST_STREAM_LATENCY_S: &str = "stream.latency_s";
/// Histogram: per-request virtual wait in the admission queue.
pub const HIST_SERVE_QUEUE_WAIT_S: &str = "serve.queue_wait_s";
/// Histogram: per-request virtual end-to-end latency (wait + service).
pub const HIST_SERVE_LATENCY_S: &str = "serve.latency_s";
/// Histogram: dispatched batch sizes.
pub const HIST_SERVE_BATCH_SIZE: &str = "serve.batch_size";
/// Histogram: per-request virtual wait in a replica's admission queue.
pub const HIST_FLEET_QUEUE_WAIT_S: &str = "fleet.queue_wait_s";
/// Histogram: per-request virtual end-to-end latency across the fleet
/// (arrival to winning completion).
pub const HIST_FLEET_LATENCY_S: &str = "fleet.latency_s";
/// Histogram: dispatched fleet batch sizes.
pub const HIST_FLEET_BATCH_SIZE: &str = "fleet.batch_size";

/// Bucket edges for latency histograms (names ending in `_s`), in
/// seconds. Buckets are `value <= edge`, plus one overflow bucket.
pub const LATENCY_BUCKET_EDGES_S: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 1.0, 5.0, 30.0,
];

/// Bucket edges for count-valued histograms (queue depths etc.).
pub const COUNT_BUCKET_EDGES: [f64; 9] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// The span name of cascade stage `index`: `cascade.stage<i>`. One
/// helper shared by the executor, benches and tests so the identifiers
/// can never drift apart.
pub fn cascade_stage_span(index: usize) -> String {
    format!("{SPAN_CASCADE_STAGE_PREFIX}{index}")
}

/// The entered-traffic counter of cascade stage `index`:
/// `cascade.stage<i>.entered`.
pub fn cascade_entered_counter(index: usize) -> String {
    format!("{CTR_CASCADE_STAGE_PREFIX}{index}.entered")
}

/// The accepted-traffic counter of cascade stage `index`:
/// `cascade.stage<i>.accepted`.
pub fn cascade_accepted_counter(index: usize) -> String {
    format!("{CTR_CASCADE_STAGE_PREFIX}{index}.accepted")
}

/// The bucket edges a histogram name maps to: the `_s` suffix marks a
/// latency in seconds, everything else is a count.
pub fn bucket_edges(name: &str) -> &'static [f64] {
    if name.ends_with("_s") {
        &LATENCY_BUCKET_EDGES_S
    } else {
        &COUNT_BUCKET_EDGES
    }
}

/// Whether `name` is well-formed for the schema: non-empty ASCII built
/// from alphanumerics, `.`, `_` and `-`.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Validates a report against the schema: version match, well-formed
/// sorted unique names, and histogram invariants (edges derived from the
/// name, `edges + 1` buckets, bucket counts summing to the total).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_report(report: &ObsReport) -> Result<(), String> {
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    check_names("span", report.spans.iter().map(|s| s.name.as_str()))?;
    check_names("counter", report.counters.iter().map(|c| c.name.as_str()))?;
    check_names(
        "histogram",
        report.histograms.iter().map(|h| h.name.as_str()),
    )?;
    for h in &report.histograms {
        let edges = bucket_edges(&h.name);
        if h.bucket_edges != edges {
            return Err(format!("histogram {}: bucket edges drifted", h.name));
        }
        if h.bucket_counts.len() != edges.len() + 1 {
            return Err(format!(
                "histogram {}: {} buckets for {} edges",
                h.name,
                h.bucket_counts.len(),
                edges.len()
            ));
        }
        if h.bucket_counts.iter().sum::<u64>() != h.count {
            return Err(format!("histogram {}: bucket counts != count", h.name));
        }
    }
    for s in &report.spans {
        if s.count == 0 || s.min_s > s.max_s || s.total_s < s.max_s - 1e-12 {
            return Err(format!("span {}: inconsistent aggregate", s.name));
        }
    }
    Ok(())
}

fn check_names<'a>(kind: &str, names: impl Iterator<Item = &'a str>) -> Result<(), String> {
    let mut prev: Option<&str> = None;
    for name in names {
        if !valid_name(name) {
            return Err(format!("{kind} name {name:?} is not well-formed"));
        }
        if let Some(p) = prev {
            if p >= name {
                return Err(format!("{kind} names not sorted/unique at {name:?}"));
            }
        }
        prev = Some(name);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, SharedRecorder};

    #[test]
    fn edges_selected_by_suffix() {
        assert_eq!(
            bucket_edges("pipeline.bnn_image_s"),
            &LATENCY_BUCKET_EDGES_S
        );
        assert_eq!(bucket_edges("pipeline.queue_depth"), &COUNT_BUCKET_EDGES);
    }

    #[test]
    fn names_validate() {
        assert!(valid_name("pipeline.bnn_image_s"));
        assert!(valid_name("bnn.stage0.first_conv"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
    }

    #[test]
    fn cascade_helpers_pin_the_naming_scheme() {
        assert_eq!(cascade_stage_span(0), "cascade.stage0");
        assert_eq!(cascade_entered_counter(2), "cascade.stage2.entered");
        assert_eq!(cascade_accepted_counter(2), "cascade.stage2.accepted");
        for name in [
            cascade_stage_span(3),
            cascade_entered_counter(3),
            cascade_accepted_counter(3),
        ] {
            assert!(valid_name(&name), "{name}");
            assert!(name.starts_with(SPAN_CASCADE_STAGE_PREFIX));
        }
    }

    #[test]
    fn fresh_report_validates() {
        let rec = SharedRecorder::new();
        rec.record_span("a.b", 0, 10);
        rec.add("c.d", 2);
        rec.observe("e.f_s", 0.01);
        rec.observe("e.depth", 3.0);
        validate_report(&rec.report()).unwrap();
    }

    #[test]
    fn version_drift_is_caught() {
        let rec = SharedRecorder::new();
        let mut r = rec.report();
        r.schema_version += 1;
        assert!(validate_report(&r).is_err());
    }

    #[test]
    fn edge_drift_is_caught() {
        let rec = SharedRecorder::new();
        rec.observe("x_s", 0.5);
        let mut r = rec.report();
        r.histograms[0].bucket_edges[0] *= 2.0;
        assert!(validate_report(&r).is_err());
    }
}
