//! Observability for the multi-precision pipeline (`mp-obs`).
//!
//! The paper's headline numbers — 430 img/s on the FINN BNN, 90.82 img/s
//! combined, the rerun ratios of the threshold sweep — are measurements
//! of a *running* pipeline. This crate provides the measurement layer:
//!
//! - [`Recorder`]: the sink trait — completed spans with monotonic
//!   nanosecond timestamps, monotonic counters, fixed-bucket latency
//!   histograms, and typed [`ObsEvent`]s (rerun, degradation,
//!   breaker-trip, fault, stream);
//! - [`SharedRecorder`]: a clonable, thread-safe recorder for the scoped
//!   worker threads of the parallel executor (one short-held mutex; hot
//!   paths batch their recording so the lock is not contended);
//! - [`NullRecorder`]: the default sink. Its [`Recorder::enabled`] hook
//!   returns `false`, letting instrumented code skip clock reads
//!   entirely, so its cost is one branch per instrumentation site;
//! - [`ObsReport`]: a deterministic snapshot with a stable JSON schema
//!   (see [`schema`]) exported to `results/obs_<tag>.json`.
//!
//! Recording is strictly passive: recorders observe timing and emit
//! nothing back into control flow, so an instrumented run produces
//! bit-identical predictions and fault accounting to an uninstrumented
//! one (a property-tested guarantee of the pipeline).
//!
//! This crate depends only on the standard library (plus the workspace's
//! offline `serde` stubs for the JSON export).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod report;
pub mod schema;

pub use report::{CounterStat, HistogramStat, ObsReport, SpanStat};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Nanoseconds since a fixed, process-global monotonic origin.
///
/// All recorders in one process share the origin, so spans recorded on
/// different threads are directly comparable.
pub fn now_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A typed, structured event. Unlike spans/counters/histograms (which
/// aggregate), events are kept in order, capped at
/// [`SharedRecorder::MAX_EVENTS`] with an overflow count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// A flagged image was successfully re-inferred on the host.
    Rerun {
        /// Dataset index of the image.
        image: usize,
    },
    /// A flagged image fell back to its BNN prediction.
    Degraded {
        /// Dataset index of the image.
        image: usize,
        /// The exhausting fault kind (stable string, e.g. `"HostTransient"`).
        kind: String,
    },
    /// One host inference attempt failed.
    Fault {
        /// Dataset index of the image.
        image: usize,
        /// Zero-based attempt number.
        attempt: u32,
        /// Fault kind (stable string).
        kind: String,
    },
    /// The circuit breaker opened (tripped into BNN-only mode).
    BreakerTrip {
        /// Image whose failure tripped the breaker.
        image: usize,
    },
    /// The circuit breaker closed again after a successful probe.
    BreakerClose {
        /// Image whose success closed the breaker.
        image: usize,
    },
    /// The host worker thread died (injected or a real panic).
    WorkerDeath {
        /// Human-readable detail from the panic payload.
        detail: String,
    },
    /// One image's passage through the stream simulator (virtual time).
    Stream {
        /// Image index within the simulated batch.
        image: usize,
        /// Virtual arrival time at the source, in seconds.
        arrival_s: f64,
        /// Virtual departure time from the last stage, in seconds.
        departure_s: f64,
    },
}

/// The observability sink. Implementations must be cheap and passive:
/// they may aggregate and store, but must never feed back into the
/// control flow of the instrumented code.
///
/// All methods take `&self`; the trait is `Send + Sync` so one recorder
/// reference can be shared across scoped worker threads.
pub trait Recorder: Send + Sync {
    /// Whether recording is active. Instrumented code gates every clock
    /// read and value computation on this, so a disabled recorder costs
    /// one branch per site.
    fn enabled(&self) -> bool;

    /// Records a completed span `[start_ns, end_ns]` (from [`now_ns`],
    /// or virtual nanoseconds for simulator spans).
    fn record_span(&self, name: &str, start_ns: u64, end_ns: u64);

    /// Adds `delta` to the monotonic counter `name`.
    fn add(&self, name: &str, delta: u64);

    /// Records `value` into the fixed-bucket histogram `name` (bucket
    /// edges are determined by the name; see [`schema::bucket_edges`]).
    fn observe(&self, name: &str, value: f64);

    /// Appends a typed event.
    fn record_event(&self, event: ObsEvent);
}

/// The do-nothing recorder: [`Recorder::enabled`] is `false` and every
/// sink method is an empty body, so instrumentation overhead reduces to
/// the caller's `enabled()` branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

/// A `'static` [`NullRecorder`] for default `&dyn Recorder` fields.
pub static NULL_RECORDER: NullRecorder = NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record_span(&self, _name: &str, _start_ns: u64, _end_ns: u64) {}
    fn add(&self, _name: &str, _delta: u64) {}
    fn observe(&self, _name: &str, _value: f64) {}
    fn record_event(&self, _event: ObsEvent) {}
}

/// RAII span helper: reads the clock at construction (only if the
/// recorder is enabled) and records the span on drop.
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    name: &'a str,
    start_ns: Option<u64>,
}

impl<'a> SpanGuard<'a> {
    /// Starts a span named `name` against `rec`.
    pub fn start(rec: &'a dyn Recorder, name: &'a str) -> Self {
        let start_ns = rec.enabled().then(now_ns);
        Self {
            rec,
            name,
            start_ns,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start_ns {
            self.rec.record_span(self.name, start, now_ns());
        }
    }
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("start_ns", &self.start_ns)
            .finish()
    }
}

/// Per-name span aggregate.
#[derive(Debug, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// Per-name fixed-bucket histogram (edges picked once from the name).
#[derive(Debug, Clone)]
struct HistAgg {
    edges: &'static [f64],
    /// `edges.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

#[derive(Debug, Default)]
struct RecState {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistAgg>,
    events: Vec<ObsEvent>,
    events_dropped: u64,
}

/// A clonable, thread-safe recorder.
///
/// "Lock-free enough": state lives behind one mutex whose critical
/// sections are a map lookup and a few additions. The pipeline's hot
/// loops record once per image or per batch — microseconds of real work
/// per lock acquisition — so contention is negligible next to inference.
/// Cloning shares the underlying state.
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    inner: Arc<Mutex<RecState>>,
}

impl SharedRecorder {
    /// Events kept per recorder before further events are counted in
    /// [`ObsReport::events_dropped`] instead of stored (no silent cap).
    pub const MAX_EVENTS: usize = 4096;

    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, RecState> {
        // A panicking instrumented thread must not wedge the report.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A deterministic snapshot: entries sorted by name, events in
    /// arrival order. Taking a report does not reset the recorder.
    pub fn report(&self) -> ObsReport {
        let st = self.state();
        ObsReport {
            schema_version: schema::SCHEMA_VERSION,
            spans: st
                .spans
                .iter()
                .map(|(name, a)| SpanStat {
                    name: name.clone(),
                    count: a.count,
                    total_s: a.total_ns as f64 / 1e9,
                    min_s: a.min_ns as f64 / 1e9,
                    max_s: a.max_ns as f64 / 1e9,
                })
                .collect(),
            counters: st
                .counters
                .iter()
                .map(|(name, &value)| CounterStat {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: st
                .histograms
                .iter()
                .map(|(name, h)| HistogramStat {
                    name: name.clone(),
                    bucket_edges: h.edges.to_vec(),
                    bucket_counts: h.buckets.clone(),
                    count: h.count,
                    sum: h.sum,
                })
                .collect(),
            events: st.events.clone(),
            events_dropped: st.events_dropped,
        }
    }
}

impl Recorder for SharedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, name: &str, start_ns: u64, end_ns: u64) {
        let dur = end_ns.saturating_sub(start_ns);
        let mut st = self.state();
        match st.spans.get_mut(name) {
            Some(a) => {
                a.count += 1;
                a.total_ns = a.total_ns.saturating_add(dur);
                a.min_ns = a.min_ns.min(dur);
                a.max_ns = a.max_ns.max(dur);
            }
            None => {
                st.spans.insert(
                    name.to_owned(),
                    SpanAgg {
                        count: 1,
                        total_ns: dur,
                        min_ns: dur,
                        max_ns: dur,
                    },
                );
            }
        }
    }

    fn add(&self, name: &str, delta: u64) {
        let mut st = self.state();
        match st.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                st.counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut st = self.state();
        let h = match st.histograms.get_mut(name) {
            Some(h) => h,
            None => {
                let edges = schema::bucket_edges(name);
                st.histograms.insert(
                    name.to_owned(),
                    HistAgg {
                        edges,
                        buckets: vec![0; edges.len() + 1],
                        count: 0,
                        sum: 0.0,
                    },
                );
                st.histograms.get_mut(name).expect("just inserted")
            }
        };
        // Bucket b holds values <= edges[b]; the last bucket overflows.
        let b = h.edges.partition_point(|&e| e < value);
        h.buckets[b] += 1;
        h.count += 1;
        h.sum += value;
    }

    fn record_event(&self, event: ObsEvent) {
        let mut st = self.state();
        if st.events.len() < Self::MAX_EVENTS {
            st.events.push(event);
        } else {
            st.events_dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        rec.record_span("x", 0, 10);
        rec.add("c", 1);
        rec.observe("h_s", 0.1);
        rec.record_event(ObsEvent::Rerun { image: 0 });
    }

    #[test]
    fn span_guard_skips_clock_when_disabled() {
        let g = SpanGuard::start(&NULL_RECORDER, "x");
        assert!(g.start_ns.is_none());
    }

    #[test]
    fn shared_recorder_aggregates_spans() {
        let rec = SharedRecorder::new();
        rec.record_span("a", 0, 1_000);
        rec.record_span("a", 10, 3_010);
        rec.record_span("b", 5, 6);
        let r = rec.report();
        assert_eq!(r.spans.len(), 2);
        let a = &r.spans[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.count, 2);
        assert!((a.total_s - 4e-6).abs() < 1e-12);
        assert!((a.min_s - 1e-6).abs() < 1e-12);
        assert!((a.max_s - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn counters_accumulate() {
        let rec = SharedRecorder::new();
        rec.add("c", 2);
        rec.add("c", 3);
        rec.add("d", 1);
        let r = rec.report();
        assert_eq!(r.counters.len(), 2);
        assert_eq!(r.counters[0].value, 5);
        assert_eq!(r.counters[1].value, 1);
    }

    #[test]
    fn histogram_buckets_by_latency_edges() {
        let rec = SharedRecorder::new();
        rec.observe("x_s", 0.0); // first bucket
        rec.observe("x_s", 1e30); // overflow bucket
        let r = rec.report();
        let h = &r.histograms[0];
        assert_eq!(h.bucket_edges, schema::LATENCY_BUCKET_EDGES_S.to_vec());
        assert_eq!(h.bucket_counts.len(), h.bucket_edges.len() + 1);
        assert_eq!(h.bucket_counts[0], 1);
        assert_eq!(*h.bucket_counts.last().unwrap(), 1);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn events_cap_counts_drops() {
        let rec = SharedRecorder::new();
        for i in 0..SharedRecorder::MAX_EVENTS + 5 {
            rec.record_event(ObsEvent::Rerun { image: i });
        }
        let r = rec.report();
        assert_eq!(r.events.len(), SharedRecorder::MAX_EVENTS);
        assert_eq!(r.events_dropped, 5);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let rec = SharedRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = rec.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        r.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(rec.report().counters[0].value, 400);
    }
}
