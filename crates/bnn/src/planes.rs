//! Multi-plane bit packing: the `b`-bit generalisation of [`crate::bits`].
//!
//! A `b`-bit quantized value is stored as `b` signed binary planes:
//!
//! ```text
//! q = Σ_{p=0}^{b-1} 2^p · s_p,   s_p ∈ {−1, +1}
//! ```
//!
//! so the representable levels are exactly the **odd** integers in
//! `[−L, L]` with `L = 2^b − 1` — the integer image (scaled by `L`) of
//! the training-side [`QuantActivation`](crate::ste::QuantActivation)
//! level set. Each plane is an ordinary [`BitVec`], packed through the
//! offset-binary bridge `u = (q + L) / 2 ∈ [0, L]` (plane `p` holds bit
//! `p` of `u`; bit 1 ⟷ `s_p = +1`).
//!
//! The payoff is that a quantized dot product decomposes into
//! `a_bits · w_bits` XNOR–popcount dot products with power-of-two
//! weights:
//!
//! ```text
//! dot(a, w) = Σ_{i<a_bits} Σ_{k<w_bits} 2^{i+k} · xnor_dot(aᵢ, wₖ)
//! ```
//!
//! which is the shift-add datapath of MPIC-style multi-precision MAC
//! units. At `b = 1` a [`PlaneVec`] is a single [`BitVec`] with the
//! same bit convention, so the 1-bit corner of the quantized path is
//! bit-identical to the BNN fast path by construction.

use serde::{Deserialize, Error, Serialize, Value};

use crate::bits::{BitMatrix, BitVec};

/// Largest representable magnitude at `bits` width: `L = 2^bits − 1`.
///
/// # Panics
///
/// Panics if `bits` is 0 or above 32.
pub fn levels(bits: usize) -> i64 {
    assert!((1..=32).contains(&bits), "plane width {bits} out of range");
    (1i64 << bits) - 1
}

/// Quantizes a float in `[−1, 1]` (clamped) to the nearest `bits`-wide
/// level, returned as an **odd integer** in `[−L, L]`.
///
/// This is exactly `L ·` [`QuantActivation::quantize`]
/// (crate::ste::QuantActivation::quantize): both compute
/// `round((clamp(x) + 1)/2 · L)` and map it back to the symmetric
/// range, so a float network quantized at training time and this
/// integer path see the same level set.
pub fn quantize_level(x: f32, bits: usize) -> i64 {
    let l = levels(bits);
    let unit = (x.clamp(-1.0, 1.0) + 1.0) / 2.0;
    2 * (unit * l as f32).round() as i64 - l
}

/// A `bits`-plane packed vector of odd integers in `[−L, L]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlaneVec {
    planes: Vec<BitVec>,
    len: usize,
}

impl<'de> Deserialize<'de> for PlaneVec {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let planes = Vec::<BitVec>::from_value(value.get_field("planes")?)?;
        let len = usize::from_value(value.get_field("len")?)?;
        if planes.is_empty() || planes.len() > 32 {
            return Err(Error::custom(format!(
                "PlaneVec: {} planes outside 1..=32",
                planes.len()
            )));
        }
        if let Some(p) = planes.iter().position(|p| p.len() != len) {
            return Err(Error::custom(format!(
                "PlaneVec: plane {p} has {} bits, expected len = {len}",
                planes[p].len()
            )));
        }
        Ok(Self { planes, len })
    }
}

impl PlaneVec {
    /// Packs a slice of levels (odd integers in `[−L, L]`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is out of `1..=32` or any value is not a
    /// representable level at that width.
    pub fn from_levels(values: &[i64], bits: usize) -> Self {
        let l = levels(bits);
        let mut planes = vec![BitVec::zeros(values.len()); bits];
        for (i, &q) in values.iter().enumerate() {
            assert!(
                q.abs() <= l && q & 1 != 0,
                "{q} is not an odd integer in [-{l}, {l}]"
            );
            let u = ((q + l) / 2) as u64;
            for (p, plane) in planes.iter_mut().enumerate() {
                if u >> p & 1 == 1 {
                    plane.set(i, true);
                }
            }
        }
        Self {
            planes,
            len: values.len(),
        }
    }

    /// Quantizes floats with [`quantize_level`] and packs the result.
    pub fn from_floats(values: &[f32], bits: usize) -> Self {
        let q: Vec<i64> = values.iter().map(|&x| quantize_level(x, bits)).collect();
        Self::from_levels(&q, bits)
    }

    /// Unpacks back to levels.
    pub fn to_levels(&self) -> Vec<i64> {
        let l = levels(self.bits());
        (0..self.len)
            .map(|i| {
                let u: i64 = self
                    .planes
                    .iter()
                    .enumerate()
                    .map(|(p, plane)| i64::from(plane.get(i)) << p)
                    .sum();
                2 * u - l
            })
            .collect()
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Plane width in bits.
    pub fn bits(&self) -> usize {
        self.planes.len()
    }

    /// Plane `p` (significance `2^p`).
    pub fn plane(&self, p: usize) -> &BitVec {
        &self.planes[p]
    }

    /// Exact integer dot product via shift-add over plane pairs.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &PlaneVec) -> i64 {
        assert_eq!(self.len, other.len, "plane dot length mismatch");
        let mut acc = 0i64;
        for (i, a) in self.planes.iter().enumerate() {
            for (k, w) in other.planes.iter().enumerate() {
                acc += i64::from(a.xnor_dot(w)) << (i + k);
            }
        }
        acc
    }
}

/// A `bits`-plane packed matrix (`[rows, cols]`), one [`BitMatrix`] per
/// plane — the weight-memory layout of a multi-precision engine, where
/// each significance plane is a separate binary weight memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlaneMatrix {
    planes: Vec<BitMatrix>,
    cols: usize,
}

impl<'de> Deserialize<'de> for PlaneMatrix {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let planes = Vec::<BitMatrix>::from_value(value.get_field("planes")?)?;
        let cols = usize::from_value(value.get_field("cols")?)?;
        if planes.is_empty() || planes.len() > 32 {
            return Err(Error::custom(format!(
                "PlaneMatrix: {} planes outside 1..=32",
                planes.len()
            )));
        }
        let rows = planes[0].num_rows();
        if let Some(p) = planes
            .iter()
            .position(|m| m.num_rows() != rows || m.num_cols() != cols)
        {
            return Err(Error::custom(format!(
                "PlaneMatrix: plane {p} is {}×{}, expected {rows}×{cols}",
                planes[p].num_rows(),
                planes[p].num_cols()
            )));
        }
        Ok(Self { planes, cols })
    }
}

impl PlaneMatrix {
    /// Packs a row-major level matrix.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or any value is not a
    /// representable level.
    pub fn from_levels(rows: usize, cols: usize, values: &[i64], bits: usize) -> Self {
        assert_eq!(values.len(), rows * cols, "matrix size mismatch");
        let l = levels(bits);
        let planes = (0..bits)
            .map(|p| {
                let signs: Vec<f32> = values
                    .iter()
                    .map(|&q| {
                        assert!(
                            q.abs() <= l && q & 1 != 0,
                            "{q} is not an odd integer in [-{l}, {l}]"
                        );
                        let u = ((q + l) / 2) as u64;
                        if u >> p & 1 == 1 {
                            1.0
                        } else {
                            -1.0
                        }
                    })
                    .collect();
                BitMatrix::from_signs(rows, cols, &signs)
            })
            .collect();
        Self { planes, cols }
    }

    /// Quantizes floats with [`quantize_level`] and packs the result.
    pub fn from_floats(rows: usize, cols: usize, values: &[f32], bits: usize) -> Self {
        let q: Vec<i64> = values.iter().map(|&x| quantize_level(x, bits)).collect();
        Self::from_levels(rows, cols, &q, bits)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.planes[0].num_rows()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Plane width in bits.
    pub fn bits(&self) -> usize {
        self.planes.len()
    }

    /// Plane `p` (significance `2^p`).
    pub fn plane(&self, p: usize) -> &BitMatrix {
        &self.planes[p]
    }

    /// Total storage bits across planes (`rows · cols · bits`).
    pub fn weight_bits(&self) -> u64 {
        (self.num_rows() * self.cols * self.bits()) as u64
    }

    /// Matrix–vector product: one exact i64 accumulation per row,
    /// decomposed into `x.bits() · self.bits()` binary matvecs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn matvec(&self, x: &PlaneVec) -> Vec<i64> {
        let mut out = Vec::new();
        self.matvec_into(x, &mut out);
        out
    }

    /// Like [`PlaneMatrix::matvec`], writing into a caller-owned
    /// accumulator (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn matvec_into(&self, x: &PlaneVec, out: &mut Vec<i64>) {
        assert_eq!(x.len(), self.cols, "plane matvec length mismatch");
        out.clear();
        out.resize(self.num_rows(), 0);
        let mut scratch: Vec<i32> = Vec::with_capacity(self.num_rows());
        for (k, wm) in self.planes.iter().enumerate() {
            for (i, xv) in x.planes.iter().enumerate() {
                wm.xnor_matvec_into(xv, &mut scratch);
                let shift = i + k;
                for (acc, &partial) in out.iter_mut().zip(&scratch) {
                    *acc += i64::from(partial) << shift;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_set_is_odd_integers() {
        assert_eq!(levels(1), 1);
        assert_eq!(levels(2), 3);
        assert_eq!(levels(4), 15);
        assert_eq!(levels(8), 255);
        // Every representable level round-trips.
        for bits in [1usize, 2, 4, 8] {
            let l = levels(bits);
            let all: Vec<i64> = (-l..=l).step_by(2).collect();
            assert_eq!(all.len(), 1 << bits);
            let packed = PlaneVec::from_levels(&all, bits);
            assert_eq!(packed.to_levels(), all, "bits = {bits}");
        }
    }

    #[test]
    fn quantize_level_matches_scaled_quant_activation() {
        use crate::ste::QuantActivation;
        for bits in [1usize, 2, 4, 8] {
            let act = QuantActivation::new(bits).unwrap();
            let l = levels(bits) as f32;
            for i in -40..=40 {
                let x = i as f32 / 20.0;
                let from_float = act.quantize(x) * l;
                let from_int = quantize_level(x, bits) as f32;
                assert!(
                    (from_float - from_int).abs() < 1e-3,
                    "bits {bits}, x {x}: {from_float} vs {from_int}"
                );
            }
        }
    }

    #[test]
    fn one_bit_plane_is_the_bitvec_packing() {
        let signs = [1.0f32, -1.0, 1.0, 1.0, -1.0];
        let plane = PlaneVec::from_floats(&signs, 1);
        assert_eq!(plane.plane(0), &BitVec::from_signs(&signs));
        let other = PlaneVec::from_floats(&[-1.0, -1.0, 1.0, -1.0, 1.0], 1);
        assert_eq!(
            plane.dot(&other),
            i64::from(plane.plane(0).xnor_dot(other.plane(0)))
        );
    }

    #[test]
    fn plane_dot_equals_integer_reference() {
        for (a_bits, w_bits) in [(2usize, 2usize), (2, 8), (4, 4), (8, 2), (8, 8), (1, 4)] {
            let la = levels(a_bits);
            let lw = levels(w_bits);
            // Deterministic pseudo-random odd levels.
            let n = 130;
            let a: Vec<i64> = (0..n)
                .map(|i| {
                    let u = (i * 2654435761u64 as usize + 7) as i64 % (la + 1);
                    2 * u - la
                })
                .collect();
            let w: Vec<i64> = (0..n)
                .map(|i| {
                    let u = (i * 40503 + 11) as i64 % (lw + 1);
                    2 * u - lw
                })
                .collect();
            let reference: i64 = a.iter().zip(&w).map(|(&x, &y)| x * y).sum();
            let pa = PlaneVec::from_levels(&a, a_bits);
            let pw = PlaneVec::from_levels(&w, w_bits);
            assert_eq!(pa.dot(&pw), reference, "a_bits {a_bits}, w_bits {w_bits}");
        }
    }

    #[test]
    fn matvec_matches_rowwise_dot() {
        let rows = 3;
        let cols = 70;
        let w: Vec<i64> = (0..rows * cols)
            .map(|i| 2 * ((i * 37 + 5) as i64 % 16) - 15)
            .collect();
        let x: Vec<i64> = (0..cols).map(|i| 2 * ((i * 13) as i64 % 4) - 3).collect();
        let m = PlaneMatrix::from_levels(rows, cols, &w, 4);
        let v = PlaneVec::from_levels(&x, 2);
        let y = m.matvec(&v);
        for r in 0..rows {
            let expect: i64 = (0..cols).map(|c| w[r * cols + c] * x[c]).sum();
            assert_eq!(y[r], expect, "row {r}");
        }
        assert_eq!(m.weight_bits(), (rows * cols * 4) as u64);
    }

    #[test]
    fn serde_round_trip() {
        let v = PlaneVec::from_floats(&[0.3, -0.9, 1.0, -0.1], 4);
        assert_eq!(PlaneVec::from_value(&v.to_value()).unwrap(), v);
        let m = PlaneMatrix::from_floats(2, 5, &[0.1f32; 10], 2);
        assert_eq!(PlaneMatrix::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn deserialize_rejects_ragged_planes() {
        let v = PlaneVec::from_floats(&[0.5, -0.5, 0.0], 2);
        let mut value = v.to_value();
        if let Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "len" {
                    *field = Value::UInt(4);
                }
            }
        }
        assert!(PlaneVec::from_value(&value).is_err());
    }
}
