//! Bit-packed ±1 vectors and matrices with XNOR–popcount arithmetic.
//!
//! A binarised value `+1` is stored as bit `1`, `−1` as bit `0`. The dot
//! product of two ±1 vectors of length `n` is then
//!
//! ```text
//! a·b = 2·popcount(XNOR(a, b)) − n
//! ```
//!
//! which is the arithmetic FINN's processing elements implement with
//! LUT-based XNOR gates and popcount trees. [`BitVec::xnor_dot`] is the
//! software equivalent, operating on 64-bit words.

use serde::{Deserialize, Error, Serialize, Value};

/// A bit-packed vector of ±1 values.
///
/// Invariant: bits at positions `len..` of the last word are always zero.
/// Constructors and [`BitVec::set`] maintain it, and deserialisation
/// rejects inputs that violate it, so [`BitVec::count_ones`] can sum
/// whole words without masking.
///
/// # Example
///
/// ```
/// use mp_bnn::bits::BitVec;
///
/// let a = BitVec::from_signs(&[1.0, -1.0, 1.0]);
/// let b = BitVec::from_signs(&[1.0, 1.0, -1.0]);
/// // (+1·+1) + (−1·+1) + (+1·−1) = −1
/// assert_eq!(a.xnor_dot(&b), -1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl<'de> Deserialize<'de> for BitVec {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let words = Vec::<u64>::from_value(value.get_field("words")?)?;
        let len = usize::from_value(value.get_field("len")?)?;
        if words.len() != len.div_ceil(64) {
            return Err(Error::custom(format!(
                "BitVec: {} storage words cannot hold exactly {len} bits",
                words.len()
            )));
        }
        let tail = len % 64;
        if tail > 0 {
            let last = *words.last().expect("tail > 0 implies at least one word");
            if last & !((1u64 << tail) - 1) != 0 {
                return Err(Error::custom(format!(
                    "BitVec: nonzero bits beyond len {len} in the tail word"
                )));
            }
        }
        Ok(Self { words, len })
    }
}

impl BitVec {
    /// Creates an all `−1` (all-zero-bit) vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Packs the signs of a float slice (`x >= 0` maps to `+1`).
    ///
    /// The `sign(0) = +1` convention follows BinaryNet.
    pub fn from_signs(values: &[f32]) -> Self {
        let mut v = Self::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x >= 0.0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Packs a boolean slice (`true` maps to `+1`).
    pub fn from_bools(values: &[bool]) -> Self {
        let mut v = Self::zeros(0);
        v.refill_from_bools(values);
        v
    }

    /// Re-packs this vector from a boolean slice in place, reusing the
    /// word storage. Each 64-bit word is assembled in a register rather
    /// than with per-bit read–modify–write, so this is also the fast
    /// path behind [`BitVec::from_bools`].
    pub fn refill_from_bools(&mut self, values: &[bool]) {
        self.len = values.len();
        self.words.clear();
        self.words.extend(values.chunks(64).map(|chunk| {
            let mut word = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                word |= u64::from(b) << i;
            }
            word
        }));
    }

    /// Number of ±1 entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (`true` = `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds for {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` (`true` = `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds for {}", self.len);
        let word = &mut self.words[i / 64];
        if value {
            *word |= 1 << (i % 64);
        } else {
            *word &= !(1 << (i % 64));
        }
    }

    /// Unpacks into ±1 floats.
    pub fn to_signs(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| if self.get(i) { 1.0 } else { -1.0 })
            .collect()
    }

    /// Number of `+1` entries.
    pub fn count_ones(&self) -> u32 {
        // Trailing bits beyond `len` are maintained zero by `set`.
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// ±1 dot product via XNOR–popcount.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xnor_dot(&self, other: &BitVec) -> i32 {
        assert_eq!(self.len, other.len, "xnor_dot length mismatch");
        debug_assert!(
            self.tail_is_clear() && other.tail_is_clear(),
            "xnor_dot operand violates the tail-bit invariant"
        );
        xnor_dot_words(&self.words, &other.words, self.len)
    }

    /// Crate-internal view of the packed words (bits above `len` zero).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether the tail-bit invariant holds: every bit at position
    /// `len..` of the last word is zero. True by construction for every
    /// constructor and `Deserialize` path; the popcount kernels
    /// `debug_assert!` it so a future constructor that forgets the
    /// invariant fails loudly in tests instead of silently inflating
    /// full-word popcounts.
    pub(crate) fn tail_is_clear(&self) -> bool {
        let tail = self.len % 64;
        // tail > 0 implies len > 0 implies at least one storage word.
        tail == 0 || self.words[self.len / 64] & !((1u64 << tail) - 1) == 0
    }

    /// Popcount of the XNOR (number of agreeing positions).
    ///
    /// This is the raw quantity a FINN PE accumulates before its
    /// threshold comparison.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xnor_popcount(&self, other: &BitVec) -> u32 {
        let dot = self.xnor_dot(other);
        ((dot + self.len as i32) / 2) as u32
    }
}

/// A bit-packed matrix of ±1 values, one [`BitVec`] per row.
///
/// Used for binarised weight matrices (`[outputs, fan_in]`, matching the
/// FINN weight memory layout where each PE holds full rows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl<'de> Deserialize<'de> for BitMatrix {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // Each row goes through BitVec's validating deserialiser (word
        // count + tail bits); this layer only needs to check that every
        // row is exactly `cols` wide. The previous derived impl skipped
        // that, so a forged payload could smuggle rows of the wrong
        // length past the boundary and panic later in `xnor_matvec`.
        let rows = Vec::<BitVec>::from_value(value.get_field("rows")?)?;
        let cols = usize::from_value(value.get_field("cols")?)?;
        if let Some((r, row)) = rows.iter().enumerate().find(|(_, row)| row.len() != cols) {
            return Err(Error::custom(format!(
                "BitMatrix: row {r} has {} bits, expected cols = {cols}",
                row.len()
            )));
        }
        Ok(Self { rows, cols })
    }
}

impl BitMatrix {
    /// Packs the signs of a row-major float matrix.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn from_signs(rows: usize, cols: usize, values: &[f32]) -> Self {
        assert_eq!(values.len(), rows * cols, "matrix size mismatch");
        Self {
            rows: (0..rows)
                .map(|r| BitVec::from_signs(&values[r * cols..(r + 1) * cols]))
                .collect(),
            cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Matrix–vector product against a packed ±1 vector, one integer
    /// accumulation per row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn xnor_matvec(&self, x: &BitVec) -> Vec<i32> {
        let mut out = Vec::new();
        self.xnor_matvec_into(x, &mut out);
        out
    }

    /// Like [`BitMatrix::xnor_matvec`], writing into a caller-owned
    /// accumulator (cleared first) so hot loops can reuse the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn xnor_matvec_into(&self, x: &BitVec, out: &mut Vec<i32>) {
        out.clear();
        out.reserve(self.rows.len());
        self.xnor_matvec_for_each(x, |_, dot| out.push(dot));
    }

    /// Row-by-row XNOR matvec, invoking `f(row, dot)` for each row in
    /// ascending row order. Rows are processed four at a time through
    /// [`xnor_dot_words_x4`], so each word of `x` is loaded once per four
    /// output rows instead of once per row — this is the software analogue
    /// of a FINN PE folding four output channels onto one SIMD lane. The
    /// callback style lets callers fuse the per-row threshold comparison
    /// directly into the accumulate loop instead of round-tripping an
    /// `i32` accumulator vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn xnor_matvec_for_each(&self, x: &BitVec, mut f: impl FnMut(usize, i32)) {
        assert_eq!(x.len(), self.cols, "xnor_matvec length mismatch");
        debug_assert!(
            x.tail_is_clear() && self.rows.iter().all(BitVec::tail_is_clear),
            "xnor_matvec_for_each operand violates the tail-bit invariant"
        );
        let xw = x.words();
        let mut quads = self.rows.chunks_exact(4);
        let mut r = 0usize;
        for quad in &mut quads {
            let dots = xnor_dot_words_x4(
                [
                    quad[0].words(),
                    quad[1].words(),
                    quad[2].words(),
                    quad[3].words(),
                ],
                xw,
                self.cols,
            );
            for (lane, dot) in dots.into_iter().enumerate() {
                f(r + lane, dot);
            }
            r += 4;
        }
        for row in quads.remainder() {
            f(r, xnor_dot_words(row.words(), xw, self.cols));
            r += 1;
        }
    }

    /// Total storage bits (the quantity FINN places in on-chip memory).
    pub fn weight_bits(&self) -> u64 {
        (self.num_rows() * self.cols) as u64
    }
}

/// XNOR dot product over raw packed words: the shared kernel behind
/// [`BitVec::xnor_dot`] and the crate's word-level fast paths. Bits at
/// and above `len` in the last word are ignored via the tail mask, so
/// callers only need `len` valid bits per buffer.
///
/// The full-word loop runs four independent u64 lanes per iteration so
/// the popcounts pipeline instead of serialising on one accumulator.
/// Integer addition is associative, so the widened loop is bit-identical
/// to the scalar reference (pinned by `widened_dot_matches_scalar_reference`).
pub(crate) fn xnor_dot_words(a: &[u64], b: &[u64], len: usize) -> i32 {
    let full_words = len / 64;
    let (mut m0, mut m1, mut m2, mut m3) = (0u32, 0u32, 0u32, 0u32);
    let mut w = 0;
    while w + 4 <= full_words {
        m0 += (!(a[w] ^ b[w])).count_ones();
        m1 += (!(a[w + 1] ^ b[w + 1])).count_ones();
        m2 += (!(a[w + 2] ^ b[w + 2])).count_ones();
        m3 += (!(a[w + 3] ^ b[w + 3])).count_ones();
        w += 4;
    }
    let mut matches = m0 + m1 + m2 + m3;
    while w < full_words {
        matches += (!(a[w] ^ b[w])).count_ones();
        w += 1;
    }
    let tail = len % 64;
    if tail > 0 {
        let mask = (1u64 << tail) - 1;
        matches += ((!(a[full_words] ^ b[full_words])) & mask).count_ones();
    }
    2 * matches as i32 - len as i32
}

/// Four XNOR dot products sharing one traversal of `b`: each word of the
/// activation vector is loaded once and XNOR-popcounted against four
/// weight rows. This is the row-folded kernel behind
/// [`BitMatrix::xnor_matvec_for_each`] and the binary-conv output-channel
/// loop in `hardware.rs`. All four `a` slices must carry at least `len`
/// valid bits with the tail-bit invariant; results are bit-identical to
/// four independent [`xnor_dot_words`] calls.
pub(crate) fn xnor_dot_words_x4(a: [&[u64]; 4], b: &[u64], len: usize) -> [i32; 4] {
    let full_words = len / 64;
    let mut m = [0u32; 4];
    for w in 0..full_words {
        let x = b[w];
        m[0] += (!(a[0][w] ^ x)).count_ones();
        m[1] += (!(a[1][w] ^ x)).count_ones();
        m[2] += (!(a[2][w] ^ x)).count_ones();
        m[3] += (!(a[3][w] ^ x)).count_ones();
    }
    let tail = len % 64;
    if tail > 0 {
        let mask = (1u64 << tail) - 1;
        let x = b[full_words];
        m[0] += ((!(a[0][full_words] ^ x)) & mask).count_ones();
        m[1] += ((!(a[1][full_words] ^ x)) & mask).count_ones();
        m[2] += ((!(a[2][full_words] ^ x)) & mask).count_ones();
        m[3] += ((!(a[3][full_words] ^ x)) & mask).count_ones();
    }
    m.map(|matches| 2 * matches as i32 - len as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let signs = [1.0, -1.0, -1.0, 1.0, 1.0];
        let v = BitVec::from_signs(&signs);
        assert_eq!(v.to_signs(), signs);
        assert_eq!(v.len(), 5);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn sign_zero_is_positive() {
        let v = BitVec::from_signs(&[0.0]);
        assert!(v.get(0));
    }

    #[test]
    fn xnor_dot_matches_float_dot() {
        let a = [1.0f32, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        let b = [-1.0f32, -1.0, 1.0, -1.0, -1.0, 1.0, 1.0];
        let expect: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let dot = BitVec::from_signs(&a).xnor_dot(&BitVec::from_signs(&b));
        assert_eq!(dot, expect as i32);
    }

    #[test]
    fn xnor_dot_spans_word_boundaries() {
        // 130 entries crosses two u64 words.
        let a: Vec<f32> = (0..130)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b: Vec<f32> = (0..130)
            .map(|i| if i % 5 == 0 { 1.0 } else { -1.0 })
            .collect();
        let expect: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let dot = BitVec::from_signs(&a).xnor_dot(&BitVec::from_signs(&b));
        assert_eq!(dot, expect as i32);
    }

    #[test]
    fn popcount_relation_holds() {
        let a = BitVec::from_signs(&[1.0, -1.0, 1.0, -1.0]);
        let b = BitVec::from_signs(&[1.0, 1.0, 1.0, -1.0]);
        let pc = a.xnor_popcount(&b);
        assert_eq!(2 * pc as i32 - 4, a.xnor_dot(&b));
        assert_eq!(pc, 3);
    }

    #[test]
    fn set_and_get() {
        let mut v = BitVec::zeros(70);
        v.set(69, true);
        assert!(v.get(69));
        assert!(!v.get(68));
        v.set(69, false);
        assert!(!v.get(69));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let v = BitVec::zeros(3);
        let _ = v.get(3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_checked() {
        let _ = BitVec::zeros(3).xnor_dot(&BitVec::zeros(4));
    }

    #[test]
    fn matrix_matvec_matches_rowwise() {
        let w = [1.0f32, -1.0, 1.0, /* row 2 */ -1.0, -1.0, 1.0];
        let m = BitMatrix::from_signs(2, 3, &w);
        let x = BitVec::from_signs(&[1.0, 1.0, -1.0]);
        let y = m.xnor_matvec(&x);
        assert_eq!(y, vec![1 - 1 - 1, -1 - 1 - 1]);
        assert_eq!(m.weight_bits(), 6);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 3);
    }

    #[test]
    fn from_bools_matches_from_signs() {
        let bools = [true, false, true];
        let signs = [1.0, -1.0, 1.0];
        assert_eq!(BitVec::from_bools(&bools), BitVec::from_signs(&signs));
    }

    #[test]
    fn refill_from_bools_matches_fresh_pack_across_word_boundaries() {
        let mut v = BitVec::zeros(0);
        for n in [0usize, 1, 63, 64, 65, 130] {
            let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            v.refill_from_bools(&bools);
            assert_eq!(v, BitVec::from_bools(&bools), "n={n}");
            assert_eq!(v.len(), n);
        }
        // Shrinking reuse keeps the tail invariant: no stale high bits.
        v.refill_from_bools(&[true; 70]);
        v.refill_from_bools(&[true, false, true]);
        assert_eq!(v.count_ones(), 2);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn matvec_into_reuses_buffer() {
        let m = BitMatrix::from_signs(2, 3, &[1.0f32, -1.0, 1.0, -1.0, -1.0, 1.0]);
        let x = BitVec::from_signs(&[1.0, 1.0, -1.0]);
        let mut acc = vec![99i32; 7];
        m.xnor_matvec_into(&x, &mut acc);
        assert_eq!(acc, m.xnor_matvec(&x));
    }

    #[test]
    fn serde_round_trip_preserves_bits() {
        let signs: Vec<f32> = (0..70)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let v = BitVec::from_signs(&signs);
        let restored = BitVec::from_value(&v.to_value()).unwrap();
        assert_eq!(restored, v);
        assert_eq!(restored.count_ones(), v.count_ones());

        let m = BitMatrix::from_signs(2, 35, &[1.0f32; 70]);
        let restored = BitMatrix::from_value(&m.to_value()).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn deserialize_rejects_forged_tail_bits() {
        // len = 5 uses bits 0..5 of one word; a forged payload that sets a
        // higher bit would silently inflate count_ones and corrupt every
        // full-word xnor_dot, so it must be rejected at the boundary.
        let mut value = BitVec::from_signs(&[1.0, -1.0, 1.0, -1.0, 1.0]).to_value();
        if let Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "words" {
                    *field = Value::Seq(vec![Value::UInt(0b101 | (1 << 63))]);
                }
            }
        } else {
            panic!("BitVec must serialise to an object");
        }
        let err = BitVec::from_value(&value).unwrap_err();
        assert!(err.to_string().contains("beyond len"), "{err}");
    }

    #[test]
    fn deserialize_rejects_wrong_word_count() {
        let mut value = BitVec::from_signs(&[1.0; 5]).to_value();
        if let Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "words" {
                    *field = Value::Seq(vec![Value::UInt(31), Value::UInt(0)]);
                }
            }
        }
        assert!(BitVec::from_value(&value).is_err());
    }

    #[test]
    fn matrix_deserialize_rejects_row_width_mismatch() {
        // A 2×35 matrix whose declared cols is quietly edited to 40
        // would previously deserialise fine and panic only on the first
        // xnor_matvec. The manual impl rejects it at the boundary.
        let m = BitMatrix::from_signs(2, 35, &[1.0f32; 70]);
        let mut value = m.to_value();
        if let Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "cols" {
                    *field = Value::UInt(40);
                }
            }
        } else {
            panic!("BitMatrix must serialise to an object");
        }
        let err = BitMatrix::from_value(&value).unwrap_err();
        assert!(err.to_string().contains("expected cols"), "{err}");
    }

    #[test]
    fn matrix_deserialize_rejects_forged_row_tail_bits() {
        // Row-level tail validation is delegated to BitVec::from_value;
        // pin that the composition actually rejects a forged row.
        let m = BitMatrix::from_signs(1, 5, &[1.0f32; 5]);
        let mut value = m.to_value();
        if let Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "rows" {
                    let row = BitVec::from_signs(&[1.0; 5]).to_value();
                    let mut forged = row.clone();
                    if let Value::Map(row_entries) = &mut forged {
                        for (rk, rf) in row_entries.iter_mut() {
                            if rk == "words" {
                                *rf = Value::Seq(vec![Value::UInt(0b11111 | (1 << 40))]);
                            }
                        }
                    }
                    *field = Value::Seq(vec![forged]);
                }
            }
        }
        assert!(BitMatrix::from_value(&value).is_err());
    }

    #[test]
    fn tail_invariant_holds_for_all_constructors() {
        for n in [0usize, 1, 5, 63, 64, 65, 130] {
            assert!(BitVec::zeros(n).tail_is_clear(), "zeros({n})");
            let signs: Vec<f32> = (0..n)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect();
            assert!(
                BitVec::from_signs(&signs).tail_is_clear(),
                "from_signs({n})"
            );
            let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            assert!(
                BitVec::from_bools(&bools).tail_is_clear(),
                "from_bools({n})"
            );
        }
    }

    /// Scalar reference kernel the widened loops are pinned against:
    /// the original single-accumulator word loop, kept verbatim.
    fn xnor_dot_words_reference(a: &[u64], b: &[u64], len: usize) -> i32 {
        let mut matches = 0u32;
        let full_words = len / 64;
        for w in 0..full_words {
            matches += (!(a[w] ^ b[w])).count_ones();
        }
        let tail = len % 64;
        if tail > 0 {
            let mask = (1u64 << tail) - 1;
            matches += ((!(a[full_words] ^ b[full_words])) & mask).count_ones();
        }
        2 * matches as i32 - len as i32
    }

    fn pseudo_random_bits(len: usize, seed: u64) -> BitVec {
        // splitmix64 stream — deterministic, no external RNG dep.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let bools: Vec<bool> = (0..len).map(|_| next() & 1 == 1).collect();
        BitVec::from_bools(&bools)
    }

    #[test]
    fn widened_dot_matches_scalar_reference() {
        // Lengths straddle the 4-word unroll boundary (256 bits) and the
        // word boundary, plus tails of every phase.
        for len in [
            0usize, 1, 63, 64, 65, 127, 128, 255, 256, 257, 300, 515, 1024,
        ] {
            let a = pseudo_random_bits(len, 0xA5A5 + len as u64);
            let b = pseudo_random_bits(len, 0x5A5A + len as u64);
            assert_eq!(
                xnor_dot_words(a.words(), b.words(), len),
                xnor_dot_words_reference(a.words(), b.words(), len),
                "len={len}"
            );
        }
    }

    #[test]
    fn x4_dot_matches_four_scalar_dots() {
        for len in [1usize, 64, 65, 130, 256, 257, 515] {
            let rows: Vec<BitVec> = (0..4)
                .map(|r| pseudo_random_bits(len, 0xC0FFEE + r as u64 * 97 + len as u64))
                .collect();
            let x = pseudo_random_bits(len, 0xBEEF + len as u64);
            let quad = xnor_dot_words_x4(
                [
                    rows[0].words(),
                    rows[1].words(),
                    rows[2].words(),
                    rows[3].words(),
                ],
                x.words(),
                len,
            );
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(
                    quad[r],
                    xnor_dot_words_reference(row.words(), x.words(), len),
                    "len={len} lane={r}"
                );
            }
        }
    }

    #[test]
    fn matvec_for_each_visits_rows_in_order_and_matches_rowwise() {
        // Row counts cover 4-row quads plus every remainder phase.
        for (nrows, cols) in [
            (0usize, 5usize),
            (1, 70),
            (3, 130),
            (4, 33),
            (6, 64),
            (9, 257),
        ] {
            let values: Vec<f32> = (0..nrows * cols)
                .map(|i| if (i * 2654435761) % 7 < 3 { 1.0 } else { -1.0 })
                .collect();
            let m = BitMatrix::from_signs(nrows, cols, &values);
            let x = pseudo_random_bits(cols, 0xDEAD + cols as u64);
            let mut visited = Vec::new();
            m.xnor_matvec_for_each(&x, |r, dot| visited.push((r, dot)));
            let expect: Vec<(usize, i32)> =
                (0..nrows).map(|r| (r, m.row(r).xnor_dot(&x))).collect();
            assert_eq!(visited, expect, "nrows={nrows} cols={cols}");
        }
    }

    #[test]
    fn deserialize_accepts_exact_word_boundary() {
        // len = 128 fills both words completely: no tail to validate.
        let signs: Vec<f32> = (0..128)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let v = BitVec::from_signs(&signs);
        assert_eq!(BitVec::from_value(&v.to_value()).unwrap(), v);
    }
}
