//! Bit-packed ±1 vectors and matrices with XNOR–popcount arithmetic.
//!
//! A binarised value `+1` is stored as bit `1`, `−1` as bit `0`. The dot
//! product of two ±1 vectors of length `n` is then
//!
//! ```text
//! a·b = 2·popcount(XNOR(a, b)) − n
//! ```
//!
//! which is the arithmetic FINN's processing elements implement with
//! LUT-based XNOR gates and popcount trees. [`BitVec::xnor_dot`] is the
//! software equivalent, operating on 64-bit words.

use serde::{Deserialize, Serialize};

/// A bit-packed vector of ±1 values.
///
/// # Example
///
/// ```
/// use mp_bnn::bits::BitVec;
///
/// let a = BitVec::from_signs(&[1.0, -1.0, 1.0]);
/// let b = BitVec::from_signs(&[1.0, 1.0, -1.0]);
/// // (+1·+1) + (−1·+1) + (+1·−1) = −1
/// assert_eq!(a.xnor_dot(&b), -1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all `−1` (all-zero-bit) vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Packs the signs of a float slice (`x >= 0` maps to `+1`).
    ///
    /// The `sign(0) = +1` convention follows BinaryNet.
    pub fn from_signs(values: &[f32]) -> Self {
        let mut v = Self::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x >= 0.0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Packs a boolean slice (`true` maps to `+1`).
    pub fn from_bools(values: &[bool]) -> Self {
        let mut v = Self::zeros(values.len());
        for (i, &b) in values.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of ±1 entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (`true` = `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds for {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` (`true` = `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds for {}", self.len);
        let word = &mut self.words[i / 64];
        if value {
            *word |= 1 << (i % 64);
        } else {
            *word &= !(1 << (i % 64));
        }
    }

    /// Unpacks into ±1 floats.
    pub fn to_signs(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| if self.get(i) { 1.0 } else { -1.0 })
            .collect()
    }

    /// Number of `+1` entries.
    pub fn count_ones(&self) -> u32 {
        // Trailing bits beyond `len` are maintained zero by `set`.
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// ±1 dot product via XNOR–popcount.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xnor_dot(&self, other: &BitVec) -> i32 {
        assert_eq!(self.len, other.len, "xnor_dot length mismatch");
        let mut matches = 0u32;
        let full_words = self.len / 64;
        for w in 0..full_words {
            matches += (!(self.words[w] ^ other.words[w])).count_ones();
        }
        let tail = self.len % 64;
        if tail > 0 {
            let mask = (1u64 << tail) - 1;
            matches += ((!(self.words[full_words] ^ other.words[full_words])) & mask).count_ones();
        }
        2 * matches as i32 - self.len as i32
    }

    /// Popcount of the XNOR (number of agreeing positions).
    ///
    /// This is the raw quantity a FINN PE accumulates before its
    /// threshold comparison.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xnor_popcount(&self, other: &BitVec) -> u32 {
        let dot = self.xnor_dot(other);
        ((dot + self.len as i32) / 2) as u32
    }
}

/// A bit-packed matrix of ±1 values, one [`BitVec`] per row.
///
/// Used for binarised weight matrices (`[outputs, fan_in]`, matching the
/// FINN weight memory layout where each PE holds full rows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// Packs the signs of a row-major float matrix.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn from_signs(rows: usize, cols: usize, values: &[f32]) -> Self {
        assert_eq!(values.len(), rows * cols, "matrix size mismatch");
        Self {
            rows: (0..rows)
                .map(|r| BitVec::from_signs(&values[r * cols..(r + 1) * cols]))
                .collect(),
            cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Matrix–vector product against a packed ±1 vector, one integer
    /// accumulation per row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn xnor_matvec(&self, x: &BitVec) -> Vec<i32> {
        self.rows.iter().map(|row| row.xnor_dot(x)).collect()
    }

    /// Total storage bits (the quantity FINN places in on-chip memory).
    pub fn weight_bits(&self) -> u64 {
        (self.num_rows() * self.cols) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let signs = [1.0, -1.0, -1.0, 1.0, 1.0];
        let v = BitVec::from_signs(&signs);
        assert_eq!(v.to_signs(), signs);
        assert_eq!(v.len(), 5);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn sign_zero_is_positive() {
        let v = BitVec::from_signs(&[0.0]);
        assert!(v.get(0));
    }

    #[test]
    fn xnor_dot_matches_float_dot() {
        let a = [1.0f32, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        let b = [-1.0f32, -1.0, 1.0, -1.0, -1.0, 1.0, 1.0];
        let expect: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let dot = BitVec::from_signs(&a).xnor_dot(&BitVec::from_signs(&b));
        assert_eq!(dot, expect as i32);
    }

    #[test]
    fn xnor_dot_spans_word_boundaries() {
        // 130 entries crosses two u64 words.
        let a: Vec<f32> = (0..130)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b: Vec<f32> = (0..130)
            .map(|i| if i % 5 == 0 { 1.0 } else { -1.0 })
            .collect();
        let expect: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let dot = BitVec::from_signs(&a).xnor_dot(&BitVec::from_signs(&b));
        assert_eq!(dot, expect as i32);
    }

    #[test]
    fn popcount_relation_holds() {
        let a = BitVec::from_signs(&[1.0, -1.0, 1.0, -1.0]);
        let b = BitVec::from_signs(&[1.0, 1.0, 1.0, -1.0]);
        let pc = a.xnor_popcount(&b);
        assert_eq!(2 * pc as i32 - 4, a.xnor_dot(&b));
        assert_eq!(pc, 3);
    }

    #[test]
    fn set_and_get() {
        let mut v = BitVec::zeros(70);
        v.set(69, true);
        assert!(v.get(69));
        assert!(!v.get(68));
        v.set(69, false);
        assert!(!v.get(69));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let v = BitVec::zeros(3);
        let _ = v.get(3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_checked() {
        let _ = BitVec::zeros(3).xnor_dot(&BitVec::zeros(4));
    }

    #[test]
    fn matrix_matvec_matches_rowwise() {
        let w = [1.0f32, -1.0, 1.0, /* row 2 */ -1.0, -1.0, 1.0];
        let m = BitMatrix::from_signs(2, 3, &w);
        let x = BitVec::from_signs(&[1.0, 1.0, -1.0]);
        let y = m.xnor_matvec(&x);
        assert_eq!(y, vec![1 - 1 - 1, -1 - 1 - 1]);
        assert_eq!(m.weight_bits(), 6);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 3);
    }

    #[test]
    fn from_bools_matches_from_signs() {
        let bools = [true, false, true];
        let signs = [1.0, -1.0, 1.0];
        assert_eq!(BitVec::from_bools(&bools), BitVec::from_signs(&signs));
    }
}
