//! Straight-through-estimator (STE) training layers.
//!
//! Binarised networks train on real-valued "latent" weights: the forward
//! pass sees only `sign(w)` and `sign(activation)`, while gradients flow
//! straight through the non-differentiable sign with the hard-tanh clip
//! of Courbariaux & Bengio (the paper's reference \[2\]). Latent weights
//! are clamped to `[-1, 1]` so the estimator stays in its valid region.

use mp_nn::{Layer, LayerCost, Mode};
use mp_tensor::conv::{col2im, im2col, im2col_slice_into, ConvGeometry};
use mp_tensor::init::TensorRng;
use mp_tensor::{linalg, Shape, ShapeError, Tensor, Workspace};

/// `sign(x)` with `sign(0) = +1`, the BinaryNet convention.
pub fn binarize(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Sign activation with the hard-tanh straight-through estimator.
///
/// Forward: `y = sign(x) ∈ {−1, +1}`. Backward: `dx = dy · 1{|x| ≤ 1}`.
///
/// # Example
///
/// ```
/// use mp_bnn::ste::SignActivation;
/// use mp_nn::{Layer, Mode};
/// use mp_tensor::Tensor;
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut sign = SignActivation::new();
/// let x = Tensor::from_vec([3], vec![-0.3, 0.0, 2.5])?;
/// assert_eq!(sign.forward(&x, Mode::Infer)?.as_slice(), &[-1.0, 1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SignActivation {
    cached_input: Option<Tensor>,
}

impl SignActivation {
    /// Creates a sign activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for SignActivation {
    fn name(&self) -> String {
        "sign".to_owned()
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        if mode.is_train() {
            self.cached_input = Some(input.clone());
        }
        Ok(input.map(binarize))
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        Ok(input.map(binarize))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let input = self.cached_input.take().ok_or_else(|| {
            ShapeError::new(
                "SignActivation",
                "backward called without a preceding training-mode forward",
            )
        })?;
        input.zip_with(grad_output, |x, g| if x.abs() <= 1.0 { g } else { 0.0 })
    }
}

/// Binarised 2-D convolution (no bias; FINN thresholds absorb offsets).
///
/// Owns real-valued latent weights; the forward pass binarises them.
#[derive(Debug)]
pub struct BinConv2d {
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    weight: Tensor,
    weight_grad: Tensor,
    cached_cols: Option<Vec<Tensor>>,
    cached_input_shape: Option<Shape>,
}

impl BinConv2d {
    /// Creates a binarised convolution with uniform latent weights in
    /// `(−1, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if a channel count is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Result<Self, ShapeError> {
        if in_channels == 0 || out_channels == 0 {
            return Err(ShapeError::new(
                "BinConv2d::new",
                "channel counts must be positive",
            ));
        }
        let geom = ConvGeometry::new(kernel, stride, padding);
        let fan_in = in_channels * kernel * kernel;
        Ok(Self {
            in_channels,
            out_channels,
            geom,
            weight: rng.uniform([out_channels, fan_in], -1.0, 1.0),
            weight_grad: Tensor::zeros([out_channels, fan_in]),
            cached_cols: None,
            cached_input_shape: None,
        })
    }

    /// The real-valued latent weight matrix `[out_channels, fan_in]`.
    pub fn latent_weight(&self) -> &Tensor {
        &self.weight
    }

    /// The binarised weights the forward pass uses.
    pub fn binary_weight(&self) -> Tensor {
        self.weight.map(binarize)
    }

    /// Convolution geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    fn check_input(&self, input: &Shape) -> Result<(usize, usize, usize), ShapeError> {
        if input.rank() != 4 || input.dim(1) != self.in_channels {
            return Err(ShapeError::new(
                "BinConv2d",
                format!("expected [N,{},H,W] input, got {input}", self.in_channels),
            ));
        }
        let oh = self.geom.output_dim(input.dim(2));
        let ow = self.geom.output_dim(input.dim(3));
        if oh == 0 || ow == 0 {
            return Err(ShapeError::new(
                "BinConv2d",
                format!("kernel does not fit input {input}"),
            ));
        }
        Ok((input.dim(0), oh, ow))
    }
}

impl Layer for BinConv2d {
    fn name(&self) -> String {
        format!("{0}x{0}-binconv-{1}", self.geom.kernel, self.out_channels)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let (n, oh, ow) = self.check_input(input)?;
        Ok(Shape::nchw(n, self.out_channels, oh, ow))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        // Keep latent weights in the STE's valid region.
        self.weight.map_inplace(|w| w.clamp(-1.0, 1.0));
        let (n, oh, ow) = self.check_input(input.shape())?;
        let wb = self.binary_weight();
        let mut out = Vec::with_capacity(n * self.out_channels * oh * ow);
        let mut cols_cache = mode.is_train().then(|| Vec::with_capacity(n));
        for img in 0..n {
            let image = input.batch_item(img)?;
            let cols = im2col(&image, self.geom)?;
            let y = linalg::matmul(&wb, &cols)?;
            out.extend_from_slice(y.as_slice());
            if let Some(cache) = &mut cols_cache {
                cache.push(cols);
            }
        }
        if mode.is_train() {
            self.cached_cols = cols_cache;
            self.cached_input_shape = Some(input.shape().clone());
        }
        Tensor::from_vec(Shape::nchw(n, self.out_channels, oh, ow), out)
    }

    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        // `forward` clamps latent weights before binarising; clamping to
        // [-1, 1] never changes a weight's sign (and preserves zero), so
        // binarising unclamped weights is bit-identical without mutation.
        let (n, oh, ow) = self.check_input(input.shape())?;
        let (c, h, w) = (
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        let pixels = oh * ow;
        let image_len = c * h * w;
        let mut wb_buf = ws.take(self.weight.len());
        wb_buf.clear();
        wb_buf.extend(self.weight.iter().map(|&w| binarize(w)));
        let wb = Tensor::from_vec(self.weight.shape().clone(), wb_buf)?;
        let mut out = ws.take(n * self.out_channels * pixels);
        out.clear();
        let mut cols_buf = ws.take(c * self.geom.kernel * self.geom.kernel * pixels);
        let mut y = ws.take(self.out_channels * pixels);
        let xv = input.as_slice();
        for img in 0..n {
            let image = &xv[img * image_len..(img + 1) * image_len];
            let (rows, cols) = im2col_slice_into(image, c, h, w, self.geom, &mut cols_buf)?;
            let patches =
                Tensor::from_vec(Shape::matrix(rows, cols), std::mem::take(&mut cols_buf))?;
            linalg::matmul_into(&wb, &patches, &mut y)?;
            cols_buf = patches.into_vec();
            out.extend_from_slice(&y);
        }
        ws.put(cols_buf);
        ws.put(y);
        ws.put(wb.into_vec());
        Tensor::from_vec(Shape::nchw(n, self.out_channels, oh, ow), out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let cols = self.cached_cols.take().ok_or_else(|| {
            ShapeError::new(
                "BinConv2d",
                "backward called without a preceding training-mode forward",
            )
        })?;
        let in_shape = self
            .cached_input_shape
            .clone()
            .ok_or_else(|| ShapeError::new("BinConv2d", "missing cached input shape"))?;
        let (n, c, h, w) = (
            in_shape.dim(0),
            in_shape.dim(1),
            in_shape.dim(2),
            in_shape.dim(3),
        );
        let oh = self.geom.output_dim(h);
        let ow = self.geom.output_dim(w);
        let want = Shape::nchw(n, self.out_channels, oh, ow);
        if grad_output.shape() != &want {
            return Err(ShapeError::new(
                "BinConv2d",
                format!("expected grad {want}, got {}", grad_output.shape()),
            ));
        }
        let pixels = oh * ow;
        let wb = self.binary_weight();
        let mut grad_in = Vec::with_capacity(n * c * h * w);
        #[allow(clippy::needless_range_loop)] // index drives several containers
        for img in 0..n {
            let g = grad_output.batch_item(img)?;
            let g = g.into_reshaped([self.out_channels, pixels])?;
            // STE: dW_latent = dW_binary (weights already clamped).
            let dw = linalg::matmul_transpose_b(&g, &cols[img])?;
            self.weight_grad.axpy(1.0, &dw)?;
            let dcols = linalg::matmul_transpose_a(&wb, &g)?;
            let dx = col2im(&dcols, c, h, w, self.geom)?;
            grad_in.extend_from_slice(dx.as_slice());
        }
        Tensor::from_vec(in_shape, grad_in)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight, &mut self.weight_grad);
    }

    fn zero_grads(&mut self) {
        self.weight_grad.map_inplace(|_| 0.0);
    }

    fn cost(&self, input: &Shape) -> Result<LayerCost, ShapeError> {
        let (_, oh, ow) = self.check_input(input)?;
        let fan_in = self.in_channels * self.geom.kernel * self.geom.kernel;
        Ok(LayerCost::new(
            (self.out_channels * fan_in * oh * ow) as u64,
            (self.out_channels * fan_in) as u64,
            (self.out_channels * oh * ow) as u64,
        ))
    }
}

/// Binarised fully-connected layer (no bias).
#[derive(Debug)]
pub struct BinLinear {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    weight_grad: Tensor,
    cached_input: Option<Tensor>,
}

impl BinLinear {
    /// Creates a binarised FC layer with uniform latent weights.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if a feature count is zero.
    pub fn new(
        in_features: usize,
        out_features: usize,
        rng: &mut TensorRng,
    ) -> Result<Self, ShapeError> {
        if in_features == 0 || out_features == 0 {
            return Err(ShapeError::new(
                "BinLinear::new",
                "feature counts must be positive",
            ));
        }
        Ok(Self {
            in_features,
            out_features,
            weight: rng.uniform([out_features, in_features], -1.0, 1.0),
            weight_grad: Tensor::zeros([out_features, in_features]),
            cached_input: None,
        })
    }

    /// The real-valued latent weight matrix `[out_features, in_features]`.
    pub fn latent_weight(&self) -> &Tensor {
        &self.weight
    }

    /// The binarised weights the forward pass uses.
    pub fn binary_weight(&self) -> Tensor {
        self.weight.map(binarize)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn check_input(&self, input: &Shape) -> Result<usize, ShapeError> {
        if input.rank() != 2 || input.dim(1) != self.in_features {
            return Err(ShapeError::new(
                "BinLinear",
                format!("expected [N,{}] input, got {input}", self.in_features),
            ));
        }
        Ok(input.dim(0))
    }
}

impl Layer for BinLinear {
    fn name(&self) -> String {
        format!("binFC-{}", self.out_features)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let n = self.check_input(input)?;
        Ok(Shape::matrix(n, self.out_features))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        self.weight.map_inplace(|w| w.clamp(-1.0, 1.0));
        self.check_input(input.shape())?;
        let wb = self.binary_weight();
        let y = linalg::matmul_transpose_b(input, &wb)?;
        if mode.is_train() {
            self.cached_input = Some(input.clone());
        }
        Ok(y)
    }

    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        // See BinConv2d::infer: skipping the latent clamp is bit-safe.
        let n = self.check_input(input.shape())?;
        let mut wb_buf = ws.take(self.weight.len());
        wb_buf.clear();
        wb_buf.extend(self.weight.iter().map(|&w| binarize(w)));
        let wb = Tensor::from_vec(self.weight.shape().clone(), wb_buf)?;
        let mut y = ws.take(n * self.out_features);
        linalg::matmul_transpose_b_into(input, &wb, &mut y)?;
        ws.put(wb.into_vec());
        Tensor::from_vec(Shape::matrix(n, self.out_features), y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let input = self.cached_input.take().ok_or_else(|| {
            ShapeError::new(
                "BinLinear",
                "backward called without a preceding training-mode forward",
            )
        })?;
        let n = input.shape().dim(0);
        let want = Shape::matrix(n, self.out_features);
        if grad_output.shape() != &want {
            return Err(ShapeError::new(
                "BinLinear",
                format!("expected grad {want}, got {}", grad_output.shape()),
            ));
        }
        let dw = linalg::matmul_transpose_a(grad_output, &input)?;
        self.weight_grad.axpy(1.0, &dw)?;
        linalg::matmul(grad_output, &self.binary_weight())
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight, &mut self.weight_grad);
    }

    fn zero_grads(&mut self) {
        self.weight_grad.map_inplace(|_| 0.0);
    }

    fn cost(&self, input: &Shape) -> Result<LayerCost, ShapeError> {
        self.check_input(input)?;
        Ok(LayerCost::new(
            (self.out_features * self.in_features) as u64,
            (self.out_features * self.in_features) as u64,
            self.out_features as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarize_convention() {
        assert_eq!(binarize(0.0), 1.0);
        assert_eq!(binarize(-0.001), -1.0);
        assert_eq!(binarize(7.0), 1.0);
    }

    #[test]
    fn sign_activation_outputs_plus_minus_one() {
        let mut s = SignActivation::new();
        let x = Tensor::from_vec([4], vec![-3.0, -0.5, 0.5, 3.0]).unwrap();
        let y = s.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[-1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn sign_ste_clips_gradient() {
        let mut s = SignActivation::new();
        let x = Tensor::from_vec([4], vec![-3.0, -0.5, 0.5, 3.0]).unwrap();
        s.forward(&x, Mode::Train).unwrap();
        let dx = s.backward(&Tensor::ones([4])).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn binconv_forward_uses_binarized_weights() {
        let mut rng = TensorRng::seed_from(50);
        let mut conv = BinConv2d::new(1, 1, 2, 1, 0, &mut rng).unwrap();
        // Latent weights with mixed magnitudes all binarise to their sign.
        conv.weight = Tensor::from_vec([1, 4], vec![0.3, -0.7, 0.01, -0.99]).unwrap();
        let x = Tensor::ones(Shape::nchw(1, 1, 2, 2));
        let y = conv.forward(&x, Mode::Infer).unwrap();
        // 1 − 1 + 1 − 1 = 0
        assert_eq!(y.as_slice(), &[0.0]);
    }

    #[test]
    fn binconv_output_is_integer_valued() {
        let mut rng = TensorRng::seed_from(51);
        let mut conv = BinConv2d::new(2, 3, 3, 1, 0, &mut rng).unwrap();
        let x = Tensor::from_fn(
            Shape::nchw(1, 2, 5, 5),
            |i| {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            },
        );
        let y = conv.forward(&x, Mode::Infer).unwrap();
        for &v in y.iter() {
            assert_eq!(v, v.round(), "binary conv output must be integral, got {v}");
        }
        // Parity: dot of 18 ±1 values is even.
        for &v in y.iter() {
            assert_eq!((v as i32).rem_euclid(2), 0);
        }
    }

    #[test]
    fn binconv_latent_weights_clamped() {
        let mut rng = TensorRng::seed_from(52);
        let mut conv = BinConv2d::new(1, 1, 2, 1, 0, &mut rng).unwrap();
        conv.weight = Tensor::from_vec([1, 4], vec![5.0, -5.0, 0.5, -0.5]).unwrap();
        conv.forward(&Tensor::ones(Shape::nchw(1, 1, 2, 2)), Mode::Infer)
            .unwrap();
        assert_eq!(conv.latent_weight().as_slice(), &[1.0, -1.0, 0.5, -0.5]);
    }

    #[test]
    fn binconv_gradients_flow_to_latent_weights() {
        let mut rng = TensorRng::seed_from(53);
        let mut conv = BinConv2d::new(1, 2, 2, 1, 0, &mut rng).unwrap();
        let x = rng.normal(Shape::nchw(1, 1, 3, 3), 0.0, 1.0);
        let y = conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert!(conv.weight_grad.iter().any(|&g| g != 0.0));
        conv.zero_grads();
        assert!(conv.weight_grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn binlinear_matches_xnor_arithmetic() {
        let mut rng = TensorRng::seed_from(54);
        let mut fc = BinLinear::new(8, 4, &mut rng).unwrap();
        let x_signs: Vec<f32> = (0..8)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let x = Tensor::from_vec([1, 8], x_signs.clone()).unwrap();
        let y = fc.forward(&x, Mode::Infer).unwrap();
        // Compare against BitVec xnor_dot per output row.
        use crate::bits::{BitMatrix, BitVec};
        let wb = fc.binary_weight();
        let m = BitMatrix::from_signs(4, 8, wb.as_slice());
        let xv = BitVec::from_signs(&x_signs);
        let ints = m.xnor_matvec(&xv);
        for (f, i) in y.iter().zip(ints) {
            assert_eq!(*f as i32, i);
        }
    }

    #[test]
    fn binlinear_backward_requires_forward() {
        let mut rng = TensorRng::seed_from(55);
        let mut fc = BinLinear::new(4, 2, &mut rng).unwrap();
        assert!(fc.backward(&Tensor::zeros([1, 2])).is_err());
    }

    #[test]
    fn costs_count_binary_params() {
        let mut rng = TensorRng::seed_from(56);
        let conv = BinConv2d::new(3, 64, 3, 1, 0, &mut rng).unwrap();
        let cost = conv.cost(&Shape::nchw(1, 3, 32, 32)).unwrap();
        assert_eq!(cost.params, 64 * 27);
        let fc = BinLinear::new(256, 64, &mut rng).unwrap();
        assert_eq!(fc.cost(&Shape::matrix(1, 256)).unwrap().params, 256 * 64);
    }

    #[test]
    fn rejects_zero_dims() {
        let mut rng = TensorRng::seed_from(57);
        assert!(BinConv2d::new(0, 1, 3, 1, 0, &mut rng).is_err());
        assert!(BinLinear::new(1, 0, &mut rng).is_err());
    }
}

/// Uniform symmetric quantisation to `2^bits` levels on `[-1, 1]` with
/// the straight-through estimator.
///
/// With `bits = 1` this is exactly [`SignActivation`] (levels `{−1, +1}`
/// with the `x = 0 → +1` convention); wider settings give the
/// partially-binarised inner layers of the paper's §II and future-work
/// discussion. Weights stay binary either way — only activations widen.
///
/// # Example
///
/// ```
/// use mp_bnn::ste::QuantActivation;
/// use mp_nn::{Layer, Mode};
/// use mp_tensor::Tensor;
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut q2 = QuantActivation::new(2)?; // levels −1, −1/3, 1/3, 1
/// let x = Tensor::from_vec([3], vec![-0.2, 0.1, 0.9])?;
/// let y = q2.forward(&x, Mode::Infer)?;
/// assert!((y.as_slice()[0] + 1.0 / 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QuantActivation {
    bits: usize,
    cached_input: Option<Tensor>,
}

impl QuantActivation {
    /// Creates an activation with `2^bits` levels.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bits` is zero or above 16.
    pub fn new(bits: usize) -> Result<Self, ShapeError> {
        if bits == 0 || bits > 16 {
            return Err(ShapeError::new(
                "QuantActivation::new",
                format!("activation width {bits} must be in 1..=16"),
            ));
        }
        Ok(Self {
            bits,
            cached_input: None,
        })
    }

    /// Activation width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Quantises one value.
    pub fn quantize(&self, x: f32) -> f32 {
        let levels = (1u32 << self.bits) as f32 - 1.0;
        let unit = (x.clamp(-1.0, 1.0) + 1.0) / 2.0; // [0,1]
        let q = (unit * levels).round() / levels;
        2.0 * q - 1.0
    }
}

impl Layer for QuantActivation {
    fn name(&self) -> String {
        format!("quant{}", self.bits)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        if mode.is_train() {
            self.cached_input = Some(input.clone());
        }
        Ok(input.map(|x| self.quantize(x)))
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        Ok(input.map(|x| self.quantize(x)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let input = self.cached_input.take().ok_or_else(|| {
            ShapeError::new(
                "QuantActivation",
                "backward called without a preceding training-mode forward",
            )
        })?;
        input.zip_with(grad_output, |x, g| if x.abs() <= 1.0 { g } else { 0.0 })
    }
}

#[cfg(test)]
mod quant_tests {
    use super::*;

    #[test]
    fn one_bit_matches_sign() {
        let q = QuantActivation::new(1).unwrap();
        for x in [-5.0f32, -0.3, 0.0, 0.3, 5.0] {
            assert_eq!(q.quantize(x), binarize(x), "x = {x}");
        }
    }

    #[test]
    fn levels_are_uniform() {
        let q = QuantActivation::new(2).unwrap();
        let outputs: Vec<f32> = [-1.0f32, -0.4, 0.4, 1.0]
            .iter()
            .map(|&x| q.quantize(x))
            .collect();
        let third = 1.0 / 3.0;
        assert!((outputs[0] + 1.0).abs() < 1e-6);
        assert!((outputs[1] + third).abs() < 1e-6);
        assert!((outputs[2] - third).abs() < 1e-6);
        assert!((outputs[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn wide_quantisation_approaches_identity() {
        let q = QuantActivation::new(8).unwrap();
        for x in [-0.9f32, -0.25, 0.1, 0.77] {
            assert!((q.quantize(x) - x).abs() < 0.01, "x = {x}");
        }
    }

    #[test]
    fn values_clamp_to_unit_range() {
        let q = QuantActivation::new(4).unwrap();
        assert_eq!(q.quantize(10.0), 1.0);
        assert_eq!(q.quantize(-10.0), -1.0);
    }

    #[test]
    fn ste_clips_like_sign() {
        let mut q = QuantActivation::new(3).unwrap();
        let x = Tensor::from_vec([3], vec![-2.0, 0.5, 2.0]).unwrap();
        q.forward(&x, Mode::Train).unwrap();
        let dx = q.backward(&Tensor::ones([3])).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(QuantActivation::new(0).is_err());
        assert!(QuantActivation::new(17).is_err());
        assert!(QuantActivation::new(16).is_ok());
    }

    #[test]
    fn quantisation_is_idempotent() {
        let q = QuantActivation::new(3).unwrap();
        for x in [-0.8f32, -0.1, 0.3, 0.9] {
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once);
        }
    }
}
