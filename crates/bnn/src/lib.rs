//! # mp-bnn
//!
//! The binarised neural network: the "high-throughput" half of the
//! paper's multi-precision system, hand-rolled from scratch.
//!
//! Three views of the same network live here:
//!
//! 1. **Training view** ([`ste`]): layers with single-bit weights and
//!    activations trained by the straight-through estimator of
//!    Courbariaux & Bengio (the paper's reference \[2\]) —
//!    [`ste::BinConv2d`], [`ste::BinLinear`], [`ste::SignActivation`] —
//!    composed by [`BnnClassifier`] into the FINN CIFAR-10 topology of
//!    the paper's Table I.
//! 2. **Bit view** ([`bits`]): [`bits::BitVec`] / [`bits::BitMatrix`]
//!    pack ±1 values into machine words so inference runs on
//!    XNOR–popcount, the datapath FINN implements in LUTs.
//! 3. **Hardware view** ([`hardware`]): [`HardwareBnn`] is the folded
//!    inference network — bit-packed weights plus integer thresholds
//!    (batch-norm + sign folded per FINN) — functionally equivalent to
//!    the FPGA bitstream. `mp-fpga` models its timing and memory.
//!
//! # Example
//!
//! ```
//! use mp_bnn::FinnTopology;
//!
//! // The paper's Table I network for 32×32 RGB inputs.
//! let topo = FinnTopology::paper();
//! assert_eq!(topo.engines().len(), 9); // 6 conv + 3 FC engines
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod bits;
mod classifier;
pub mod hardware;
pub mod planes;
pub mod ste;
mod topology;

pub use classifier::{BnFold, BnnClassifier, LatentKind, LatentStage};
pub use hardware::{AccRange, BnnBlockStream, HardwareBnn, StageSummary};
pub use topology::{EngineKind, EngineSpec, FinnTopology};
