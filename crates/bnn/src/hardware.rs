//! The folded hardware view of a trained BNN.
//!
//! [`HardwareBnn`] is functionally what FINN synthesises onto the FPGA:
//! bit-packed ±1 weight memories, integer threshold memories (each
//! batch-norm + sign pair folded into one comparison, paper §II), an
//! 8-bit fixed-point first stage, OR-based max-pooling over binary
//! activations, and a final accumulate-only engine whose integer scores
//! feed the DMU. `mp-fpga` attaches timing and memory models to this
//! structure; here it executes functionally, bit-exactly.

use serde::{Deserialize, Serialize};

use mp_tensor::{Shape, ShapeError, Tensor};

use crate::bits::{BitMatrix, BitVec};
use crate::classifier::{BnnClassifier, Stage};
use crate::{EngineSpec, FinnTopology};

/// Fixed-point scale of the first engine's pixel inputs (Q2.6: range ±2,
/// 1/64 resolution — the paper's first stage uses wider 24-bit threshold
/// words to absorb this scaling).
pub const INPUT_QUANT_SCALE: f32 = 64.0;

/// Clamp range of first-stage pixel inputs.
pub const INPUT_QUANT_RANGE: f32 = 2.0;

/// A folded threshold: the integer comparison that replaces
/// `sign(batch_norm(acc))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwThreshold {
    /// Comparison bound on the integer accumulation.
    pub bound: i64,
    /// `false`: activation fires when `acc >= bound` (positive γ);
    /// `true`: fires when `acc <= bound` (negative γ).
    pub negate: bool,
}

impl HwThreshold {
    /// Folds a float threshold `(t, negate)` at integer `scale`.
    pub fn fold(t: f32, negate: bool, scale: f32) -> Self {
        let scaled = t * scale;
        if scaled.is_infinite() || scaled.is_nan() {
            // Degenerate batch-norm (γ = 0): constant activation.
            let bound = if (scaled < 0.0) != negate {
                i64::MIN // always fires for >=; never for <=
            } else {
                i64::MAX
            };
            return Self { bound, negate };
        }
        let bound = if negate {
            scaled.floor() as i64
        } else {
            scaled.ceil() as i64
        };
        Self { bound, negate }
    }

    /// Evaluates the activation for an integer accumulation.
    pub fn fires(&self, acc: i64) -> bool {
        if self.negate {
            acc <= self.bound
        } else {
            acc >= self.bound
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum HwStage {
    /// First engine: fixed-point pixels × binary weights.
    FirstConv {
        weights: BitMatrix,
        thresholds: Vec<HwThreshold>,
        in_channels: usize,
        kernel: usize,
        pool: bool,
    },
    /// Inner binary convolution engine.
    BinConv {
        weights: BitMatrix,
        thresholds: Vec<HwThreshold>,
        in_channels: usize,
        kernel: usize,
        pool: bool,
    },
    /// Inner binary FC engine.
    BinFc {
        weights: BitMatrix,
        thresholds: Vec<HwThreshold>,
    },
    /// Final accumulate-only FC engine.
    OutputFc { weights: BitMatrix },
}

/// Bit-exact functional model of the synthesised FINN accelerator.
///
/// # Example
///
/// ```
/// use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
/// use mp_tensor::{init::TensorRng, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut rng = TensorRng::seed_from(0);
/// let bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng)?;
/// let hw = HardwareBnn::from_classifier(&bnn)?;
/// let scores = hw.infer_image(&Tensor::zeros(Shape::nchw(1, 3, 8, 8)))?;
/// assert_eq!(scores.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HardwareBnn {
    topology: FinnTopology,
    stages: Vec<HwStage>,
}

impl HardwareBnn {
    /// Folds a trained [`BnnClassifier`] into its hardware form.
    ///
    /// Batch-norm running statistics become integer thresholds; latent
    /// weights become bit-packed signs.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the classifier is structurally
    /// inconsistent (which indicates a bug).
    pub fn from_classifier(classifier: &BnnClassifier) -> Result<Self, ShapeError> {
        if classifier.activation_bits() != 1 {
            return Err(ShapeError::new(
                "HardwareBnn::from_classifier",
                format!(
                    "only fully-binarised classifiers fold to the XNOR datapath; \
                     this one has {}-bit activations (the area of wider datapaths \
                     is modelled by mp-fpga's partial-binarisation support)",
                    classifier.activation_bits()
                ),
            ));
        }
        let mut stages = Vec::new();
        let mut first = true;
        for stage in &classifier.stages {
            match stage {
                Stage::Conv { conv, bn, pool, .. } => {
                    let wb = conv.binary_weight();
                    let weights = BitMatrix::from_signs(
                        conv.out_channels(),
                        wb.shape().dim(1),
                        wb.as_slice(),
                    );
                    let scale = if first { INPUT_QUANT_SCALE } else { 1.0 };
                    let thresholds = bn
                        .fold_threshold()
                        .into_iter()
                        .map(|(t, neg)| HwThreshold::fold(t, neg, scale))
                        .collect();
                    stages.push(if first {
                        HwStage::FirstConv {
                            weights,
                            thresholds,
                            in_channels: conv.in_channels(),
                            kernel: conv.geometry().kernel,
                            pool: pool.is_some(),
                        }
                    } else {
                        HwStage::BinConv {
                            weights,
                            thresholds,
                            in_channels: conv.in_channels(),
                            kernel: conv.geometry().kernel,
                            pool: pool.is_some(),
                        }
                    });
                    first = false;
                }
                Stage::Fc { fc, bn, .. } => {
                    let wb = fc.binary_weight();
                    let weights =
                        BitMatrix::from_signs(fc.out_features(), fc.in_features(), wb.as_slice());
                    let thresholds = bn
                        .fold_threshold()
                        .into_iter()
                        .map(|(t, neg)| HwThreshold::fold(t, neg, 1.0))
                        .collect();
                    stages.push(HwStage::BinFc {
                        weights,
                        thresholds,
                    });
                }
                Stage::Output { fc, .. } => {
                    let wb = fc.binary_weight();
                    let weights =
                        BitMatrix::from_signs(fc.out_features(), fc.in_features(), wb.as_slice());
                    stages.push(HwStage::OutputFc { weights });
                }
                Stage::Flatten { .. } => {}
            }
        }
        Ok(Self {
            topology: classifier.topology().clone(),
            stages,
        })
    }

    /// The network topology.
    pub fn topology(&self) -> &FinnTopology {
        &self.topology
    }

    /// Engine dimension records (for the FPGA timing/memory model).
    pub fn engines(&self) -> Vec<EngineSpec> {
        self.topology.engines()
    }

    /// Quantises one pixel to the first engine's fixed-point grid.
    pub fn quantize_pixel(x: f32) -> i64 {
        (x.clamp(-INPUT_QUANT_RANGE, INPUT_QUANT_RANGE) * INPUT_QUANT_SCALE).round() as i64
    }

    /// Runs one `[1, C, H, W]` image through the accelerator, returning
    /// the `classes` integer scores of the final engine.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the image does not match the topology.
    pub fn infer_image(&self, image: &Tensor) -> Result<Vec<i64>, ShapeError> {
        let want = Shape::nchw(
            1,
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        if image.shape() != &want {
            return Err(ShapeError::new(
                "HardwareBnn::infer_image",
                format!("expected {want}, got {}", image.shape()),
            ));
        }
        let mut bits: Vec<bool> = Vec::new();
        let mut dims = (
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        let mut scores: Option<Vec<i64>> = None;
        for stage in &self.stages {
            match stage {
                HwStage::FirstConv {
                    weights,
                    thresholds,
                    in_channels,
                    kernel,
                    pool,
                } => {
                    let (c, h, w) = dims;
                    debug_assert_eq!(c, *in_channels);
                    let k = *kernel;
                    let (oh, ow) = (h - k + 1, w - k + 1);
                    let od = weights.num_rows();
                    // Quantise pixels once.
                    let q: Vec<i64> = image.iter().map(|&x| Self::quantize_pixel(x)).collect();
                    let mut out = vec![false; od * oh * ow];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            // Gather the fixed-point patch in im2col row order.
                            let mut patch = Vec::with_capacity(c * k * k);
                            for ch in 0..c {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        patch.push(q[(ch * h + oy + ky) * w + ox + kx]);
                                    }
                                }
                            }
                            for oc in 0..od {
                                let row = weights.row(oc);
                                let mut acc = 0i64;
                                for (i, &x) in patch.iter().enumerate() {
                                    acc += if row.get(i) { x } else { -x };
                                }
                                out[(oc * oh + oy) * ow + ox] = thresholds[oc].fires(acc);
                            }
                        }
                    }
                    dims = (od, oh, ow);
                    bits = out;
                    if *pool {
                        let (nb, nd) = or_pool(&bits, dims);
                        bits = nb;
                        dims = nd;
                    }
                }
                HwStage::BinConv {
                    weights,
                    thresholds,
                    in_channels,
                    kernel,
                    pool,
                } => {
                    let (c, h, w) = dims;
                    debug_assert_eq!(c, *in_channels);
                    let k = *kernel;
                    let (oh, ow) = (h - k + 1, w - k + 1);
                    let od = weights.num_rows();
                    let mut out = vec![false; od * oh * ow];
                    let mut patch = BitVec::zeros(c * k * k);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut idx = 0;
                            for ch in 0..c {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        patch.set(idx, bits[(ch * h + oy + ky) * w + ox + kx]);
                                        idx += 1;
                                    }
                                }
                            }
                            for oc in 0..od {
                                let acc = weights.row(oc).xnor_dot(&patch) as i64;
                                out[(oc * oh + oy) * ow + ox] = thresholds[oc].fires(acc);
                            }
                        }
                    }
                    dims = (od, oh, ow);
                    bits = out;
                    if *pool {
                        let (nb, nd) = or_pool(&bits, dims);
                        bits = nb;
                        dims = nd;
                    }
                }
                HwStage::BinFc {
                    weights,
                    thresholds,
                } => {
                    let x = BitVec::from_bools(&bits);
                    let acc = weights.xnor_matvec(&x);
                    bits = acc
                        .iter()
                        .zip(thresholds)
                        .map(|(&a, t)| t.fires(a as i64))
                        .collect();
                    dims = (bits.len(), 1, 1);
                }
                HwStage::OutputFc { weights } => {
                    let x = BitVec::from_bools(&bits);
                    let acc = weights.xnor_matvec(&x);
                    scores = Some(
                        acc.into_iter()
                            .take(self.topology.classes())
                            .map(i64::from)
                            .collect(),
                    );
                }
            }
        }
        scores.ok_or_else(|| ShapeError::new("HardwareBnn::infer_image", "no output engine"))
    }

    /// Classifies one image (argmax of the integer scores, first index
    /// on ties).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the image does not match the topology.
    pub fn classify(&self, image: &Tensor) -> Result<usize, ShapeError> {
        let scores = self.infer_image(image)?;
        let mut best = 0;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Runs a `[N, C, H, W]` batch, returning `[N, classes]` scores as
    /// floats (for the DMU, which consumes BNN class scores).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the batch does not match the topology.
    pub fn infer_batch(&self, images: &Tensor) -> Result<Tensor, ShapeError> {
        let n = images.shape().dim(0);
        let classes = self.topology.classes();
        let mut data = Vec::with_capacity(n * classes);
        for i in 0..n {
            let img = images.batch_item(i)?;
            let scores = self.infer_image(&img)?;
            data.extend(scores.into_iter().map(|s| s as f32));
        }
        Tensor::from_vec(Shape::matrix(n, classes), data)
    }
}

/// 2×2 OR pooling over binary activations (`max` of ±1 values).
fn or_pool(bits: &[bool], (c, h, w): (usize, usize, usize)) -> (Vec<bool>, (usize, usize, usize)) {
    let (oh, ow) = (h / 2, w / 2);
    let mut out = vec![false; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut v = false;
                for ky in 0..2 {
                    for kx in 0..2 {
                        v |= bits[(ch * h + 2 * oy + ky) * w + 2 * ox + kx];
                    }
                }
                out[(ch * oh + oy) * ow + ox] = v;
            }
        }
    }
    (out, (c, oh, ow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_nn::train::Model;
    use mp_tensor::init::TensorRng;

    fn trained_tiny(seed: u64) -> BnnClassifier {
        use mp_nn::Mode;
        let mut rng = TensorRng::seed_from(seed);
        let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
        // A few training-mode forwards to populate batch-norm statistics.
        for _ in 0..4 {
            let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        bnn
    }

    #[test]
    fn threshold_fold_semantics() {
        // Positive gamma: fires when acc >= ceil(t).
        let t = HwThreshold::fold(2.3, false, 1.0);
        assert!(!t.fires(2));
        assert!(t.fires(3));
        // Negative gamma: fires when acc <= floor(t).
        let t = HwThreshold::fold(2.3, true, 1.0);
        assert!(t.fires(2));
        assert!(!t.fires(3));
        // Integer threshold boundary is inclusive for >=.
        let t = HwThreshold::fold(2.0, false, 1.0);
        assert!(t.fires(2));
    }

    #[test]
    fn threshold_fold_handles_degenerate_gamma() {
        let always = HwThreshold::fold(f32::NEG_INFINITY, false, 1.0);
        assert!(always.fires(i64::MIN + 1) && always.fires(0));
        let never = HwThreshold::fold(f32::INFINITY, false, 1.0);
        assert!(!never.fires(i64::MAX - 1) && !never.fires(0));
    }

    #[test]
    fn quantize_pixel_grid() {
        assert_eq!(HardwareBnn::quantize_pixel(0.0), 0);
        assert_eq!(HardwareBnn::quantize_pixel(1.0), 64);
        assert_eq!(HardwareBnn::quantize_pixel(-1.0), -64);
        assert_eq!(HardwareBnn::quantize_pixel(100.0), 128); // clamped to ±2
        assert_eq!(HardwareBnn::quantize_pixel(-100.0), -128);
    }

    #[test]
    fn or_pool_is_max_of_signs() {
        let bits = vec![
            false, false, true, false, // 2×4 plane, channel 0
            false, false, false, false,
        ];
        let (out, dims) = or_pool(&bits, (1, 2, 4));
        assert_eq!(dims, (1, 1, 2));
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    fn export_and_infer_shapes() {
        let bnn = trained_tiny(70);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(71);
        let img = rng.normal(Shape::nchw(1, 3, 8, 8), 0.0, 1.0);
        let scores = hw.infer_image(&img).unwrap();
        assert_eq!(scores.len(), 10);
        let batch = rng.normal(Shape::nchw(3, 3, 8, 8), 0.0, 1.0);
        let t = hw.infer_batch(&batch).unwrap();
        assert_eq!(t.shape().dims(), &[3, 10]);
    }

    #[test]
    fn hardware_matches_float_classifier() {
        // On inputs already on the fixed-point grid, the first stage is
        // exact, so hardware and float paths must agree (up to f32
        // borderline rounding in thresholds, which is measure-zero here).
        let mut bnn = trained_tiny(72);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(73);
        let n = 24;
        let raw = rng.normal(Shape::nchw(n, 3, 8, 8), 0.0, 1.0);
        let quantised = raw.map(|x| HardwareBnn::quantize_pixel(x) as f32 / INPUT_QUANT_SCALE);
        let float_scores = bnn.infer(&quantised).unwrap();
        let float_preds = mp_nn::Network::argmax_rows(&float_scores).unwrap();
        let mut agree = 0;
        #[allow(clippy::needless_range_loop)] // i selects both image and prediction
        for i in 0..n {
            let img = quantised.batch_item(i).unwrap();
            let hw_pred = hw.classify(&img).unwrap();
            if hw_pred == float_preds[i] {
                agree += 1;
            }
        }
        assert!(
            agree >= n - 1,
            "hardware and float paths disagree on {}/{n} images",
            n - agree
        );
    }

    #[test]
    fn hardware_scores_match_float_scores_exactly_on_grid_inputs() {
        let mut bnn = trained_tiny(74);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(75);
        let raw = rng.normal(Shape::nchw(4, 3, 8, 8), 0.0, 1.0);
        let quantised = raw.map(|x| HardwareBnn::quantize_pixel(x) as f32 / INPUT_QUANT_SCALE);
        // Float classifier scores are scaled by 1/sqrt(fan_in); undo it.
        let float_scores = bnn.infer(&quantised).unwrap();
        let fan_in = bnn.topology().fc_sizes()[bnn.topology().fc_sizes().len() - 2] as f32;
        let mut exact = 0;
        let total = 4 * 10;
        for i in 0..4 {
            let img = quantised.batch_item(i).unwrap();
            let hw_scores = hw.infer_image(&img).unwrap();
            for (j, &s) in hw_scores.iter().enumerate() {
                let f = float_scores.as_slice()[i * 10 + j] * fan_in.sqrt();
                if (f - s as f32).abs() < 0.5 {
                    exact += 1;
                }
            }
        }
        assert!(
            exact as f32 >= total as f32 * 0.9,
            "only {exact}/{total} scores match"
        );
    }

    #[test]
    fn rejects_wrong_image_shape() {
        let bnn = trained_tiny(76);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        assert!(hw
            .infer_image(&Tensor::zeros(Shape::nchw(1, 3, 16, 16)))
            .is_err());
        assert!(hw
            .infer_image(&Tensor::zeros(Shape::nchw(2, 3, 8, 8)))
            .is_err());
    }

    #[test]
    fn output_parity_matches_xnor_arithmetic() {
        // Final engine scores are ±1 dots of fan_in entries: parity fixed.
        let bnn = trained_tiny(77);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(78);
        let img = rng.normal(Shape::nchw(1, 3, 8, 8), 0.0, 1.0);
        let scores = hw.infer_image(&img).unwrap();
        let fan_in = bnn.topology().fc_sizes()[bnn.topology().fc_sizes().len() - 2] as i64;
        for &s in &scores {
            assert_eq!((s - fan_in).rem_euclid(2), 0, "score {s} has wrong parity");
        }
    }
}
