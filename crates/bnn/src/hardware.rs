//! The folded hardware view of a trained BNN.
//!
//! [`HardwareBnn`] is functionally what FINN synthesises onto the FPGA:
//! bit-packed ±1 weight memories, integer threshold memories (each
//! batch-norm + sign pair folded into one comparison, paper §II), an
//! 8-bit fixed-point first stage, OR-based max-pooling over binary
//! activations, and a final accumulate-only engine whose integer scores
//! feed the DMU. `mp-fpga` attaches timing and memory models to this
//! structure; here it executes functionally, bit-exactly.

use serde::{Deserialize, Serialize};

use mp_obs::{now_ns, Recorder};
use mp_tensor::{Parallelism, Shape, ShapeError, Tensor};

use crate::bits::{BitMatrix, BitVec};
use crate::classifier::{BnnClassifier, Stage};
use crate::{EngineSpec, FinnTopology};

/// Fixed-point scale of the first engine's pixel inputs (Q2.6: range ±2,
/// 1/64 resolution — the paper's first stage uses wider 24-bit threshold
/// words to absorb this scaling).
pub const INPUT_QUANT_SCALE: f32 = 64.0;

/// Clamp range of first-stage pixel inputs.
pub const INPUT_QUANT_RANGE: f32 = 2.0;

/// A folded threshold: the integer comparison that replaces
/// `sign(batch_norm(acc))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwThreshold {
    /// Comparison bound on the integer accumulation.
    pub bound: i64,
    /// `false`: activation fires when `acc >= bound` (positive γ);
    /// `true`: fires when `acc <= bound` (negative γ).
    pub negate: bool,
}

impl HwThreshold {
    /// Folds a float threshold `(t, negate)` at integer `scale`.
    pub fn fold(t: f32, negate: bool, scale: f32) -> Self {
        let scaled = t * scale;
        if scaled.is_infinite() || scaled.is_nan() {
            // Degenerate batch-norm (γ = 0): constant activation.
            let bound = if (scaled < 0.0) != negate {
                i64::MIN // always fires for >=; never for <=
            } else {
                i64::MAX
            };
            return Self { bound, negate };
        }
        let bound = if negate {
            scaled.floor() as i64
        } else {
            scaled.ceil() as i64
        };
        Self { bound, negate }
    }

    /// Evaluates the activation for an integer accumulation.
    pub fn fires(&self, acc: i64) -> bool {
        if self.negate {
            acc <= self.bound
        } else {
            acc >= self.bound
        }
    }
}

/// Observed accumulator extremes of one engine during a traced
/// inference ([`HardwareBnn::infer_image_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccRange {
    /// Smallest accumulation seen.
    pub min: i64,
    /// Largest accumulation seen.
    pub max: i64,
}

impl AccRange {
    /// The empty range (`min > max`), before any observation.
    pub fn empty() -> Self {
        Self {
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// Whether no accumulation was observed.
    pub fn is_empty(&self) -> bool {
        self.min > self.max
    }

    /// Widens the range to include `acc`.
    pub fn observe(&mut self, acc: i64) {
        self.min = self.min.min(acc);
        self.max = self.max.max(acc);
    }

    /// Merges another observed range into this one.
    pub fn merge(&mut self, other: AccRange) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Structural facts about one synthesised engine, exposed for static
/// analysis (mp-verify) without handing out the weight memories.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Weight-matrix columns: the engine's accumulation fan-in.
    pub fan_in: usize,
    /// Weight-matrix rows: output channels (or features).
    pub out_channels: usize,
    /// Fixed-point first stage (Q2.6 pixels) rather than ±1 inputs.
    pub first: bool,
    /// Accumulate-only output stage (no thresholds by design).
    pub output: bool,
    /// Whether a 2×2 OR-pool follows the engine.
    pub pool: bool,
    /// Folded thresholds, one per output channel (empty for the output
    /// stage).
    pub thresholds: Vec<HwThreshold>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum HwStage {
    /// First engine: fixed-point pixels × binary weights.
    FirstConv {
        weights: BitMatrix,
        thresholds: Vec<HwThreshold>,
        in_channels: usize,
        kernel: usize,
        pool: bool,
    },
    /// Inner binary convolution engine.
    BinConv {
        weights: BitMatrix,
        thresholds: Vec<HwThreshold>,
        in_channels: usize,
        kernel: usize,
        pool: bool,
    },
    /// Inner binary FC engine.
    BinFc {
        weights: BitMatrix,
        thresholds: Vec<HwThreshold>,
    },
    /// Final accumulate-only FC engine.
    OutputFc { weights: BitMatrix },
}

/// Bit-exact functional model of the synthesised FINN accelerator.
///
/// # Example
///
/// ```
/// use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
/// use mp_tensor::{init::TensorRng, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut rng = TensorRng::seed_from(0);
/// let bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng)?;
/// let hw = HardwareBnn::from_classifier(&bnn)?;
/// let scores = hw.infer_image(&Tensor::zeros(Shape::nchw(1, 3, 8, 8)))?;
/// assert_eq!(scores.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HardwareBnn {
    topology: FinnTopology,
    stages: Vec<HwStage>,
}

impl HardwareBnn {
    /// Folds a trained [`BnnClassifier`] into its hardware form.
    ///
    /// Batch-norm running statistics become integer thresholds; latent
    /// weights become bit-packed signs.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the classifier is structurally
    /// inconsistent (which indicates a bug).
    pub fn from_classifier(classifier: &BnnClassifier) -> Result<Self, ShapeError> {
        if classifier.activation_bits() != 1 {
            return Err(ShapeError::new(
                "HardwareBnn::from_classifier",
                format!(
                    "only fully-binarised classifiers fold to the XNOR datapath; \
                     this one has {}-bit activations (the area of wider datapaths \
                     is modelled by mp-fpga's partial-binarisation support)",
                    classifier.activation_bits()
                ),
            ));
        }
        let mut stages = Vec::new();
        let mut first = true;
        for stage in &classifier.stages {
            match stage {
                Stage::Conv { conv, bn, pool, .. } => {
                    let wb = conv.binary_weight();
                    let weights = BitMatrix::from_signs(
                        conv.out_channels(),
                        wb.shape().dim(1),
                        wb.as_slice(),
                    );
                    let scale = if first { INPUT_QUANT_SCALE } else { 1.0 };
                    let thresholds = bn
                        .fold_threshold()
                        .into_iter()
                        .map(|(t, neg)| HwThreshold::fold(t, neg, scale))
                        .collect();
                    stages.push(if first {
                        HwStage::FirstConv {
                            weights,
                            thresholds,
                            in_channels: conv.in_channels(),
                            kernel: conv.geometry().kernel,
                            pool: pool.is_some(),
                        }
                    } else {
                        HwStage::BinConv {
                            weights,
                            thresholds,
                            in_channels: conv.in_channels(),
                            kernel: conv.geometry().kernel,
                            pool: pool.is_some(),
                        }
                    });
                    first = false;
                }
                Stage::Fc { fc, bn, .. } => {
                    let wb = fc.binary_weight();
                    let weights =
                        BitMatrix::from_signs(fc.out_features(), fc.in_features(), wb.as_slice());
                    let thresholds = bn
                        .fold_threshold()
                        .into_iter()
                        .map(|(t, neg)| HwThreshold::fold(t, neg, 1.0))
                        .collect();
                    stages.push(HwStage::BinFc {
                        weights,
                        thresholds,
                    });
                }
                Stage::Output { fc, .. } => {
                    let wb = fc.binary_weight();
                    let weights =
                        BitMatrix::from_signs(fc.out_features(), fc.in_features(), wb.as_slice());
                    stages.push(HwStage::OutputFc { weights });
                }
                Stage::Flatten { .. } => {}
            }
        }
        Ok(Self {
            topology: classifier.topology().clone(),
            stages,
        })
    }

    /// The network topology.
    pub fn topology(&self) -> &FinnTopology {
        &self.topology
    }

    /// Engine dimension records (for the FPGA timing/memory model).
    pub fn engines(&self) -> Vec<EngineSpec> {
        self.topology.engines()
    }

    /// Per-engine structural summaries for static analysis: fan-in,
    /// output width, threshold tables, and stage role.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        self.stages
            .iter()
            .map(|stage| match stage {
                HwStage::FirstConv {
                    weights,
                    thresholds,
                    pool,
                    ..
                } => StageSummary {
                    fan_in: weights.num_cols(),
                    out_channels: weights.num_rows(),
                    first: true,
                    output: false,
                    pool: *pool,
                    thresholds: thresholds.clone(),
                },
                HwStage::BinConv {
                    weights,
                    thresholds,
                    pool,
                    ..
                } => StageSummary {
                    fan_in: weights.num_cols(),
                    out_channels: weights.num_rows(),
                    first: false,
                    output: false,
                    pool: *pool,
                    thresholds: thresholds.clone(),
                },
                HwStage::BinFc {
                    weights,
                    thresholds,
                } => StageSummary {
                    fan_in: weights.num_cols(),
                    out_channels: weights.num_rows(),
                    first: false,
                    output: false,
                    pool: false,
                    thresholds: thresholds.clone(),
                },
                HwStage::OutputFc { weights } => StageSummary {
                    fan_in: weights.num_cols(),
                    out_channels: weights.num_rows(),
                    first: false,
                    output: true,
                    pool: false,
                    thresholds: Vec::new(),
                },
            })
            .collect()
    }

    /// Quantises one pixel to the first engine's fixed-point grid.
    pub fn quantize_pixel(x: f32) -> i64 {
        (x.clamp(-INPUT_QUANT_RANGE, INPUT_QUANT_RANGE) * INPUT_QUANT_SCALE).round() as i64
    }

    /// Runs one `[1, C, H, W]` image through the accelerator, returning
    /// the `classes` integer scores of the final engine.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the image does not match the topology.
    pub fn infer_image(&self, image: &Tensor) -> Result<Vec<i64>, ShapeError> {
        self.infer_image_obs(image, &mut |_, _| {})
    }

    /// [`Self::infer_image`] with per-engine accumulator extremes
    /// recorded: returns the scores plus one observed [`AccRange`] per
    /// engine. The soundness property tests compare these runtime
    /// ranges against mp-verify's static intervals.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the image does not match the topology.
    pub fn infer_image_traced(
        &self,
        image: &Tensor,
    ) -> Result<(Vec<i64>, Vec<AccRange>), ShapeError> {
        let mut ranges = vec![AccRange::empty(); self.stages.len()];
        let scores = self.infer_image_obs(image, &mut |stage, acc| ranges[stage].observe(acc))?;
        Ok((scores, ranges))
    }

    /// Reference inference with an observer called on every integer
    /// accumulation `(stage index, acc)` before thresholding. The no-op
    /// observer of [`Self::infer_image`] monomorphises away.
    fn infer_image_obs<F: FnMut(usize, i64)>(
        &self,
        image: &Tensor,
        obs: &mut F,
    ) -> Result<Vec<i64>, ShapeError> {
        let want = Shape::nchw(
            1,
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        if image.shape() != &want {
            return Err(ShapeError::new(
                "HardwareBnn::infer_image",
                format!("expected {want}, got {}", image.shape()),
            ));
        }
        let mut bits: Vec<bool> = Vec::new();
        let mut dims = (
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        let mut scores: Option<Vec<i64>> = None;
        for (si, stage) in self.stages.iter().enumerate() {
            match stage {
                HwStage::FirstConv {
                    weights,
                    thresholds,
                    in_channels,
                    kernel,
                    pool,
                } => {
                    let (c, h, w) = dims;
                    debug_assert_eq!(c, *in_channels);
                    let k = *kernel;
                    let (oh, ow) = (h - k + 1, w - k + 1);
                    let od = weights.num_rows();
                    // Quantise pixels once.
                    let q: Vec<i64> = image.iter().map(|&x| Self::quantize_pixel(x)).collect();
                    let mut out = vec![false; od * oh * ow];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            // Gather the fixed-point patch in im2col row order.
                            let mut patch = Vec::with_capacity(c * k * k);
                            for ch in 0..c {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        patch.push(q[(ch * h + oy + ky) * w + ox + kx]);
                                    }
                                }
                            }
                            for oc in 0..od {
                                let row = weights.row(oc);
                                let mut acc = 0i64;
                                for (i, &x) in patch.iter().enumerate() {
                                    acc += if row.get(i) { x } else { -x };
                                }
                                obs(si, acc);
                                out[(oc * oh + oy) * ow + ox] = thresholds[oc].fires(acc);
                            }
                        }
                    }
                    dims = (od, oh, ow);
                    bits = out;
                    if *pool {
                        let (nb, nd) = or_pool(&bits, dims);
                        bits = nb;
                        dims = nd;
                    }
                }
                HwStage::BinConv {
                    weights,
                    thresholds,
                    in_channels,
                    kernel,
                    pool,
                } => {
                    let (c, h, w) = dims;
                    debug_assert_eq!(c, *in_channels);
                    let k = *kernel;
                    let (oh, ow) = (h - k + 1, w - k + 1);
                    let od = weights.num_rows();
                    let mut out = vec![false; od * oh * ow];
                    let mut patch = BitVec::zeros(c * k * k);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut idx = 0;
                            for ch in 0..c {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        patch.set(idx, bits[(ch * h + oy + ky) * w + ox + kx]);
                                        idx += 1;
                                    }
                                }
                            }
                            for oc in 0..od {
                                let acc = weights.row(oc).xnor_dot(&patch) as i64;
                                obs(si, acc);
                                out[(oc * oh + oy) * ow + ox] = thresholds[oc].fires(acc);
                            }
                        }
                    }
                    dims = (od, oh, ow);
                    bits = out;
                    if *pool {
                        let (nb, nd) = or_pool(&bits, dims);
                        bits = nb;
                        dims = nd;
                    }
                }
                HwStage::BinFc {
                    weights,
                    thresholds,
                } => {
                    let x = BitVec::from_bools(&bits);
                    let acc = weights.xnor_matvec(&x);
                    bits = acc
                        .iter()
                        .zip(thresholds)
                        .map(|(&a, t)| {
                            obs(si, a as i64);
                            t.fires(a as i64)
                        })
                        .collect();
                    dims = (bits.len(), 1, 1);
                }
                HwStage::OutputFc { weights } => {
                    let x = BitVec::from_bools(&bits);
                    let acc = weights.xnor_matvec(&x);
                    for &a in &acc {
                        obs(si, i64::from(a));
                    }
                    scores = Some(
                        acc.into_iter()
                            .take(self.topology.classes())
                            .map(i64::from)
                            .collect(),
                    );
                }
            }
        }
        scores.ok_or_else(|| ShapeError::new("HardwareBnn::infer_image", "no output engine"))
    }

    /// Classifies one image (argmax of the integer scores, first index
    /// on ties).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the image does not match the topology.
    pub fn classify(&self, image: &Tensor) -> Result<usize, ShapeError> {
        let scores = self.infer_image(image)?;
        let mut best = 0;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Runs a `[N, C, H, W]` batch, returning `[N, classes]` scores as
    /// floats (for the DMU, which consumes BNN class scores).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the batch does not match the topology.
    pub fn infer_batch(&self, images: &Tensor) -> Result<Tensor, ShapeError> {
        let n = images.shape().dim(0);
        let classes = self.topology.classes();
        let mut data = Vec::with_capacity(n * classes);
        for i in 0..n {
            let img = images.batch_item(i)?;
            let scores = self.infer_image(&img)?;
            data.extend(scores.into_iter().map(|s| s as f32));
        }
        Tensor::from_vec(Shape::matrix(n, classes), data)
    }

    /// Optimised batched inference, bit-identical to [`Self::infer_batch`],
    /// sharding images across `par` scoped worker threads.
    ///
    /// Per shard, scratch buffers are reused across images and the first
    /// engine's weight bits are unpacked once into ±1 integers, so the
    /// per-pixel inner loop is a branchless multiply–accumulate instead
    /// of a bit-test per weight. Integer arithmetic in the same order as
    /// the reference path keeps every accumulation exact.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the batch does not match the topology.
    pub fn infer_batch_with(
        &self,
        images: &Tensor,
        par: Parallelism,
    ) -> Result<Tensor, ShapeError> {
        self.infer_batch_obs(images, par, &mp_obs::NULL_RECORDER)
    }

    /// [`Self::infer_batch_with`] with per-stage wall-time spans recorded
    /// against `rec` (`bnn.stage<i>.<kind>`, see `mp_obs::schema`).
    ///
    /// Recording is passive — scores are bit-identical to the
    /// uninstrumented path — and with a disabled recorder the overhead
    /// is one branch per stage boundary (no clock reads).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the batch does not match the topology.
    pub fn infer_batch_obs(
        &self,
        images: &Tensor,
        par: Parallelism,
        rec: &dyn Recorder,
    ) -> Result<Tensor, ShapeError> {
        let shape = images.shape();
        let (c, h, w) = (
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        if shape.rank() != 4 || (shape.dim(1), shape.dim(2), shape.dim(3)) != (c, h, w) {
            return Err(ShapeError::new(
                "HardwareBnn::infer_batch_with",
                format!("expected [N,{c},{h},{w}] batch, got {shape}"),
            ));
        }
        let n = shape.dim(0);
        let classes = self.topology.classes();
        let image_len = c * h * w;
        let xv = images.as_slice();
        let names;
        let obs_ref: Option<(&dyn Recorder, &[String])> = if rec.enabled() {
            names = self.stage_span_names();
            Some((rec, names.as_slice()))
        } else {
            None
        };
        let chunks = par.chunks(n);
        if chunks.len() <= 1 {
            let mut ctx = HwInferCtx::default();
            let mut data = Vec::with_capacity(n * classes);
            self.infer_range_inner(xv, &mut ctx, obs_ref, &mut data)?;
            return Tensor::from_vec(Shape::matrix(n, classes), data);
        }
        let parts: Vec<Result<Vec<f32>, ShapeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(start, end)| {
                    let slice = &xv[start * image_len..end * image_len];
                    scope.spawn(move || {
                        let mut ctx = HwInferCtx::default();
                        let mut part = Vec::new();
                        self.infer_range_inner(slice, &mut ctx, obs_ref, &mut part)?;
                        Ok(part)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("BNN inference worker panicked"))
                .collect()
        });
        let mut data = Vec::with_capacity(n * classes);
        for part in parts {
            data.extend(part?);
        }
        Tensor::from_vec(Shape::matrix(n, classes), data)
    }

    /// Creates a reusable single-thread block-inference stream: the
    /// producer side of the overlapped stage-graph executor. See
    /// [`BnnBlockStream`].
    pub fn block_stream(&self) -> BnnBlockStream<'_> {
        BnnBlockStream {
            hw: self,
            ctx: HwInferCtx::default(),
            names: self.stage_span_names(),
        }
    }

    /// Stable per-stage span names: `bnn.stage<i>.<kind>`.
    fn stage_span_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, stage)| {
                let kind = match stage {
                    HwStage::FirstConv { .. } => "first_conv",
                    HwStage::BinConv { .. } => "bin_conv",
                    HwStage::BinFc { .. } => "bin_fc",
                    HwStage::OutputFc { .. } => "output_fc",
                };
                format!("bnn.stage{i}.{kind}")
            })
            .collect()
    }

    /// Builds the first engine's tap-offset tables: the ±1 dot of a
    /// patch equals `2 * (sum at positive-weight taps) - (sum over all
    /// taps)`, so each output channel only needs its positive-tap
    /// offsets into the quantised image plane — no patch gather, no
    /// multiplies. Depends only on the topology, so a [`BnnBlockStream`]
    /// builds it once and reuses it across every block.
    fn build_first_conv_plan(&self, plan: &mut FirstConvPlan) {
        let (h, w) = (self.topology.height(), self.topology.width());
        if let Some(HwStage::FirstConv {
            weights,
            in_channels,
            kernel,
            ..
        }) = self.stages.first()
        {
            let (c, k) = (*in_channels, *kernel);
            for ch in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        plan.all.push((ch * h * w + ky * w + kx) as u32);
                    }
                }
            }
            plan.pos_start.push(0);
            for r in 0..weights.num_rows() {
                let row = weights.row(r);
                for (i, &d) in plan.all.iter().enumerate() {
                    if row.get(i) {
                        plan.pos.push(d);
                    }
                }
                plan.pos_start.push(plan.pos.len() as u32);
            }
        }
    }

    /// Runs a contiguous run of images (raw `C·H·W` planes) through the
    /// accelerator, appending `classes` float scores per image to `out`.
    /// All scratch state (tap plan, activation planes, lane buffers)
    /// lives in `ctx`, so repeated calls on one context are
    /// allocation-free in steady state. With `obs` present, every
    /// stage's wall time is recorded as a span (the names indexed by
    /// global stage position).
    fn infer_range_inner(
        &self,
        images: &[f32],
        ctx: &mut HwInferCtx,
        obs: Option<(&dyn Recorder, &[String])>,
        out: &mut Vec<f32>,
    ) -> Result<(), ShapeError> {
        let (h, w) = (self.topology.height(), self.topology.width());
        let image_len = self.topology.channels() * h * w;
        let n = images.len() / image_len;
        if !ctx.plan_ready {
            self.build_first_conv_plan(&mut ctx.plan);
            ctx.plan_ready = true;
        }
        let HwInferCtx {
            plan,
            scratch,
            qt,
            bits_block,
            ..
        } = ctx;
        out.reserve(n * self.topology.classes());
        if let Some(HwStage::FirstConv {
            weights,
            thresholds,
            in_channels,
            kernel,
            pool,
        }) = self.stages.first()
        {
            let (c, k) = (*in_channels, *kernel);
            let (oh, ow) = (h - k + 1, w - k + 1);
            let od = weights.num_rows();
            let plane = od * oh * ow;
            for block in images.chunks(IMG_BLOCK * image_len) {
                let b = block.len() / image_len;
                let t0 = obs.map(|_| now_ns());
                self.first_conv_block(thresholds, plan, block, (c, h, w, k, od), qt, bits_block);
                // One span per block for the first engine's compute…
                if let (Some((rec, names)), Some(start)) = (obs, t0) {
                    rec.record_span(&names[0], start, now_ns());
                }
                for i in 0..b {
                    // …plus one per image for its plane copy and fused
                    // OR-pool, so the stage-0 total tracks wall time.
                    let tc = obs.map(|_| now_ns());
                    let mut dims = (od, oh, ow);
                    scratch.bits.clear();
                    scratch
                        .bits
                        .extend_from_slice(&bits_block[i * plane..(i + 1) * plane]);
                    if *pool {
                        dims = or_pool_into(&scratch.bits, dims, &mut scratch.next);
                        std::mem::swap(&mut scratch.bits, &mut scratch.next);
                    }
                    if let (Some((rec, names)), Some(start)) = (obs, tc) {
                        rec.record_span(&names[0], start, now_ns());
                    }
                    self.infer_tail(&self.stages[1..], dims, scratch, out, obs, 1)?;
                }
            }
        } else {
            // No leading fixed-point engine (not producible by
            // `from_classifier`, which always folds the first convolution
            // into a `FirstConv`): run the remaining engines directly.
            let dims = (self.topology.channels(), h, w);
            for _ in 0..n {
                scratch.bits.clear();
                self.infer_tail(&self.stages, dims, scratch, out, obs, 0)?;
            }
        }
        Ok(())
    }

    /// First-engine pass over a block of `b <= IMG_BLOCK` images.
    ///
    /// The quantised planes are stored transposed (`qt[pixel][image]`),
    /// so each tap of the `2 * pos_sum - total` dot (see
    /// [`FirstConvPlan`]) is one contiguous `IMG_BLOCK`-lane integer add
    /// that the compiler vectorises across images. The i32 lanes are
    /// exact: |q| <= 128, so every partial sum is bounded by
    /// `fan_in * 128`, far inside i32 range — bit-identical to the i64
    /// reference path.
    fn first_conv_block(
        &self,
        thresholds: &[HwThreshold],
        plan: &FirstConvPlan,
        images: &[f32],
        (c, h, w, k, od): (usize, usize, usize, usize, usize),
        qt: &mut Vec<i32>,
        bits_block: &mut Vec<bool>,
    ) {
        let (oh, ow) = (h - k + 1, w - k + 1);
        let image_len = c * h * w;
        let b = images.len() / image_len;
        let plane = od * oh * ow;
        let fan_in = c * k * k;
        assert!(fan_in <= (i32::MAX / 256) as usize);
        debug_assert_eq!(plan.all.len(), fan_in);
        qt.clear();
        qt.resize(image_len * IMG_BLOCK, 0);
        for i in 0..b {
            let src = &images[i * image_len..(i + 1) * image_len];
            for (p, &x) in src.iter().enumerate() {
                qt[p * IMG_BLOCK + i] = Self::quantize_pixel(x) as i32;
            }
        }
        bits_block.clear();
        bits_block.resize(b * plane, false);
        for oy in 0..oh {
            for ox in 0..ow {
                let p0 = oy * w + ox;
                let mut total = [0i32; IMG_BLOCK];
                for &d in &plan.all {
                    let src = &qt[(p0 + d as usize) * IMG_BLOCK..][..IMG_BLOCK];
                    for (t, &x) in total.iter_mut().zip(src) {
                        *t += x;
                    }
                }
                for (oc, t) in thresholds.iter().enumerate().take(od) {
                    let taps =
                        &plan.pos[plan.pos_start[oc] as usize..plan.pos_start[oc + 1] as usize];
                    let mut pos_sum = [0i32; IMG_BLOCK];
                    for &d in taps {
                        let src = &qt[(p0 + d as usize) * IMG_BLOCK..][..IMG_BLOCK];
                        for (s, &x) in pos_sum.iter_mut().zip(src) {
                            *s += x;
                        }
                    }
                    let out_idx = (oc * oh + oy) * ow + ox;
                    for i in 0..b {
                        let dot = 2 * pos_sum[i] - total[i];
                        bits_block[i * plane + out_idx] = t.fires(i64::from(dot));
                    }
                }
            }
        }
    }

    /// Runs the engines after the first through one image's binary
    /// activations (`scratch.bits`), mirroring [`Self::infer_image`]
    /// accumulation-for-accumulation (so results are bit-identical)
    /// while reusing `scratch` buffers instead of allocating per pixel.
    fn infer_tail(
        &self,
        stages: &[HwStage],
        mut dims: (usize, usize, usize),
        scratch: &mut HwScratch,
        scores_out: &mut Vec<f32>,
        obs: Option<(&dyn Recorder, &[String])>,
        base: usize,
    ) -> Result<(), ShapeError> {
        let HwScratch {
            bits,
            next,
            row_words,
            patch_words,
            patch_bits,
            acc,
        } = scratch;
        let mut scored = false;
        for (li, stage) in stages.iter().enumerate() {
            let t0 = obs.map(|_| now_ns());
            match stage {
                HwStage::FirstConv { .. } => {
                    return Err(ShapeError::new(
                        "HardwareBnn::infer_batch",
                        "fixed-point engine after the first stage",
                    ));
                }
                HwStage::BinConv {
                    weights,
                    thresholds,
                    in_channels,
                    kernel,
                    pool,
                } => {
                    let (c, h, w) = dims;
                    debug_assert_eq!(c, *in_channels);
                    let k = *kernel;
                    let (oh, ow) = (h - k + 1, w - k + 1);
                    let od = weights.num_rows();
                    let fan_in = c * k * k;
                    // Bit-plane fast path: pack each activation row into one
                    // u64 word once, then assemble every im2col patch with
                    // k-bit shift/mask segments instead of gathering and
                    // re-packing `fan_in` bools per output position. The
                    // patch words carry bits in the exact (ch, ky, kx) order
                    // of the reference path, so the XNOR dots are identical.
                    assert!(w <= 64 && k <= w, "activation rows wider than one word");
                    row_words.clear();
                    row_words.resize(c * h, 0);
                    for (row, word) in row_words.iter_mut().enumerate() {
                        let src = &bits[row * w..(row + 1) * w];
                        let mut packed = 0u64;
                        for (x, &b) in src.iter().enumerate() {
                            packed |= u64::from(b) << x;
                        }
                        *word = packed;
                    }
                    patch_words.clear();
                    patch_words.resize(fan_in.div_ceil(64), 0);
                    let seg_mask = (1u64 << k) - 1;
                    next.clear();
                    next.resize(od * oh * ow, false);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            patch_words.iter_mut().for_each(|w| *w = 0);
                            let mut off = 0;
                            for ch in 0..c {
                                for ky in 0..k {
                                    let seg = (row_words[ch * h + oy + ky] >> ox) & seg_mask;
                                    let (wi, sh) = (off / 64, off % 64);
                                    patch_words[wi] |= seg << sh;
                                    if sh + k > 64 {
                                        patch_words[wi + 1] |= seg >> (64 - sh);
                                    }
                                    off += k;
                                }
                            }
                            // Output channels four at a time: one traversal
                            // of the patch words feeds four weight rows
                            // (shared loads), with each lane's threshold
                            // comparison fused directly after its popcount.
                            let mut oc = 0;
                            while oc + 4 <= od {
                                let dots = crate::bits::xnor_dot_words_x4(
                                    [
                                        weights.row(oc).words(),
                                        weights.row(oc + 1).words(),
                                        weights.row(oc + 2).words(),
                                        weights.row(oc + 3).words(),
                                    ],
                                    patch_words,
                                    fan_in,
                                );
                                for (lane, dot) in dots.into_iter().enumerate() {
                                    next[((oc + lane) * oh + oy) * ow + ox] =
                                        thresholds[oc + lane].fires(i64::from(dot));
                                }
                                oc += 4;
                            }
                            while oc < od {
                                let dot = i64::from(crate::bits::xnor_dot_words(
                                    weights.row(oc).words(),
                                    patch_words,
                                    fan_in,
                                ));
                                next[(oc * oh + oy) * ow + ox] = thresholds[oc].fires(dot);
                                oc += 1;
                            }
                        }
                    }
                    dims = (od, oh, ow);
                    std::mem::swap(bits, next);
                    if *pool {
                        dims = or_pool_into(bits, dims, next);
                        std::mem::swap(bits, next);
                    }
                }
                HwStage::BinFc {
                    weights,
                    thresholds,
                } => {
                    patch_bits.refill_from_bools(bits);
                    // Threshold comparison fused into the accumulate loop:
                    // each ×4 popcount lane feeds its comparator directly,
                    // writing activation bools without the i32 accumulator
                    // round trip of the reference path.
                    next.clear();
                    next.reserve(weights.num_rows());
                    weights.xnor_matvec_for_each(patch_bits, |r, dot| {
                        next.push(thresholds[r].fires(i64::from(dot)));
                    });
                    std::mem::swap(bits, next);
                    dims = (bits.len(), 1, 1);
                }
                HwStage::OutputFc { weights } => {
                    patch_bits.refill_from_bools(bits);
                    weights.xnor_matvec_into(patch_bits, acc);
                    scores_out.extend(acc.iter().take(self.topology.classes()).map(|&s| s as f32));
                    scored = true;
                }
            }
            if let (Some((rec, names)), Some(start)) = (obs, t0) {
                rec.record_span(&names[base + li], start, now_ns());
            }
        }
        if scored {
            Ok(())
        } else {
            Err(ShapeError::new(
                "HardwareBnn::infer_batch",
                "no output engine",
            ))
        }
    }
}

/// How many images the first engine processes per SIMD block in
/// [`HardwareBnn::infer_batch_with`] (the lane count of its transposed
/// integer accumulators).
const IMG_BLOCK: usize = 8;

/// Per-run tap-offset tables for the first engine: the ±1 dot of a
/// patch is `2 * (sum at positive-weight taps) - (sum over all taps)`,
/// so each output channel is a sparse gather-sum over the quantised
/// image plane.
#[derive(Debug, Default)]
struct FirstConvPlan {
    /// Offsets of every patch tap relative to the window origin.
    all: Vec<u32>,
    /// Positive-weight tap offsets, concatenated per output channel.
    pos: Vec<u32>,
    /// Range bounds into `pos` per output channel (`od + 1` entries).
    pos_start: Vec<u32>,
}

/// Reusable per-thread scratch for [`HardwareBnn::infer_batch_with`].
#[derive(Debug)]
struct HwScratch {
    /// Current binary activation plane.
    bits: Vec<bool>,
    /// Next binary activation plane (swapped each stage).
    next: Vec<bool>,
    /// Activation rows bit-packed one word per row.
    row_words: Vec<u64>,
    /// One bit-packed im2col patch of binary activations.
    patch_words: Vec<u64>,
    /// Bit-packed FC input vector.
    patch_bits: BitVec,
    /// Integer accumulator row for the FC engines.
    acc: Vec<i32>,
}

impl Default for HwScratch {
    fn default() -> Self {
        Self {
            bits: Vec::new(),
            next: Vec::new(),
            row_words: Vec::new(),
            patch_words: Vec::new(),
            patch_bits: BitVec::zeros(0),
            acc: Vec::new(),
        }
    }
}

/// Reusable per-thread inference context: the first engine's tap plan
/// plus every scratch buffer. Built once per shard or [`BnnBlockStream`]
/// so steady-state block inference performs no heap allocation and never
/// rebuilds the plan.
#[derive(Debug, Default)]
struct HwInferCtx {
    plan: FirstConvPlan,
    plan_ready: bool,
    scratch: HwScratch,
    /// Transposed quantised pixel lanes (`qt[pixel][image]`).
    qt: Vec<i32>,
    /// First-engine output bits for the whole block.
    bits_block: Vec<bool>,
}

/// A reusable single-thread block-inference stream: the FPGA side of the
/// overlapped stage-graph executor (`Concurrency::Threaded`).
///
/// Holds the first engine's tap plan, the per-stage span names, and all
/// scratch buffers across calls, so inferring block after block of one
/// workload is allocation-free in steady state. Scores land in a
/// caller-owned buffer and are bit-identical per image to
/// [`HardwareBnn::infer_batch`] — batching never changes results.
pub struct BnnBlockStream<'a> {
    hw: &'a HardwareBnn,
    ctx: HwInferCtx,
    names: Vec<String>,
}

impl BnnBlockStream<'_> {
    /// Runs images `start..end` of a `[N, C, H, W]` batch through the
    /// accelerator, replacing the contents of `out` with
    /// `(end - start) * classes` float scores. With `rec` enabled,
    /// per-stage spans are recorded exactly as
    /// [`HardwareBnn::infer_batch_obs`] records them.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the batch does not match the topology
    /// or the range falls outside it.
    pub fn infer_block_into(
        &mut self,
        images: &Tensor,
        start: usize,
        end: usize,
        rec: &dyn Recorder,
        out: &mut Vec<f32>,
    ) -> Result<(), ShapeError> {
        let shape = images.shape();
        let topo = self.hw.topology();
        let (c, h, w) = (topo.channels(), topo.height(), topo.width());
        if shape.rank() != 4 || (shape.dim(1), shape.dim(2), shape.dim(3)) != (c, h, w) {
            return Err(ShapeError::new(
                "BnnBlockStream::infer_block_into",
                format!("expected [N,{c},{h},{w}] batch, got {shape}"),
            ));
        }
        let n = shape.dim(0);
        if start > end || end > n {
            return Err(ShapeError::new(
                "BnnBlockStream::infer_block_into",
                format!("image range {start}..{end} outside batch of {n}"),
            ));
        }
        let image_len = c * h * w;
        let obs_ref: Option<(&dyn Recorder, &[String])> = if rec.enabled() {
            Some((rec, self.names.as_slice()))
        } else {
            None
        };
        out.clear();
        let slice = &images.as_slice()[start * image_len..end * image_len];
        self.hw
            .infer_range_inner(slice, &mut self.ctx, obs_ref, out)
    }
}

/// 2×2 OR pooling over binary activations (`max` of ±1 values).
fn or_pool(bits: &[bool], dims: (usize, usize, usize)) -> (Vec<bool>, (usize, usize, usize)) {
    let mut out = Vec::new();
    let out_dims = or_pool_into(bits, dims, &mut out);
    (out, out_dims)
}

fn or_pool_into(
    bits: &[bool],
    (c, h, w): (usize, usize, usize),
    out: &mut Vec<bool>,
) -> (usize, usize, usize) {
    let (oh, ow) = (h / 2, w / 2);
    out.clear();
    out.resize(c * oh * ow, false);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut v = false;
                for ky in 0..2 {
                    for kx in 0..2 {
                        v |= bits[(ch * h + 2 * oy + ky) * w + 2 * ox + kx];
                    }
                }
                out[(ch * oh + oy) * ow + ox] = v;
            }
        }
    }
    (c, oh, ow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_nn::train::Model;
    use mp_tensor::init::TensorRng;

    fn trained_tiny(seed: u64) -> BnnClassifier {
        use mp_nn::Mode;
        let mut rng = TensorRng::seed_from(seed);
        let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
        // A few training-mode forwards to populate batch-norm statistics.
        for _ in 0..4 {
            let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        bnn
    }

    #[test]
    fn threshold_fold_semantics() {
        // Positive gamma: fires when acc >= ceil(t).
        let t = HwThreshold::fold(2.3, false, 1.0);
        assert!(!t.fires(2));
        assert!(t.fires(3));
        // Negative gamma: fires when acc <= floor(t).
        let t = HwThreshold::fold(2.3, true, 1.0);
        assert!(t.fires(2));
        assert!(!t.fires(3));
        // Integer threshold boundary is inclusive for >=.
        let t = HwThreshold::fold(2.0, false, 1.0);
        assert!(t.fires(2));
    }

    #[test]
    fn threshold_fold_handles_degenerate_gamma() {
        let always = HwThreshold::fold(f32::NEG_INFINITY, false, 1.0);
        assert!(always.fires(i64::MIN + 1) && always.fires(0));
        let never = HwThreshold::fold(f32::INFINITY, false, 1.0);
        assert!(!never.fires(i64::MAX - 1) && !never.fires(0));
    }

    #[test]
    fn quantize_pixel_grid() {
        assert_eq!(HardwareBnn::quantize_pixel(0.0), 0);
        assert_eq!(HardwareBnn::quantize_pixel(1.0), 64);
        assert_eq!(HardwareBnn::quantize_pixel(-1.0), -64);
        assert_eq!(HardwareBnn::quantize_pixel(100.0), 128); // clamped to ±2
        assert_eq!(HardwareBnn::quantize_pixel(-100.0), -128);
    }

    #[test]
    fn or_pool_is_max_of_signs() {
        let bits = vec![
            false, false, true, false, // 2×4 plane, channel 0
            false, false, false, false,
        ];
        let (out, dims) = or_pool(&bits, (1, 2, 4));
        assert_eq!(dims, (1, 1, 2));
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    fn export_and_infer_shapes() {
        let bnn = trained_tiny(70);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(71);
        let img = rng.normal(Shape::nchw(1, 3, 8, 8), 0.0, 1.0);
        let scores = hw.infer_image(&img).unwrap();
        assert_eq!(scores.len(), 10);
        let batch = rng.normal(Shape::nchw(3, 3, 8, 8), 0.0, 1.0);
        let t = hw.infer_batch(&batch).unwrap();
        assert_eq!(t.shape().dims(), &[3, 10]);
    }

    #[test]
    fn batched_path_is_bit_identical_to_reference_across_threads() {
        let bnn = trained_tiny(80);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(81);
        for n in [1usize, 4, 7] {
            let batch = rng.normal(Shape::nchw(n, 3, 8, 8), 0.0, 1.0);
            let reference = hw.infer_batch(&batch).unwrap();
            for threads in [1usize, 2, 5] {
                let got = hw
                    .infer_batch_with(&batch, mp_tensor::Parallelism::new(threads))
                    .unwrap();
                assert_eq!(reference.shape(), got.shape());
                assert_eq!(reference.as_slice(), got.as_slice());
            }
        }
    }

    #[test]
    fn block_stream_matches_infer_batch_across_splits() {
        let bnn = trained_tiny(80);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(84);
        let n = 21;
        let batch = rng.normal(Shape::nchw(n, 3, 8, 8), 0.0, 1.0);
        let reference = hw.infer_batch(&batch).unwrap();
        // One stream reused across every split: exercises plan + scratch
        // reuse across block sizes that straddle IMG_BLOCK and n.
        let mut stream = hw.block_stream();
        let mut scores = Vec::new();
        for block in [1usize, 3, IMG_BLOCK, 10, n, n + 5] {
            let mut got = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + block).min(n);
                stream
                    .infer_block_into(&batch, start, end, &mp_obs::NULL_RECORDER, &mut scores)
                    .unwrap();
                got.extend_from_slice(&scores);
                start = end;
            }
            assert_eq!(got.as_slice(), reference.as_slice(), "block={block}");
        }
        // Empty range is well-formed and clears the output buffer.
        stream
            .infer_block_into(&batch, 5, 5, &mp_obs::NULL_RECORDER, &mut scores)
            .unwrap();
        assert!(scores.is_empty());
        // Out-of-bounds and inverted ranges are rejected.
        assert!(stream
            .infer_block_into(&batch, 0, n + 1, &mp_obs::NULL_RECORDER, &mut scores)
            .is_err());
        assert!(stream
            .infer_block_into(&batch, 4, 2, &mp_obs::NULL_RECORDER, &mut scores)
            .is_err());
    }

    #[test]
    fn batched_path_rejects_mismatched_batch_shape() {
        let bnn = trained_tiny(82);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(83);
        let bad = rng.normal(Shape::nchw(2, 3, 4, 4), 0.0, 1.0);
        assert!(hw
            .infer_batch_with(&bad, mp_tensor::Parallelism::sequential())
            .is_err());
    }

    #[test]
    fn hardware_matches_float_classifier() {
        // On inputs already on the fixed-point grid, the first stage is
        // exact, so hardware and float paths must agree (up to f32
        // borderline rounding in thresholds, which is measure-zero here).
        let mut bnn = trained_tiny(72);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(73);
        let n = 24;
        let raw = rng.normal(Shape::nchw(n, 3, 8, 8), 0.0, 1.0);
        let quantised = raw.map(|x| HardwareBnn::quantize_pixel(x) as f32 / INPUT_QUANT_SCALE);
        let float_scores = bnn.infer(&quantised).unwrap();
        let float_preds = mp_nn::Network::argmax_rows(&float_scores).unwrap();
        let mut agree = 0;
        #[allow(clippy::needless_range_loop)] // i selects both image and prediction
        for i in 0..n {
            let img = quantised.batch_item(i).unwrap();
            let hw_pred = hw.classify(&img).unwrap();
            if hw_pred == float_preds[i] {
                agree += 1;
            }
        }
        assert!(
            agree >= n - 1,
            "hardware and float paths disagree on {}/{n} images",
            n - agree
        );
    }

    #[test]
    fn hardware_scores_match_float_scores_exactly_on_grid_inputs() {
        let mut bnn = trained_tiny(74);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(75);
        let raw = rng.normal(Shape::nchw(4, 3, 8, 8), 0.0, 1.0);
        let quantised = raw.map(|x| HardwareBnn::quantize_pixel(x) as f32 / INPUT_QUANT_SCALE);
        // Float classifier scores are scaled by 1/sqrt(fan_in); undo it.
        let float_scores = bnn.infer(&quantised).unwrap();
        let fan_in = bnn.topology().fc_sizes()[bnn.topology().fc_sizes().len() - 2] as f32;
        let mut exact = 0;
        let total = 4 * 10;
        for i in 0..4 {
            let img = quantised.batch_item(i).unwrap();
            let hw_scores = hw.infer_image(&img).unwrap();
            for (j, &s) in hw_scores.iter().enumerate() {
                let f = float_scores.as_slice()[i * 10 + j] * fan_in.sqrt();
                if (f - s as f32).abs() < 0.5 {
                    exact += 1;
                }
            }
        }
        assert!(
            exact as f32 >= total as f32 * 0.9,
            "only {exact}/{total} scores match"
        );
    }

    #[test]
    fn rejects_wrong_image_shape() {
        let bnn = trained_tiny(76);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        assert!(hw
            .infer_image(&Tensor::zeros(Shape::nchw(1, 3, 16, 16)))
            .is_err());
        assert!(hw
            .infer_image(&Tensor::zeros(Shape::nchw(2, 3, 8, 8)))
            .is_err());
    }

    #[test]
    fn output_parity_matches_xnor_arithmetic() {
        // Final engine scores are ±1 dots of fan_in entries: parity fixed.
        let bnn = trained_tiny(77);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let mut rng = TensorRng::seed_from(78);
        let img = rng.normal(Shape::nchw(1, 3, 8, 8), 0.0, 1.0);
        let scores = hw.infer_image(&img).unwrap();
        let fan_in = bnn.topology().fc_sizes()[bnn.topology().fc_sizes().len() - 2] as i64;
        for &s in &scores {
            assert_eq!((s - fan_in).rem_euclid(2), 0, "score {s} has wrong parity");
        }
    }
}
