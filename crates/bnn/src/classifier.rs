use mp_nn::layers::{BatchNorm, MaxPool2d};
use mp_nn::train::Model;
use mp_nn::{Layer, Mode};
use mp_tensor::init::TensorRng;
use mp_tensor::{Shape, ShapeError, Tensor};

use crate::ste::{BinConv2d, BinLinear, QuantActivation};
use crate::FinnTopology;

/// One trainable stage of the binarised classifier.
///
/// Stages keep their concrete layer types (instead of `Box<dyn Layer>`)
/// because hardware export needs the latent weights and the batch-norm
/// statistics of each block.
#[derive(Debug)]
pub(crate) enum Stage {
    /// `BinConv → BatchNorm → Quant/Sign [→ MaxPool]`.
    Conv {
        conv: BinConv2d,
        bn: BatchNorm,
        sign: QuantActivation,
        pool: Option<MaxPool2d>,
    },
    /// Reshape `[N,C,H,W] → [N,C·H·W]` between conv and FC stages.
    Flatten { cached_shape: Option<Shape> },
    /// `BinLinear → BatchNorm → Quant/Sign`.
    Fc {
        fc: BinLinear,
        bn: BatchNorm,
        sign: QuantActivation,
    },
    /// Final `BinLinear`, producing scaled integer scores, no activation.
    Output { fc: BinLinear, scale: f32 },
}

/// The trainable binarised classifier in the FINN topology of Table I.
///
/// Implements [`Model`] so it trains with the shared
/// [`Trainer`](mp_nn::train::Trainer); after training, call
/// [`HardwareBnn::from_classifier`](crate::HardwareBnn::from_classifier)
/// to fold batch-norms into thresholds and pack weights into bits.
///
/// # Example
///
/// ```
/// use mp_bnn::{BnnClassifier, FinnTopology};
/// use mp_tensor::{init::TensorRng, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut rng = TensorRng::seed_from(0);
/// let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng)?;
/// let scores = bnn.infer(&Tensor::zeros(Shape::nchw(2, 3, 8, 8)))?;
/// assert_eq!(scores.shape().dims(), &[2, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BnnClassifier {
    topology: FinnTopology,
    activation_bits: usize,
    pub(crate) stages: Vec<Stage>,
}

impl BnnClassifier {
    /// Builds an untrained, fully-binarised classifier for `topology`
    /// (single-bit inner activations).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the topology's engines cannot be
    /// instantiated (e.g. zero-sized layers).
    pub fn new(topology: FinnTopology, rng: &mut TensorRng) -> Result<Self, ShapeError> {
        Self::with_activation_bits(topology, 1, rng)
    }

    /// Builds a **partially-binarised** classifier: binary weights but
    /// `activation_bits`-wide inner activations (paper §II and future
    /// work). `activation_bits = 1` is the fully-binarised network.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `activation_bits` is invalid or the
    /// topology's engines cannot be instantiated.
    pub fn with_activation_bits(
        topology: FinnTopology,
        activation_bits: usize,
        rng: &mut TensorRng,
    ) -> Result<Self, ShapeError> {
        let mut stages = Vec::new();
        let mut c = topology.channels();
        for (&oc, &pool) in topology.conv_channels().iter().zip(topology.pool_flags()) {
            stages.push(Stage::Conv {
                conv: BinConv2d::new(c, oc, 3, 1, 0, rng)?,
                bn: BatchNorm::new(oc, 0.9, 1e-4)?,
                sign: QuantActivation::new(activation_bits)?,
                pool: pool.then(|| MaxPool2d::new(2, 2)).transpose()?,
            });
            c = oc;
        }
        stages.push(Stage::Flatten { cached_shape: None });
        // Flattened feature count comes from the engine derivation.
        let engines = topology.engines();
        let first_fc = engines
            .iter()
            .find(|e| e.kind == crate::EngineKind::Fc)
            .expect("topology always has FC engines");
        let mut features = first_fc.in_channels;
        let fc_sizes = topology.fc_sizes();
        for (i, &of) in fc_sizes.iter().enumerate() {
            if i + 1 == fc_sizes.len() {
                stages.push(Stage::Output {
                    fc: BinLinear::new(features, of, rng)?,
                    // Scale logits to keep cross-entropy gradients sane;
                    // monotone per-image, so hardware argmax is unchanged.
                    scale: 1.0 / (features as f32).sqrt(),
                });
            } else {
                stages.push(Stage::Fc {
                    fc: BinLinear::new(features, of, rng)?,
                    bn: BatchNorm::new(of, 0.9, 1e-4)?,
                    sign: QuantActivation::new(activation_bits)?,
                });
            }
            features = of;
        }
        Ok(Self {
            topology,
            activation_bits,
            stages,
        })
    }

    /// The classifier's topology.
    pub fn topology(&self) -> &FinnTopology {
        &self.topology
    }

    /// Inner activation width in bits (1 = fully binarised).
    pub fn activation_bits(&self) -> usize {
        self.activation_bits
    }

    /// Inference: returns `[N, classes]` scores (the first
    /// `classes` outputs of the padded final engine).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `images` does not match the topology.
    pub fn infer(&mut self, images: &Tensor) -> Result<Tensor, ShapeError> {
        self.forward_mode(images, Mode::Infer)
    }

    fn slice_classes(&self, padded: Tensor) -> Result<Tensor, ShapeError> {
        let n = padded.shape().dim(0);
        let width = padded.shape().dim(1);
        let classes = self.topology.classes();
        if width == classes {
            return Ok(padded);
        }
        let mut data = Vec::with_capacity(n * classes);
        for row in 0..n {
            data.extend_from_slice(&padded.as_slice()[row * width..row * width + classes]);
        }
        Tensor::from_vec(Shape::matrix(n, classes), data)
    }

    fn unslice_grad(&self, grad: &Tensor, width: usize) -> Result<Tensor, ShapeError> {
        let n = grad.shape().dim(0);
        let classes = self.topology.classes();
        if width == classes {
            return Ok(grad.clone());
        }
        let mut full = Tensor::zeros(Shape::matrix(n, width));
        for row in 0..n {
            full.as_mut_slice()[row * width..row * width + classes]
                .copy_from_slice(&grad.as_slice()[row * classes..(row + 1) * classes]);
        }
        Ok(full)
    }

    fn final_width(&self) -> usize {
        *self
            .topology
            .fc_sizes()
            .last()
            .expect("topology always has FC engines")
    }

    /// Exports the trained network's latent weights and raw batch-norm
    /// parameters, stage by stage, for external folds.
    ///
    /// [`HardwareBnn::from_classifier`](crate::HardwareBnn::from_classifier)
    /// consumes the classifier directly but only supports the 1-bit
    /// XNOR fold; the multi-precision integer path (`mp-int`) re-derives
    /// per-level thresholds from these raw parameters instead, using
    /// `σ = sqrt(var + eps)` exactly as
    /// [`BatchNorm::fold_threshold`] does so the 1-bit corner stays
    /// bit-identical.
    pub fn export_latent(&self) -> Vec<LatentStage> {
        let mut out = Vec::new();
        let mut first = true;
        for stage in &self.stages {
            match stage {
                Stage::Conv { conv, bn, pool, .. } => {
                    out.push(LatentStage {
                        kind: LatentKind::Conv {
                            in_channels: conv.in_channels(),
                            kernel: conv.geometry().kernel,
                            pool: pool.is_some(),
                            first,
                        },
                        rows: conv.out_channels(),
                        cols: conv.latent_weight().shape().dim(1),
                        weights: conv.latent_weight().as_slice().to_vec(),
                        bn: Some(export_bn(bn)),
                    });
                    first = false;
                }
                Stage::Flatten { .. } => {}
                Stage::Fc { fc, bn, .. } => {
                    out.push(LatentStage {
                        kind: LatentKind::Fc,
                        rows: fc.out_features(),
                        cols: fc.in_features(),
                        weights: fc.latent_weight().as_slice().to_vec(),
                        bn: Some(export_bn(bn)),
                    });
                }
                Stage::Output { fc, .. } => {
                    out.push(LatentStage {
                        kind: LatentKind::Output,
                        rows: fc.out_features(),
                        cols: fc.in_features(),
                        weights: fc.latent_weight().as_slice().to_vec(),
                        bn: None,
                    });
                }
            }
        }
        out
    }
}

fn export_bn(bn: &BatchNorm) -> Vec<BnFold> {
    let eps = bn.eps();
    (0..bn.features())
        .map(|c| BnFold {
            gamma: bn.gamma().as_slice()[c],
            beta: bn.beta().as_slice()[c],
            mean: bn.running_mean().as_slice()[c],
            sigma: (bn.running_var().as_slice()[c] + eps).sqrt(),
        })
        .collect()
}

/// Raw batch-norm fold parameters for one channel: the affine transform
/// is `bn(x) = gamma·(x − mean)/sigma + beta` with `sigma` already
/// including the layer's epsilon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnFold {
    /// Per-channel scale γ.
    pub gamma: f32,
    /// Per-channel shift β.
    pub beta: f32,
    /// Running mean μ.
    pub mean: f32,
    /// `sqrt(running_var + eps)`.
    pub sigma: f32,
}

/// What kind of compute a [`LatentStage`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatentKind {
    /// 2-D convolution (VALID padding, stride 1 in this topology).
    Conv {
        /// Input channel count.
        in_channels: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Whether a 2×2/2 max-pool follows the activation.
        pool: bool,
        /// Whether this is the network's first (pixel-consuming) stage.
        first: bool,
    },
    /// Fully-connected with a batch-norm + activation.
    Fc,
    /// Final fully-connected producing unactivated scores.
    Output,
}

/// One exported stage: latent float weights (`rows × cols`, row-major,
/// `[out, fan_in]`) plus the raw batch-norm parameters of the following
/// activation (absent on the output stage).
#[derive(Debug, Clone, PartialEq)]
pub struct LatentStage {
    /// Stage kind and its geometry.
    pub kind: LatentKind,
    /// Output rows (channels or features).
    pub rows: usize,
    /// Fan-in columns.
    pub cols: usize,
    /// Latent weights, still real-valued; quantize per target precision.
    pub weights: Vec<f32>,
    /// Batch-norm fold parameters, one per output row.
    pub bn: Option<Vec<BnFold>>,
}

impl Model for BnnClassifier {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let mut x = input.clone();
        for stage in &mut self.stages {
            x = match stage {
                Stage::Conv {
                    conv,
                    bn,
                    sign,
                    pool,
                } => {
                    let mut y = conv.forward(&x, mode)?;
                    y = bn.forward(&y, mode)?;
                    y = sign.forward(&y, mode)?;
                    if let Some(pool) = pool {
                        y = pool.forward(&y, mode)?;
                    }
                    y
                }
                Stage::Flatten { cached_shape } => {
                    if mode.is_train() {
                        *cached_shape = Some(x.shape().clone());
                    }
                    let n = x.shape().dim(0);
                    let features = x.len() / n.max(1);
                    x.reshape([n, features])?
                }
                Stage::Fc { fc, bn, sign } => {
                    let mut y = fc.forward(&x, mode)?;
                    y = bn.forward(&y, mode)?;
                    sign.forward(&y, mode)?
                }
                Stage::Output { fc, scale } => {
                    let mut y = fc.forward(&x, mode)?;
                    y.scale(*scale);
                    y
                }
            };
        }
        self.slice_classes(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let mut g = self.unslice_grad(grad_output, self.final_width())?;
        for stage in self.stages.iter_mut().rev() {
            g = match stage {
                Stage::Conv {
                    conv,
                    bn,
                    sign,
                    pool,
                } => {
                    let mut d = g;
                    if let Some(pool) = pool {
                        d = pool.backward(&d)?;
                    }
                    d = sign.backward(&d)?;
                    d = bn.backward(&d)?;
                    conv.backward(&d)?
                }
                Stage::Flatten { cached_shape } => {
                    let shape = cached_shape.take().ok_or_else(|| {
                        ShapeError::new(
                            "BnnClassifier",
                            "backward called without a preceding training-mode forward",
                        )
                    })?;
                    g.reshape(shape)?
                }
                Stage::Fc { fc, bn, sign } => {
                    let d = sign.backward(&g)?;
                    let d = bn.backward(&d)?;
                    fc.backward(&d)?
                }
                Stage::Output { fc, scale } => {
                    let mut d = g.clone();
                    d.scale(*scale);
                    fc.backward(&d)?
                }
            };
        }
        Ok(g)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for stage in &mut self.stages {
            match stage {
                Stage::Conv { conv, bn, .. } => {
                    conv.visit_params(visitor);
                    bn.visit_params(visitor);
                }
                Stage::Fc { fc, bn, .. } => {
                    fc.visit_params(visitor);
                    bn.visit_params(visitor);
                }
                Stage::Output { fc, .. } => fc.visit_params(visitor),
                Stage::Flatten { .. } => {}
            }
        }
    }

    fn zero_grads(&mut self) {
        for stage in &mut self.stages {
            match stage {
                Stage::Conv { conv, bn, .. } => {
                    conv.zero_grads();
                    bn.zero_grads();
                }
                Stage::Fc { fc, bn, .. } => {
                    fc.zero_grads();
                    bn.zero_grads();
                }
                Stage::Output { fc, .. } => fc.zero_grads(),
                Stage::Flatten { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_nn::train::{Sgd, Trainer};
    use mp_tensor::init::TensorRng;

    fn tiny_classifier(seed: u64) -> BnnClassifier {
        let mut rng = TensorRng::seed_from(seed);
        BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap()
    }

    #[test]
    fn infer_produces_class_scores() {
        let mut bnn = tiny_classifier(60);
        let mut rng = TensorRng::seed_from(61);
        let x = rng.normal(Shape::nchw(3, 3, 8, 8), 0.0, 1.0);
        let scores = bnn.infer(&x).unwrap();
        assert_eq!(scores.shape().dims(), &[3, 10]);
        assert!(scores.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_backward_round_trip() {
        let mut bnn = tiny_classifier(62);
        let mut rng = TensorRng::seed_from(63);
        let x = rng.normal(Shape::nchw(2, 3, 8, 8), 0.0, 1.0);
        let y = bnn.forward_mode(&x, Mode::Train).unwrap();
        let dx = bnn.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn params_include_all_stages() {
        let mut bnn = tiny_classifier(64);
        let mut count = 0;
        bnn.visit_params(&mut |_, _| count += 1);
        // 2 conv stages: (w + γ + β) ×2 = 6; 2 FC stages: 6; output: 1.
        assert_eq!(count, 13);
    }

    #[test]
    fn training_improves_over_initialisation() {
        // A 2-class separable toy problem in image form.
        let mut rng = TensorRng::seed_from(65);
        let n = 60;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let level: f32 = if class == 0 { -0.8 } else { 0.8 };
            for _ in 0..(3 * 8 * 8) {
                data.push(level + rng.next_gaussian(0.0, 0.4));
            }
            labels.push(class);
        }
        let x = Tensor::from_vec(Shape::nchw(n, 3, 8, 8), data).unwrap();
        let mut bnn = tiny_classifier(66);
        let mut trainer = Trainer::new(Sgd::new(0.01).momentum(0.9), 10);
        let before = trainer.evaluate(&mut bnn, &x, &labels).unwrap();
        for _ in 0..12 {
            trainer
                .train_epoch(&mut bnn, &x, &labels, &mut rng)
                .unwrap();
        }
        let after = trainer.evaluate(&mut bnn, &x, &labels).unwrap();
        assert!(
            after > before.max(0.75),
            "training did not help: {before} -> {after}"
        );
    }

    #[test]
    fn inner_activations_are_binary() {
        let mut bnn = tiny_classifier(67);
        let mut rng = TensorRng::seed_from(68);
        let x = rng.normal(Shape::nchw(1, 3, 8, 8), 0.0, 1.0);
        // Run the first conv stage manually and inspect the sign output.
        if let Stage::Conv { conv, bn, sign, .. } = &mut bnn.stages[0] {
            let y = conv.forward(&x, Mode::Infer).unwrap();
            let y = bn.forward(&y, Mode::Infer).unwrap();
            let y = sign.forward(&y, Mode::Infer).unwrap();
            assert!(y.iter().all(|&v| v == 1.0 || v == -1.0));
        } else {
            panic!("first stage must be conv");
        }
    }

    #[test]
    fn partially_binarised_classifier_trains_and_rejects_export() {
        use crate::HardwareBnn;
        let mut rng = TensorRng::seed_from(200);
        let mut bnn =
            BnnClassifier::with_activation_bits(FinnTopology::scaled(8, 8, 8), 2, &mut rng)
                .unwrap();
        assert_eq!(bnn.activation_bits(), 2);
        let x = rng.normal(Shape::nchw(2, 3, 8, 8), 0.0, 1.0);
        let y = bnn.forward_mode(&x, Mode::Train).unwrap();
        bnn.backward(&Tensor::ones(y.shape().clone())).unwrap();
        // Inner activations now take 4 levels, not 2.
        if let Stage::Conv { conv, bn, sign, .. } = &mut bnn.stages[0] {
            let a = conv.forward(&x, Mode::Infer).unwrap();
            let a = bn.forward(&a, Mode::Infer).unwrap();
            let a = sign.forward(&a, Mode::Infer).unwrap();
            let third = 1.0 / 3.0;
            assert!(a.iter().all(|&v| {
                (v - 1.0).abs() < 1e-6
                    || (v + 1.0).abs() < 1e-6
                    || (v - third).abs() < 1e-6
                    || (v + third).abs() < 1e-6
            }));
            assert!(a.iter().any(|&v| v.abs() < 0.5), "mid levels used");
        } else {
            panic!("first stage must be conv");
        }
        // The XNOR hardware fold only exists for 1-bit activations.
        assert!(HardwareBnn::from_classifier(&bnn).is_err());
    }

    #[test]
    fn one_bit_constructor_matches_default() {
        let mut a = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut TensorRng::seed_from(7))
            .unwrap();
        let mut b = BnnClassifier::with_activation_bits(
            FinnTopology::scaled(8, 8, 8),
            1,
            &mut TensorRng::seed_from(7),
        )
        .unwrap();
        let mut rng = TensorRng::seed_from(8);
        let x = rng.normal(Shape::nchw(2, 3, 8, 8), 0.0, 1.0);
        assert_eq!(a.infer(&x).unwrap(), b.infer(&x).unwrap());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut bnn = tiny_classifier(69);
        assert!(bnn.backward(&Tensor::zeros([1, 10])).is_err());
    }
}
