use serde::{Deserialize, Serialize};

/// Whether an engine implements a convolution or a fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Matrix–matrix engine over unrolled convolution patches.
    Conv,
    /// Matrix–vector engine.
    Fc,
}

/// Dimensions of one FINN engine (one network layer).
///
/// These are the quantities the paper's §III-A folding analysis operates
/// on: kernel `K`, input/output channel counts and spatial extents, and
/// the bit widths of weights, thresholds and activations. The FPGA model
/// in `mp-fpga` derives clock cycles (eqs. 3–4) and memory footprints
/// from this record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Engine label, e.g. `"3x3-conv-64"`.
    pub name: String,
    /// Convolution or fully-connected.
    pub kind: EngineKind,
    /// Kernel edge `K` (1 for FC engines).
    pub kernel: usize,
    /// Input channels `ID` (input features for FC).
    pub in_channels: usize,
    /// Output channels `OD` (output features for FC).
    pub out_channels: usize,
    /// Input spatial height `IH` (1 for FC).
    pub in_height: usize,
    /// Input spatial width `IW` (1 for FC).
    pub in_width: usize,
    /// Output spatial height `OH` (1 for FC).
    pub out_height: usize,
    /// Output spatial width `OW` (1 for FC).
    pub out_width: usize,
    /// Activation input bit width (8 for the first engine's fixed-point
    /// pixels, 1 elsewhere).
    pub input_bits: usize,
    /// Threshold precision in bits (paper: 24 for the first stage, 16 for
    /// inner stages, 0 for the final no-activation stage).
    pub threshold_bits: usize,
    /// Whether a 2×2 max-pool follows this engine.
    pub pool_after: bool,
}

impl EngineSpec {
    /// Rows of the engine's weight matrix (`OD`).
    pub fn weight_rows(&self) -> usize {
        self.out_channels
    }

    /// Columns of the engine's weight matrix (`K·K·ID`).
    pub fn weight_cols(&self) -> usize {
        self.kernel * self.kernel * self.in_channels
    }

    /// Total single-bit weight count: `OD·(K·K·ID)` for conv engines and
    /// `OD·ID` for FC engines (paper §III-A "total weight size").
    pub fn total_weight_bits(&self) -> u64 {
        (self.weight_rows() * self.weight_cols()) as u64
    }

    /// Total threshold storage bits: one `threshold_bits`-wide word per
    /// output channel.
    pub fn total_threshold_bits(&self) -> u64 {
        (self.out_channels * self.threshold_bits) as u64
    }

    /// Output pixels per image (`OH·OW`; 1 for FC engines).
    pub fn output_pixels(&self) -> usize {
        self.out_height * self.out_width
    }

    /// Binary multiply–accumulate operations per image.
    pub fn macs_per_image(&self) -> u64 {
        self.total_weight_bits() * self.output_pixels() as u64
    }
}

/// The FINN network topology of the paper's Table I, parameterised so
/// reduced-scale variants can train quickly.
///
/// The paper's network (for 32×32 RGB CIFAR-10 inputs, no zero padding):
///
/// ```text
/// 3×3-conv-64, 3×3-conv-64, pool,
/// 3×3-conv-128, 3×3-conv-128, pool,
/// 3×3-conv-256, 3×3-conv-256,
/// FC-64, FC-64, FC-64 (no activation)
/// ```
///
/// The final FC engine is 64 wide (FINN pads the 10-class output to a
/// foldable width); classification reads the first
/// [`classes`](Self::classes) scores.
///
/// # Example
///
/// ```
/// use mp_bnn::FinnTopology;
///
/// let topo = FinnTopology::paper();
/// let engines = topo.engines();
/// // First engine: 3×3 conv over 3 channels, 30×30 outputs.
/// assert_eq!(engines[0].weight_cols(), 27);
/// assert_eq!(engines[0].out_height, 30);
/// // Last engine: FC-64 with no thresholding.
/// assert_eq!(engines[8].threshold_bits, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FinnTopology {
    channels: usize,
    height: usize,
    width: usize,
    conv_channels: Vec<usize>,
    pool_after: Vec<bool>,
    fc_sizes: Vec<usize>,
    classes: usize,
}

impl FinnTopology {
    /// The paper's exact Table I network for 32×32 RGB inputs.
    pub fn paper() -> Self {
        Self {
            channels: 3,
            height: 32,
            width: 32,
            conv_channels: vec![64, 64, 128, 128, 256, 256],
            pool_after: vec![false, true, false, true, false, false],
            fc_sizes: vec![64, 64, 64],
            classes: 10,
        }
    }

    /// A reduced-scale variant for fast training: the paper's layer
    /// pattern truncated to what fits `height × width` inputs, with conv
    /// widths divided by `divisor`.
    ///
    /// Inputs of 32 pixels and up keep all six conv layers; 16-pixel
    /// inputs keep four; smaller inputs keep two.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero or the spatial size is too small for
    /// even the two-conv stack (checked when engines are derived).
    pub fn scaled(height: usize, width: usize, divisor: usize) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        let scale = |c: usize| (c / divisor).max(8);
        let edge = height.min(width);
        let (conv_channels, pool_after) = if edge >= 32 {
            (
                vec![
                    scale(64),
                    scale(64),
                    scale(128),
                    scale(128),
                    scale(256),
                    scale(256),
                ],
                vec![false, true, false, true, false, false],
            )
        } else if edge >= 16 {
            (
                vec![scale(64), scale(64), scale(128), scale(128)],
                vec![false, true, false, false],
            )
        } else {
            (vec![scale(64), scale(64)], vec![false, true])
        };
        Self {
            channels: 3,
            height,
            width,
            conv_channels,
            pool_after,
            fc_sizes: vec![scale(64).max(16), scale(64).max(16), 16],
            classes: 10,
        }
    }

    /// A custom topology.
    ///
    /// `conv_channels[i]` is the width of conv layer `i`; `pool_after[i]`
    /// appends a 2×2 max-pool after it. `fc_sizes` lists the FC engine
    /// widths; the last is the (possibly padded) output engine.
    ///
    /// # Panics
    ///
    /// Panics if the layer lists are empty or inconsistent, or if
    /// `classes` exceeds the final FC width.
    pub fn new(
        channels: usize,
        height: usize,
        width: usize,
        conv_channels: Vec<usize>,
        pool_after: Vec<bool>,
        fc_sizes: Vec<usize>,
        classes: usize,
    ) -> Self {
        assert!(!conv_channels.is_empty(), "need at least one conv layer");
        assert_eq!(
            conv_channels.len(),
            pool_after.len(),
            "pool_after must match conv_channels"
        );
        assert!(!fc_sizes.is_empty(), "need at least one FC layer");
        assert!(
            classes <= *fc_sizes.last().expect("non-empty"),
            "classes must fit in the final FC engine"
        );
        Self {
            channels,
            height,
            width,
            conv_channels,
            pool_after,
            fc_sizes,
            classes,
        }
    }

    /// Input image channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Input image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Input image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of classes read from the final engine's scores.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Conv layer widths.
    pub fn conv_channels(&self) -> &[usize] {
        &self.conv_channels
    }

    /// Which conv layers are followed by a 2×2 max-pool.
    pub fn pool_flags(&self) -> &[bool] {
        &self.pool_after
    }

    /// FC engine widths (last entry is the output engine).
    pub fn fc_sizes(&self) -> &[usize] {
        &self.fc_sizes
    }

    /// Derives the per-engine dimension records (paper Table I plus the
    /// §III-A feature sizes).
    ///
    /// # Panics
    ///
    /// Panics if the image is too small for the layer stack (a 3×3 valid
    /// convolution needs ≥3 pixels at every stage).
    pub fn engines(&self) -> Vec<EngineSpec> {
        let mut specs = Vec::new();
        let (mut c, mut h, mut w) = (self.channels, self.height, self.width);
        for (i, (&oc, &pool)) in self.conv_channels.iter().zip(&self.pool_after).enumerate() {
            assert!(
                h >= 3 && w >= 3,
                "image too small for conv layer {i}: {h}x{w}"
            );
            let (oh, ow) = (h - 2, w - 2); // 3×3 valid convolution
            specs.push(EngineSpec {
                name: format!("3x3-conv-{oc}"),
                kind: EngineKind::Conv,
                kernel: 3,
                in_channels: c,
                out_channels: oc,
                in_height: h,
                in_width: w,
                out_height: oh,
                out_width: ow,
                input_bits: if i == 0 { 8 } else { 1 },
                threshold_bits: if i == 0 { 24 } else { 16 },
                pool_after: pool,
            });
            c = oc;
            h = oh;
            w = ow;
            if pool {
                h /= 2;
                w /= 2;
            }
        }
        let mut features = c * h * w;
        let last = self.fc_sizes.len() - 1;
        for (i, &of) in self.fc_sizes.iter().enumerate() {
            specs.push(EngineSpec {
                name: format!("FC-{of}"),
                kind: EngineKind::Fc,
                kernel: 1,
                in_channels: features,
                out_channels: of,
                in_height: 1,
                in_width: 1,
                out_height: 1,
                out_width: 1,
                input_bits: 1,
                threshold_bits: if i == last { 0 } else { 16 },
                pool_after: false,
            });
            features = of;
        }
        specs
    }

    /// Total single-bit parameter count across all engines.
    pub fn total_weight_bits(&self) -> u64 {
        self.engines().iter().map(|e| e.total_weight_bits()).sum()
    }

    /// Engine records for a **partially-binarised** variant (the paper's
    /// §II note that "non-binarised operations can also be extended to
    /// handle inputs and outputs in inner layers" and its future-work
    /// direction of mixed precision on the FPGA): inner-layer
    /// activations carry `inner_bits` bits instead of 1. Weight
    /// memories are unchanged (weights stay binary); inter-layer stream
    /// buffers and datapaths grow with the activation width.
    ///
    /// # Panics
    ///
    /// Panics if `inner_bits` is zero or the image is too small for the
    /// layer stack.
    pub fn engines_partially_binarised(&self, inner_bits: usize) -> Vec<EngineSpec> {
        assert!(inner_bits > 0, "activation width must be positive");
        let mut engines = self.engines();
        for (i, e) in engines.iter_mut().enumerate() {
            if i > 0 {
                e.input_bits = inner_bits;
            }
        }
        engines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_table1() {
        let engines = FinnTopology::paper().engines();
        let names: Vec<&str> = engines.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "3x3-conv-64",
                "3x3-conv-64",
                "3x3-conv-128",
                "3x3-conv-128",
                "3x3-conv-256",
                "3x3-conv-256",
                "FC-64",
                "FC-64",
                "FC-64",
            ]
        );
        // Spatial walk: 32→30→28→(pool)14→12→10→(pool)5→3→1.
        assert_eq!(engines[0].in_height, 32);
        assert_eq!(engines[1].out_height, 28);
        assert!(engines[1].pool_after);
        assert_eq!(engines[2].in_height, 14);
        assert_eq!(engines[4].in_height, 5);
        assert_eq!(engines[5].out_height, 1);
        // First FC sees 256 flattened features.
        assert_eq!(engines[6].in_channels, 256);
    }

    #[test]
    fn weight_sizes_follow_paper_formulas() {
        let engines = FinnTopology::paper().engines();
        // Conv layer: OD·(K·K·ID).
        assert_eq!(engines[0].total_weight_bits(), 64 * 27);
        assert_eq!(engines[2].total_weight_bits(), (128 * 9 * 64) as u64);
        // FC layer: OD·ID.
        assert_eq!(engines[6].total_weight_bits(), (64 * 256) as u64);
        assert_eq!(engines[8].total_weight_bits(), (64 * 64) as u64);
    }

    #[test]
    fn threshold_bit_widths_follow_paper() {
        let engines = FinnTopology::paper().engines();
        assert_eq!(engines[0].threshold_bits, 24);
        for e in &engines[1..8] {
            assert_eq!(e.threshold_bits, 16);
        }
        assert_eq!(engines[8].threshold_bits, 0);
        assert_eq!(engines[0].input_bits, 8);
        assert_eq!(engines[1].input_bits, 1);
    }

    #[test]
    fn scaled_topology_shrinks_channels() {
        let topo = FinnTopology::scaled(16, 16, 4);
        assert_eq!(topo.conv_channels(), &[16, 16, 32, 32]);
        // Walk: 16→14→12→(pool)6→4→2 then three FC engines.
        let engines = topo.engines();
        assert_eq!(engines.len(), 7);
        assert_eq!(engines[3].out_height, 2);
        assert_eq!(engines[4].in_channels, 32 * 2 * 2);
    }

    #[test]
    fn scaled_eight_pixel_variant_fits() {
        // 8→6→4→(pool)2 then FC.
        let engines = FinnTopology::scaled(8, 8, 8).engines();
        assert_eq!(engines.len(), 5);
        assert_eq!(engines[2].in_channels, 8 * 2 * 2);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_images_rejected() {
        let _ = FinnTopology::scaled(4, 4, 4).engines();
    }

    #[test]
    fn macs_per_image_counts_pixels() {
        let e = &FinnTopology::paper().engines()[0];
        assert_eq!(e.macs_per_image(), (64 * 27 * 30 * 30) as u64);
    }

    #[test]
    #[should_panic(expected = "classes must fit")]
    fn classes_must_fit_final_engine() {
        let _ = FinnTopology::new(3, 32, 32, vec![8], vec![false], vec![8], 10);
    }

    #[test]
    fn partially_binarised_widens_inner_activations() {
        let topo = FinnTopology::paper();
        let engines = topo.engines_partially_binarised(4);
        assert_eq!(engines[0].input_bits, 8, "first engine keeps pixels");
        for e in &engines[1..] {
            assert_eq!(e.input_bits, 4);
        }
        // Weights unchanged: still single-bit totals.
        assert_eq!(
            engines.iter().map(|e| e.total_weight_bits()).sum::<u64>(),
            topo.total_weight_bits()
        );
    }

    #[test]
    fn total_weight_bits_sums_engines() {
        let topo = FinnTopology::paper();
        let total: u64 = topo.engines().iter().map(|e| e.total_weight_bits()).sum();
        assert_eq!(topo.total_weight_bits(), total);
        // The full CIFAR-10 FINN network is ~1.5 Mbit of weights.
        assert!(total > 1_000_000 && total < 2_500_000, "total {total}");
    }
}
