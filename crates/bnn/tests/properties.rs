//! Property tests for the binarised network.

use proptest::prelude::*;

use mp_bnn::bits::{BitMatrix, BitVec};
use mp_bnn::hardware::HwThreshold;
use mp_bnn::ste::{binarize, BinLinear, SignActivation};
use mp_bnn::FinnTopology;
use mp_nn::{Layer, Mode};
use mp_tensor::init::TensorRng;
use mp_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binarize_is_idempotent_sign(x in -100.0f32..100.0) {
        let b = binarize(x);
        prop_assert!(b == 1.0 || b == -1.0);
        prop_assert_eq!(binarize(b), b);
        if x != 0.0 {
            prop_assert_eq!(b, x.signum());
        }
    }

    #[test]
    fn sign_activation_range(values in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
        let mut layer = SignActivation::new();
        let n = values.len();
        let x = Tensor::from_vec([n], values).unwrap();
        let y = layer.forward(&x, Mode::Infer).unwrap();
        prop_assert!(y.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn binlinear_output_parity(in_features in 1usize..48, seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let mut fc = BinLinear::new(in_features, 4, &mut rng).unwrap();
        let x_signs: Vec<f32> = (0..in_features)
            .map(|i| if (i + seed as usize).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let x = Tensor::from_vec([1, in_features], x_signs).unwrap();
        let y = fc.forward(&x, Mode::Infer).unwrap();
        for &v in y.iter() {
            let vi = v as i64;
            prop_assert_eq!(v, vi as f32, "integer-valued output");
            prop_assert!(vi.unsigned_abs() as usize <= in_features);
            prop_assert_eq!(vi.rem_euclid(2), (in_features as i64).rem_euclid(2));
        }
    }

    #[test]
    fn xnor_matvec_matches_unpacked(rows in 1usize..6, cols in 1usize..100, seed in 0u64..500) {
        let mut rng = TensorRng::seed_from(seed);
        let w: Vec<f32> = (0..rows * cols).map(|_| binarize(rng.next_normal())).collect();
        let x: Vec<f32> = (0..cols).map(|_| binarize(rng.next_normal())).collect();
        let m = BitMatrix::from_signs(rows, cols, &w);
        let xv = BitVec::from_signs(&x);
        let got = m.xnor_matvec(&xv);
        for (r, &acc) in got.iter().enumerate() {
            let want: f32 = w[r * cols..(r + 1) * cols]
                .iter()
                .zip(&x)
                .map(|(&a, &b)| a * b)
                .sum();
            prop_assert_eq!(acc, want as i32);
        }
    }

    #[test]
    fn threshold_fold_respects_sign_semantics(t in -100.0f32..100.0, acc in -200i64..200) {
        // Positive-gamma fold: fires iff acc >= t (integer acc).
        let thr = HwThreshold::fold(t, false, 1.0);
        prop_assert_eq!(thr.fires(acc), acc as f32 >= t);
        // Negative-gamma fold: fires iff acc <= t.
        let thr = HwThreshold::fold(t, true, 1.0);
        prop_assert_eq!(thr.fires(acc), acc as f32 <= t);
    }

    #[test]
    fn topology_spatial_walk_is_consistent(divisor in 1usize..9) {
        for edge in [8usize, 16, 32] {
            let engines = FinnTopology::scaled(edge, edge, divisor).engines();
            // Each engine's input channel count equals the previous
            // engine's output (after pooling, which keeps channels).
            for pair in engines.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if b.kernel > 1 || a.kernel > 1 && b.in_height > 1 {
                    // conv → conv: channels chain directly.
                }
                if a.out_height > 1 || a.out_width > 1 {
                    continue; // flattening absorbs spatial dims for FC
                }
                prop_assert_eq!(b.in_channels, a.out_channels);
            }
        }
    }

    #[test]
    fn weight_bits_match_dimensions(rows in 1usize..10, cols in 1usize..100) {
        let values = vec![1.0f32; rows * cols];
        let m = BitMatrix::from_signs(rows, cols, &values);
        prop_assert_eq!(m.weight_bits(), (rows * cols) as u64);
    }
}
