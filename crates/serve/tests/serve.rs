//! End-to-end serving tests over a real (tiny) multi-precision system.

use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use mp_core::dmu::Dmu;
use mp_core::{MultiPrecisionPipeline, PipelineTiming, RunOptions};
use mp_dataset::{Dataset, SynthSpec};
use mp_nn::train::Model;
use mp_nn::{Mode, Network};
use mp_obs::SharedRecorder;
use mp_serve::{BatchServer, BatcherConfig, Request};
use mp_tensor::init::TensorRng;
use mp_tensor::Shape;

fn tiny_system() -> (HardwareBnn, Dmu, Dataset, Network) {
    let mut rng = TensorRng::seed_from(100);
    let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
    for _ in 0..3 {
        let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
        bnn.forward_mode(&x, Mode::Train).unwrap();
    }
    let hw = HardwareBnn::from_classifier(&bnn).unwrap();
    let dmu = Dmu::with_weights(vec![0.1; 10], 0.0);
    let data = SynthSpec::tiny().generate(32).unwrap();
    let host = Network::builder(Shape::nchw(1, 3, 8, 8))
        .conv2d(8, 3, 1, 1, &mut rng)
        .unwrap()
        .relu()
        .global_avg_pool()
        .linear(10, &mut rng)
        .unwrap()
        .build();
    (hw, dmu, data, host)
}

fn opts() -> RunOptions<'static> {
    RunOptions::new(PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 4)).with_host_accuracy(0.5)
}

/// Poisson-free deterministic trace: `n` requests, fixed inter-arrival
/// gap, images cycling through the store.
fn uniform_trace(n: usize, gap_s: f64, store_len: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request::new(i as u64, i % store_len, i as f64 * gap_s))
        .collect()
}

#[test]
fn light_load_serves_everything_batch_of_one() {
    let (hw, dmu, data, host) = tiny_system();
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
    // Arrivals far slower than service: every request should dispatch
    // alone the moment its delay window closes.
    let cfg = BatcherConfig::try_new(8, 1e-4, 16).unwrap();
    let server = BatchServer::new(&pipeline, &host, &data, cfg);
    let trace = uniform_trace(10, 10.0, data.len());
    let report = server.serve(&trace, &opts()).unwrap();
    assert_eq!(report.served(), 10);
    assert!(report.shed.is_empty());
    assert_eq!(report.batches.len(), 10, "light load must not coalesce");
    assert!(report.batches.iter().all(|b| b.size == 1));
    for c in &report.completions {
        assert!(
            (c.queue_wait_s() - 1e-4).abs() < 1e-12,
            "{}",
            c.queue_wait_s()
        );
        assert!(c.latency_s() > 0.0);
    }
}

#[test]
fn burst_coalesces_into_full_batches() {
    let (hw, dmu, data, host) = tiny_system();
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
    let cfg = BatcherConfig::try_new(4, 1.0, 64).unwrap();
    let server = BatchServer::new(&pipeline, &host, &data, cfg);
    // 12 requests all arriving at t=0: three full batches of 4.
    let trace: Vec<Request> = (0..12).map(|i| Request::new(i, i as usize, 0.0)).collect();
    let report = server.serve(&trace, &opts()).unwrap();
    assert_eq!(report.served(), 12);
    assert_eq!(report.batches.len(), 3);
    assert!(report.batches.iter().all(|b| b.size == 4));
    // Batches execute back-to-back on the single virtual server.
    for w in report.batches.windows(2) {
        assert!((w[1].dispatch_s - w[0].completion_s).abs() < 1e-12);
    }
}

#[test]
fn overload_sheds_instead_of_growing_the_queue() {
    let (hw, dmu, data, host) = tiny_system();
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
    let cfg = BatcherConfig::try_new(4, 1e-3, 4).unwrap();
    let server = BatchServer::new(&pipeline, &host, &data, cfg);
    // A huge instantaneous burst against a capacity-4 queue.
    let trace: Vec<Request> = (0..64)
        .map(|i| Request::new(i, i as usize % data.len(), 0.0))
        .collect();
    let report = server.serve(&trace, &opts()).unwrap();
    assert!(!report.shed.is_empty(), "burst must shed");
    assert_eq!(report.served() + report.shed.len(), 64);
    // Served and shed ids partition the trace (nothing lost, nothing
    // double-counted).
    let mut ids: Vec<u64> = report
        .completions
        .iter()
        .map(|c| c.id)
        .chain(report.shed.iter().copied())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..64).collect::<Vec<u64>>());
    // Bounded queue ⇒ bounded wait: nobody waits longer than the whole
    // backlog of min-size batches ahead of them.
    let makespan = report.makespan_s();
    for c in &report.completions {
        assert!(c.queue_wait_s() <= makespan);
        assert!(c.queue_wait_s() >= 0.0);
    }
}

#[test]
fn serve_is_deterministic_and_matches_dataset_execute() {
    let (hw, dmu, data, host) = tiny_system();
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
    let cfg = BatcherConfig::try_new(3, 2e-3, 32).unwrap();
    let server = BatchServer::new(&pipeline, &host, &data, cfg);
    let trace = uniform_trace(20, 1e-3, data.len());
    let a = server.serve(&trace, &opts()).unwrap();
    let b = server.serve(&trace, &opts()).unwrap();
    assert_eq!(a, b, "same trace must replay byte-identically");
    // Predictions are bit-identical to one dataset-mode execute over
    // the same images, whatever the batch grouping was.
    let whole = pipeline.execute(&host, &data, &opts()).unwrap();
    for c in &a.completions {
        assert_eq!(c.prediction, whole.predictions[c.image]);
    }
}

#[test]
fn recorder_sees_requests_batches_and_latencies() {
    let (hw, dmu, data, host) = tiny_system();
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
    let cfg = BatcherConfig::try_new(4, 1e-3, 4).unwrap();
    let server = BatchServer::new(&pipeline, &host, &data, cfg);
    let trace: Vec<Request> = (0..16)
        .map(|i| Request::new(i, i as usize % data.len(), 0.0))
        .collect();
    let rec = SharedRecorder::new();
    let base = opts();
    let with_rec = base.clone().with_recorder(&rec);
    let report = server.serve(&trace, &with_rec).unwrap();
    // Recording is passive.
    let plain = server.serve(&trace, &base).unwrap();
    assert_eq!(report, plain);
    let obs = rec.report();
    mp_obs::schema::validate_report(&obs).unwrap();
    assert_eq!(obs.counter(mp_obs::schema::CTR_SERVE_REQUESTS), 16);
    assert_eq!(
        obs.counter(mp_obs::schema::CTR_SERVE_SHED),
        report.shed.len() as u64
    );
    assert_eq!(
        obs.counter(mp_obs::schema::CTR_SERVE_BATCHES),
        report.batches.len() as u64
    );
    let lat = obs
        .histogram(mp_obs::schema::HIST_SERVE_LATENCY_S)
        .expect("latency histogram present");
    assert_eq!(lat.count, report.served() as u64);
    let span = obs
        .span(mp_obs::schema::SPAN_SERVE_BATCH)
        .expect("batch span present");
    assert_eq!(span.count, report.batches.len() as u64);
}

#[test]
fn malformed_traces_are_typed_errors() {
    let (hw, dmu, data, host) = tiny_system();
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
    let cfg = BatcherConfig::try_new(4, 1e-3, 8).unwrap();
    let server = BatchServer::new(&pipeline, &host, &data, cfg);
    let o = opts();
    // Out-of-order arrivals.
    let unsorted = vec![Request::new(0, 0, 1.0), Request::new(1, 1, 0.5)];
    assert!(server.serve(&unsorted, &o).is_err());
    // Non-finite arrival.
    let nan = vec![Request::new(0, 0, f64::NAN)];
    assert!(server.serve(&nan, &o).is_err());
    // Image index out of the store.
    let oob = vec![Request::new(0, data.len(), 0.0)];
    assert!(server.serve(&oob, &o).is_err());
    // Empty trace is fine and yields an empty report.
    let empty = server.serve(&[], &o).unwrap();
    assert_eq!(empty.offered(), 0);
    assert_eq!(empty.makespan_s(), 0.0);
}
