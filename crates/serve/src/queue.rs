//! Requests and the bounded admission queue.

use std::collections::VecDeque;

use serde::Serialize;

/// One inference request: an image (an index into the server's backing
/// [`Dataset`](mp_dataset::Dataset)) plus its deterministic virtual
/// arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the report.
    pub id: u64,
    /// Index of the request's image in the server's image store.
    pub image: usize,
    /// Virtual arrival time in seconds (non-negative, finite; traces
    /// must be sorted by this field).
    pub arrival_s: f64,
}

impl Request {
    /// Creates a request.
    pub fn new(id: u64, image: usize, arrival_s: f64) -> Self {
        Self {
            id,
            image,
            arrival_s,
        }
    }
}

/// Outcome of offering a request to the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Enqueue {
    /// The request was admitted and will be served in a future batch.
    Accepted,
    /// The queue was full: the request is dropped (explicit
    /// backpressure — overload sheds instead of growing memory).
    Shed,
}

/// A bounded FIFO of admitted requests.
///
/// Admission is all-or-nothing at [`offer`](Self::offer) time; once a
/// request is in, it is guaranteed to be dispatched in some batch (the
/// batcher never drops queued work).
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    queue: VecDeque<Request>,
}

impl AdmissionQueue {
    /// Creates an empty queue holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            queue: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Offers a request: admitted if there is room, shed otherwise.
    pub fn offer(&mut self, request: Request) -> Enqueue {
        if self.queue.len() >= self.capacity {
            Enqueue::Shed
        } else {
            self.queue.push_back(request);
            Enqueue::Accepted
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Arrival time of the queued request at position `idx` (0 = head).
    pub fn arrival_at(&self, idx: usize) -> Option<f64> {
        self.queue.get(idx).map(|r| r.arrival_s)
    }

    /// Removes and returns up to `max` requests from the head.
    pub fn drain_batch(&mut self, max: usize) -> Vec<Request> {
        let take = max.min(self.queue.len());
        self.queue.drain(..take).collect()
    }

    /// Removes and returns *every* queued request, emptying the queue.
    ///
    /// This is the replica-death primitive: when a replica dies, its
    /// backlog must be handed back to the router to be re-enqueued
    /// elsewhere or shed *explicitly* — the admission guarantee ("once
    /// admitted, never silently dropped") transfers to the caller with
    /// the returned requests.
    pub fn drain(&mut self) -> Vec<Request> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_admits_until_full_then_sheds() {
        let mut q = AdmissionQueue::new(2);
        assert_eq!(q.offer(Request::new(0, 0, 0.0)), Enqueue::Accepted);
        assert_eq!(q.offer(Request::new(1, 1, 0.1)), Enqueue::Accepted);
        assert_eq!(q.offer(Request::new(2, 2, 0.2)), Enqueue::Shed);
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        let batch = q.drain_batch(1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 0);
        assert_eq!(q.offer(Request::new(3, 3, 0.3)), Enqueue::Accepted);
    }

    #[test]
    fn drain_is_fifo_and_clamped() {
        let mut q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.offer(Request::new(i, i as usize, i as f64));
        }
        assert_eq!(q.arrival_at(0), Some(0.0));
        assert_eq!(q.arrival_at(4), Some(4.0));
        assert_eq!(q.arrival_at(5), None);
        let ids: Vec<u64> = q.drain_batch(99).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AdmissionQueue::new(0);
    }

    #[test]
    fn drain_empties_in_fifo_order_and_frees_capacity() {
        let mut q = AdmissionQueue::new(3);
        for i in 0..3 {
            assert_eq!(
                q.offer(Request::new(i, i as usize, i as f64)),
                Enqueue::Accepted
            );
        }
        let all: Vec<u64> = q.drain().iter().map(|r| r.id).collect();
        assert_eq!(all, vec![0, 1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.drain().len(), 0, "draining an empty queue is a no-op");
        assert_eq!(q.offer(Request::new(9, 9, 9.0)), Enqueue::Accepted);
    }

    /// Shed accounting must stay exact across a drain + re-enqueue
    /// cycle (the replica-death path): every admitted id ends up either
    /// re-admitted or explicitly shed, exactly once — no double count,
    /// no lost id.
    #[test]
    fn requeue_after_drain_partitions_ids_exactly() {
        let mut dead = AdmissionQueue::new(4);
        let mut shed = Vec::new();
        for i in 0..6u64 {
            if dead.offer(Request::new(i, i as usize, 0.1 * i as f64)) == Enqueue::Shed {
                shed.push(i);
            }
        }
        assert_eq!(shed, vec![4, 5], "bounded admission sheds the overflow");
        // The replica dies: its backlog moves to a smaller survivor.
        let orphans = dead.drain();
        assert!(dead.is_empty());
        let mut survivor = AdmissionQueue::new(3);
        let mut redirected = Vec::new();
        for r in orphans {
            match survivor.offer(r) {
                Enqueue::Accepted => redirected.push(r.id),
                Enqueue::Shed => shed.push(r.id),
            }
        }
        // Exact partition of the offered ids: re-admitted ∪ shed, with
        // no id in both and none missing.
        let mut seen: Vec<u64> = redirected.iter().chain(shed.iter()).copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<u64>>());
        assert_eq!(redirected.len() + shed.len(), 6);
        assert_eq!(redirected, vec![0, 1, 2], "FIFO order survives the move");
        assert_eq!(shed, vec![4, 5, 3], "overflow shed exactly once");
    }
}
