//! Request-level serving front-end for the multi-precision pipeline.
//!
//! Every other entry point in the workspace
//! ([`MultiPrecisionPipeline::execute`](mp_core::MultiPrecisionPipeline::execute),
//! [`TrainedSystem::execute`](mp_core::experiment::TrainedSystem::execute))
//! takes a whole [`Dataset`](mp_dataset::Dataset) up front. This crate
//! models the missing production shape: individual requests arriving
//! over time, an **admission queue** with a hard bound (overload sheds
//! instead of growing memory), and a **dynamic batcher** that coalesces
//! queued requests into pipeline batches — batch-of-1 under light load,
//! full batches under heavy load — exactly the latency/throughput
//! trade-off the paper's `async(1)`/`wait(1)` loop (eqs. 1–2) is about.
//!
//! Time is **virtual** throughout: requests carry a deterministic
//! arrival timestamp, batch service time is the pipeline's modelled
//! `async`/`wait` batch time, and the whole serve loop is a replayable
//! discrete-event simulation. Same request trace + same seed ⇒
//! byte-identical [`ServeReport`]. Batching is latency-only by
//! construction: every layer of the pipeline treats batch rows
//! independently, so predictions are bit-identical to a single
//! dataset-mode `execute` over the same images (pinned by a property
//! test in `tests/props.rs`).
//!
//! # Example
//!
//! ```no_run
//! use mp_serve::{BatchServer, BatcherConfig, Request};
//! # fn run(
//! #     pipeline: &mp_core::MultiPrecisionPipeline<'_>,
//! #     host: &mp_nn::Network,
//! #     store: &mp_dataset::Dataset,
//! #     opts: &mp_core::RunOptions<'_>,
//! # ) -> Result<(), mp_serve::ServeError> {
//! let cfg = BatcherConfig::try_new(8, 5e-3, 64)?;
//! let server = BatchServer::new(pipeline, host, store, cfg);
//! let requests: Vec<Request> = (0..100)
//!     .map(|i| Request::new(i, i as usize % store.len(), i as f64 * 1e-3))
//!     .collect();
//! let report = server.serve(&requests, opts)?;
//! println!(
//!     "{} served, {} shed, p99 {:.3} ms",
//!     report.served(),
//!     report.shed.len(),
//!     report.percentile_latency_s(99.0).unwrap_or(0.0) * 1e3,
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

mod batcher;
mod queue;
mod report;

pub use batcher::{BatchServer, BatcherConfig, ServeError};
pub use queue::{AdmissionQueue, Enqueue, Request};
pub use report::{BatchRecord, Completion, ServeReport};
