//! The dynamic batcher: a virtual-time discrete-event loop over the
//! admission queue.
//!
//! A batch dispatches at the first virtual instant when the server is
//! free **and** either `max_batch` requests are queued or the head
//! request has waited `max_delay_s`. Under light load that degenerates
//! to batch-of-1 at arrival (plus the delay window); under heavy load
//! the queue fills while the server is busy and every dispatch carries
//! a full batch, which is exactly when the pipeline's `async`/`wait`
//! overlap pays off. Arrivals landing at the same instant a batch
//! closes join the *next* batch — a fixed tie-break that keeps the
//! replay deterministic.

use std::fmt;

use mp_core::{CoreError, MultiPrecisionPipeline, PipelineResult, RunOptions};
use mp_dataset::{Dataset, DatasetError};
use mp_nn::Network;
use mp_obs::schema;
use serde::{Deserialize, Error, Serialize, Value};

use crate::queue::{AdmissionQueue, Enqueue, Request};
use crate::report::{BatchRecord, Completion, ServeReport};

/// Dynamic-batching knobs.
///
/// Deserialization routes through [`try_new`](Self::try_new), so an
/// invalid config read from disk is a typed error, never a later panic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatcherConfig {
    /// Dispatch as soon as this many requests are queued (and the
    /// server is free). `1` forces batch-of-1 serving.
    pub max_batch: usize,
    /// Dispatch a partial batch once the head request has waited this
    /// long (seconds). `0.0` dispatches whatever is queued the moment
    /// the server frees up.
    pub max_delay_s: f64,
    /// Admission-queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
}

impl BatcherConfig {
    /// Creates a config, rejecting invalid values with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `max_batch` or
    /// `queue_capacity` is zero, or `max_delay_s` is negative or
    /// non-finite.
    pub fn try_new(
        max_batch: usize,
        max_delay_s: f64,
        queue_capacity: usize,
    ) -> Result<Self, ServeError> {
        if max_batch == 0 {
            return Err(ServeError::Config("max_batch must be positive".into()));
        }
        if !max_delay_s.is_finite() || max_delay_s < 0.0 {
            return Err(ServeError::Config(format!(
                "max_delay_s {max_delay_s} must be finite and non-negative"
            )));
        }
        if queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be positive".into()));
        }
        Ok(Self {
            max_batch,
            max_delay_s,
            queue_capacity,
        })
    }
}

impl<'de> Deserialize<'de> for BatcherConfig {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let max_batch = usize::from_value(value.get_field("max_batch")?)?;
        let max_delay_s = f64::from_value(value.get_field("max_delay_s")?)?;
        let queue_capacity = usize::from_value(value.get_field("queue_capacity")?)?;
        BatcherConfig::try_new(max_batch, max_delay_s, queue_capacity).map_err(Error::custom)
    }
}

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid batcher configuration.
    Config(String),
    /// A request trace violated an invariant (ordering, finiteness or
    /// image bounds).
    Trace(String),
    /// A batch execution failed in the pipeline.
    Core(CoreError),
    /// Batch assembly failed in the dataset layer.
    Dataset(DatasetError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid batcher config: {msg}"),
            ServeError::Trace(msg) => write!(f, "invalid request trace: {msg}"),
            ServeError::Core(e) => write!(f, "pipeline error: {e}"),
            ServeError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<DatasetError> for ServeError {
    fn from(e: DatasetError) -> Self {
        ServeError::Dataset(e)
    }
}

/// The serving front-end: pipeline + host + image store + batcher.
///
/// The store plays the role of the request payloads: a [`Request`]
/// carries an index into it, and the batcher gathers the indices of
/// each dispatched batch into a contiguous [`Dataset`] via
/// [`Dataset::select`].
#[derive(Debug)]
pub struct BatchServer<'a> {
    pipeline: &'a MultiPrecisionPipeline<'a>,
    host: &'a Network,
    store: &'a Dataset,
    config: BatcherConfig,
}

impl<'a> BatchServer<'a> {
    /// Creates a server over `pipeline`/`host` serving images from
    /// `store`.
    pub fn new(
        pipeline: &'a MultiPrecisionPipeline<'a>,
        host: &'a Network,
        store: &'a Dataset,
        config: BatcherConfig,
    ) -> Self {
        Self {
            pipeline,
            host,
            store,
            config,
        }
    }

    /// The batcher configuration.
    pub fn config(&self) -> BatcherConfig {
        self.config
    }

    /// Serves a request trace to completion and returns the full
    /// per-request/per-batch accounting.
    ///
    /// `requests` is an open-loop trace: arrival times must be finite,
    /// non-negative and sorted non-decreasing (ties allowed). Each
    /// batch runs through
    /// [`MultiPrecisionPipeline::execute`] with `opts` — faults,
    /// degradation, threshold overrides and recorders all apply per
    /// batch. The virtual clock advances by each batch's modelled
    /// `async`/`wait` time, so the report is deterministic even when
    /// `opts` selects the threaded executor.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on a malformed trace or a pipeline
    /// failure; shed requests are not errors (they are reported in
    /// [`ServeReport::shed`]).
    pub fn serve(
        &self,
        requests: &[Request],
        opts: &RunOptions<'_>,
    ) -> Result<ServeReport, ServeError> {
        self.validate_trace(requests)?;
        let rec = opts.recorder();
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        let mut report = ServeReport {
            completions: Vec::with_capacity(requests.len()),
            shed: Vec::new(),
            batches: Vec::new(),
        };
        let mut server_free_s = 0.0f64;

        for r in requests {
            // Everything due strictly before (or at) this arrival
            // dispatches first; only then does the arrival contend for
            // a queue slot.
            self.dispatch_due(
                &mut queue,
                &mut server_free_s,
                r.arrival_s,
                opts,
                &mut report,
            )?;
            if rec.enabled() {
                rec.add(schema::CTR_SERVE_REQUESTS, 1);
            }
            match queue.offer(*r) {
                Enqueue::Accepted => {}
                Enqueue::Shed => {
                    if rec.enabled() {
                        rec.add(schema::CTR_SERVE_SHED, 1);
                    }
                    report.shed.push(r.id);
                }
            }
        }
        // Drain: no more arrivals, dispatch everything left.
        self.dispatch_due(
            &mut queue,
            &mut server_free_s,
            f64::INFINITY,
            opts,
            &mut report,
        )?;
        debug_assert!(queue.is_empty(), "drain left requests queued");
        Ok(report)
    }

    fn validate_trace(&self, requests: &[Request]) -> Result<(), ServeError> {
        let mut prev = 0.0f64;
        for r in requests {
            if !r.arrival_s.is_finite() || r.arrival_s < 0.0 {
                return Err(ServeError::Trace(format!(
                    "request {} arrival {} must be finite and non-negative",
                    r.id, r.arrival_s
                )));
            }
            if r.arrival_s < prev {
                return Err(ServeError::Trace(format!(
                    "request {} arrives at {} after a request at {} (trace \
                     must be sorted by arrival)",
                    r.id, r.arrival_s, prev
                )));
            }
            if r.image >= self.store.len() {
                return Err(ServeError::Trace(format!(
                    "request {} image index {} out of bounds for a store of {}",
                    r.id,
                    r.image,
                    self.store.len()
                )));
            }
            prev = r.arrival_s;
        }
        Ok(())
    }

    /// Dispatches every batch whose dispatch instant is `<= until`.
    fn dispatch_due(
        &self,
        queue: &mut AdmissionQueue,
        server_free_s: &mut f64,
        until: f64,
        opts: &RunOptions<'_>,
        report: &mut ServeReport,
    ) -> Result<(), ServeError> {
        while let Some(head_arrival) = queue.arrival_at(0) {
            // First instant the dispatch condition (full batch OR head
            // deadline) holds...
            let deadline = head_arrival + self.config.max_delay_s;
            let ready = match queue.arrival_at(self.config.max_batch - 1) {
                Some(full_at) => deadline.min(full_at),
                None => deadline,
            };
            // ...gated on the server being free.
            let dispatch_s = server_free_s.max(ready);
            if dispatch_s > until {
                break;
            }
            let members = queue.drain_batch(self.config.max_batch);
            let result = self.run_batch(&members, opts)?;
            let service_s = result.modeled_time_s;
            let completion_s = dispatch_s + service_s;
            *server_free_s = completion_s;
            self.record_batch(&members, &result, dispatch_s, completion_s, opts, report);
        }
        Ok(())
    }

    fn run_batch(
        &self,
        members: &[Request],
        opts: &RunOptions<'_>,
    ) -> Result<PipelineResult, ServeError> {
        let indices: Vec<usize> = members.iter().map(|m| m.image).collect();
        let batch = self.store.select(&indices)?;
        Ok(self.pipeline.execute(self.host, &batch, opts)?)
    }

    fn record_batch(
        &self,
        members: &[Request],
        result: &PipelineResult,
        dispatch_s: f64,
        completion_s: f64,
        opts: &RunOptions<'_>,
        report: &mut ServeReport,
    ) {
        let rec = opts.recorder();
        if rec.enabled() {
            rec.add(schema::CTR_SERVE_BATCHES, 1);
            rec.observe(schema::HIST_SERVE_BATCH_SIZE, members.len() as f64);
            rec.record_span(
                schema::SPAN_SERVE_BATCH,
                virt_ns(dispatch_s),
                virt_ns(completion_s),
            );
        }
        for (k, m) in members.iter().enumerate() {
            report.completions.push(Completion {
                id: m.id,
                image: m.image,
                prediction: result.predictions[k],
                arrival_s: m.arrival_s,
                dispatch_s,
                completion_s,
            });
            if rec.enabled() {
                rec.observe(schema::HIST_SERVE_QUEUE_WAIT_S, dispatch_s - m.arrival_s);
                rec.observe(schema::HIST_SERVE_LATENCY_S, completion_s - m.arrival_s);
            }
        }
        report.batches.push(BatchRecord {
            dispatch_s,
            completion_s,
            size: members.len(),
            rerun_count: result.rerun_count,
            degraded_count: result.degraded_count,
        });
    }
}

/// Virtual seconds → virtual nanoseconds for span timestamps (the same
/// convention `StreamSim` uses).
fn virt_ns(s: f64) -> u64 {
    (s.max(0.0) * 1e9) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_rejects_degenerate_values() {
        assert!(BatcherConfig::try_new(0, 1e-3, 8).is_err());
        assert!(BatcherConfig::try_new(4, -1.0, 8).is_err());
        assert!(BatcherConfig::try_new(4, f64::NAN, 8).is_err());
        assert!(BatcherConfig::try_new(4, f64::INFINITY, 8).is_err());
        assert!(BatcherConfig::try_new(4, 1e-3, 0).is_err());
        assert!(BatcherConfig::try_new(1, 0.0, 1).is_ok());
    }

    #[test]
    fn config_deserialize_routes_through_try_new() {
        let good = BatcherConfig::try_new(8, 5e-3, 64).unwrap();
        let round = BatcherConfig::from_value(&good.to_value()).expect("valid config");
        assert_eq!(round, good);
        let bad = BatcherConfig {
            max_batch: 0,
            max_delay_s: 5e-3,
            queue_capacity: 64,
        };
        let err = BatcherConfig::from_value(&bad.to_value()).unwrap_err();
        assert!(err.to_string().contains("max_batch"), "{err}");
    }
}
