//! Per-request and per-batch accounting of one serve run.

use serde::Serialize;

/// One served request's full timeline and outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Completion {
    /// The request's caller-chosen id.
    pub id: u64,
    /// Index of the image in the server's store.
    pub image: usize,
    /// Final class prediction (bit-identical to a dataset-mode run).
    pub prediction: usize,
    /// Virtual arrival time, seconds.
    pub arrival_s: f64,
    /// Virtual time the request's batch was dispatched.
    pub dispatch_s: f64,
    /// Virtual time the request's batch completed.
    pub completion_s: f64,
}

impl Completion {
    /// Time spent waiting in the admission queue.
    pub fn queue_wait_s(&self) -> f64 {
        self.dispatch_s - self.arrival_s
    }

    /// End-to-end latency: queue wait plus batch service.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// One dispatched batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchRecord {
    /// Virtual dispatch time, seconds.
    pub dispatch_s: f64,
    /// Virtual completion time, seconds.
    pub completion_s: f64,
    /// Requests in the batch (`1..=max_batch`).
    pub size: usize,
    /// Images the DMU flagged and the host re-inferred in this batch.
    pub rerun_count: usize,
    /// Flagged images that degraded to their BNN prediction.
    pub degraded_count: usize,
}

/// Everything one [`serve`](crate::BatchServer::serve) call produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeReport {
    /// Served requests in completion order (batch by batch, FIFO within
    /// a batch).
    pub completions: Vec<Completion>,
    /// Ids of requests shed by admission backpressure, in arrival order.
    pub shed: Vec<u64>,
    /// Dispatched batches in order.
    pub batches: Vec<BatchRecord>,
}

impl ServeReport {
    /// Number of requests served to completion.
    pub fn served(&self) -> usize {
        self.completions.len()
    }

    /// Number of requests offered (served + shed).
    pub fn offered(&self) -> usize {
        self.completions.len() + self.shed.len()
    }

    /// Fraction of offered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        self.shed.len() as f64 / self.offered().max(1) as f64
    }

    /// Virtual time of the last batch completion (0 when nothing ran).
    pub fn makespan_s(&self) -> f64 {
        self.batches.last().map_or(0.0, |b| b.completion_s)
    }

    /// Served requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        self.served() as f64 / self.makespan_s().max(f64::MIN_POSITIVE)
    }

    /// Mean dispatched batch size (0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        let total: usize = self.batches.iter().map(|b| b.size).sum();
        total as f64 / self.batches.len().max(1) as f64
    }

    /// End-to-end latencies of all served requests, sorted ascending.
    pub fn sorted_latencies_s(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.completions.iter().map(|c| c.latency_s()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        v
    }

    /// Nearest-rank latency percentile (`p` in `(0, 100]`), or `None`
    /// when nothing was served or `p` is out of range. Shared
    /// implementation: [`mp_core::stats::nearest_rank_percentile`].
    pub fn percentile_latency_s(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self.completions.iter().map(|c| c.latency_s()).collect();
        mp_core::stats::nearest_rank_percentile(&latencies, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_latencies(lat: &[f64]) -> ServeReport {
        ServeReport {
            completions: lat
                .iter()
                .enumerate()
                .map(|(i, &l)| Completion {
                    id: i as u64,
                    image: i,
                    prediction: 0,
                    arrival_s: 0.0,
                    dispatch_s: 0.0,
                    completion_s: l,
                })
                .collect(),
            shed: vec![],
            batches: vec![],
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let r = report_with_latencies(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]);
        assert_eq!(r.percentile_latency_s(50.0), Some(0.5));
        assert_eq!(r.percentile_latency_s(95.0), Some(1.0));
        assert_eq!(r.percentile_latency_s(99.0), Some(1.0));
        assert_eq!(r.percentile_latency_s(10.0), Some(0.1));
        assert_eq!(report_with_latencies(&[]).percentile_latency_s(50.0), None);
    }

    #[test]
    fn rates_handle_empty_reports() {
        let empty = ServeReport {
            completions: vec![],
            shed: vec![],
            batches: vec![],
        };
        assert_eq!(empty.shed_rate(), 0.0);
        assert_eq!(empty.makespan_s(), 0.0);
        assert_eq!(empty.throughput_rps(), 0.0);
        assert_eq!(empty.mean_batch_size(), 0.0);
    }
}
