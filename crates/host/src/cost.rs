//! ARM Cortex-A9 host performance model.
//!
//! The paper runs its Caffe networks on the ZC702's dual-core Cortex-A9
//! at 666 MHz with OpenBLAS (no NEON on ARMv7, §III-C). We model the
//! per-image inference time as an affine function of the network's
//! multiply–accumulate count:
//!
//! ```text
//! t_img = base_overhead + macs / mac_rate
//! ```
//!
//! The two constants are calibrated so Models A and B land exactly on
//! the paper's measured Table IV rates (29.68 and 3.63 img/s); Model C
//! is then a genuine out-of-sample prediction, which lands within ~15 %
//! of the paper's 3.09 img/s. The affine form captures the two regimes
//! the measurements show: a fixed per-image framework cost (im2col,
//! pooling, LRN, memory traffic) and a GEMM throughput term.

use serde::{Deserialize, Serialize};

use mp_nn::LayerCost;
use mp_tensor::ShapeError;

use crate::zoo::{self, ModelId};
use mp_tensor::init::TensorRng;

/// Affine per-image cost model of a host CPU.
///
/// # Example
///
/// ```
/// use mp_host::ArmHost;
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let host = ArmHost::calibrated_zc702()?;
/// // A hypothetical 100M-MAC network.
/// let cost = mp_nn::LayerCost::new(100_000_000, 0, 0);
/// assert!(host.images_per_sec(&cost) < 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmHost {
    /// Host description.
    pub name: String,
    /// Fixed per-image overhead in seconds.
    pub base_overhead_s: f64,
    /// Sustained multiply–accumulates per second across all cores.
    pub mac_rate: f64,
}

impl ArmHost {
    /// Creates a host model from raw constants.
    ///
    /// # Panics
    ///
    /// Panics if `mac_rate` is not positive or `base_overhead_s` is
    /// negative.
    pub fn new(name: impl Into<String>, base_overhead_s: f64, mac_rate: f64) -> Self {
        assert!(mac_rate > 0.0, "MAC rate must be positive");
        assert!(base_overhead_s >= 0.0, "overhead must be non-negative");
        Self {
            name: name.into(),
            base_overhead_s,
            mac_rate,
        }
    }

    /// Solves the two model constants from two measured points
    /// `(macs, images_per_sec)`.
    ///
    /// # Panics
    ///
    /// Panics if the two points are degenerate (equal MAC counts) or
    /// produce a non-physical model (negative overhead or rate).
    pub fn calibrated(name: impl Into<String>, point_a: (u64, f64), point_b: (u64, f64)) -> Self {
        let (macs_a, fps_a) = point_a;
        let (macs_b, fps_b) = point_b;
        assert_ne!(macs_a, macs_b, "calibration points must differ in MACs");
        let (t_a, t_b) = (1.0 / fps_a, 1.0 / fps_b);
        let inv_rate = (t_b - t_a) / (macs_b as f64 - macs_a as f64);
        let base = t_a - macs_a as f64 * inv_rate;
        assert!(inv_rate > 0.0, "calibration produced non-positive MAC time");
        assert!(base >= 0.0, "calibration produced negative overhead");
        Self::new(name, base, 1.0 / inv_rate)
    }

    /// The paper's host: dual-core Cortex-A9 at 666 MHz, calibrated on
    /// the measured Table IV rates of Models A and B.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the zoo models cannot be built (which
    /// indicates a bug).
    pub fn calibrated_zc702() -> Result<Self, ShapeError> {
        // Weight initialisation does not affect cost; any seed works.
        let mut rng = TensorRng::seed_from(0);
        let a = zoo::build_paper(ModelId::A, &mut rng)?.total_cost()?;
        let b = zoo::build_paper(ModelId::B, &mut rng)?.total_cost()?;
        Ok(Self::calibrated(
            "dual-core ARM Cortex-A9 @ 666 MHz (OpenBLAS, no NEON)",
            (a.macs, ModelId::A.paper_images_per_sec()),
            (b.macs, ModelId::B.paper_images_per_sec()),
        ))
    }

    /// An ARMv8 host with active NEON (the paper's future-work target):
    /// roughly 4× the sustained GEMM rate and half the overhead.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the zoo models cannot be built.
    pub fn armv8_neon() -> Result<Self, ShapeError> {
        let a9 = Self::calibrated_zc702()?;
        Ok(Self::new(
            "quad-core ARMv8 with NEON",
            a9.base_overhead_s / 2.0,
            a9.mac_rate * 4.0,
        ))
    }

    /// Predicted per-image inference time in seconds.
    pub fn seconds_per_image(&self, cost: &LayerCost) -> f64 {
        self.base_overhead_s + cost.macs as f64 / self.mac_rate
    }

    /// Predicted throughput in images per second.
    pub fn images_per_sec(&self, cost: &LayerCost) -> f64 {
        1.0 / self.seconds_per_image(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_its_points() {
        let host = ArmHost::calibrated("test", (10_000_000, 30.0), (200_000_000, 4.0));
        let a = LayerCost::new(10_000_000, 0, 0);
        let b = LayerCost::new(200_000_000, 0, 0);
        assert!((host.images_per_sec(&a) - 30.0).abs() < 1e-6);
        assert!((host.images_per_sec(&b) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn zc702_matches_table4_for_models_a_and_b() {
        let host = ArmHost::calibrated_zc702().unwrap();
        let mut rng = TensorRng::seed_from(1);
        let a = zoo::build_paper(ModelId::A, &mut rng)
            .unwrap()
            .total_cost()
            .unwrap();
        let b = zoo::build_paper(ModelId::B, &mut rng)
            .unwrap()
            .total_cost()
            .unwrap();
        assert!((host.images_per_sec(&a) - 29.68).abs() < 0.05);
        assert!((host.images_per_sec(&b) - 3.63).abs() < 0.05);
    }

    #[test]
    fn model_c_prediction_is_close_to_paper() {
        let host = ArmHost::calibrated_zc702().unwrap();
        let mut rng = TensorRng::seed_from(2);
        let c = zoo::build_paper(ModelId::C, &mut rng)
            .unwrap()
            .total_cost()
            .unwrap();
        let fps = host.images_per_sec(&c);
        let paper = ModelId::C.paper_images_per_sec();
        let err = (fps - paper).abs() / paper;
        assert!(
            err < 0.25,
            "Model C predicted {fps} vs paper {paper} (err {err:.2})"
        );
    }

    #[test]
    fn more_macs_is_slower() {
        let host = ArmHost::calibrated_zc702().unwrap();
        let small = LayerCost::new(1_000_000, 0, 0);
        let big = LayerCost::new(500_000_000, 0, 0);
        assert!(host.images_per_sec(&small) > host.images_per_sec(&big));
    }

    #[test]
    fn armv8_is_faster() {
        let a9 = ArmHost::calibrated_zc702().unwrap();
        let v8 = ArmHost::armv8_neon().unwrap();
        let cost = LayerCost::new(100_000_000, 0, 0);
        assert!(v8.images_per_sec(&cost) > a9.images_per_sec(&cost) * 2.0);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn degenerate_calibration_rejected() {
        let _ = ArmHost::calibrated("x", (1000, 1.0), (1000, 2.0));
    }

    #[test]
    #[should_panic(expected = "MAC rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArmHost::new("x", 0.0, 0.0);
    }
}
