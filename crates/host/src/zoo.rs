//! The Caffe model zoo of the paper's Table III.
//!
//! Model A is built from Alex Krizhevsky's cuda-convnet CIFAR-10
//! example, Model B is the "Network in Network" model (the paper's
//! reference \[9\]) and Model C is the "All Convolutional Net" (\[10\]).
//! Each is available in the paper's full topology
//! ([`build_paper`]) — used by the performance analysis — and in a
//! reduced `fast` variant ([`build_fast`]) with the same relative depth
//! ordering, which trains in seconds on 16×16 synthetic images for the
//! accuracy experiments.

use serde::{Deserialize, Serialize};

use mp_nn::{Network, NetworkBuilder};
use mp_tensor::init::TensorRng;
use mp_tensor::{Shape, ShapeError};

/// Which of the paper's three host networks to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// cuda-convnet: the shallow, fast classifier (81.4 % in the paper).
    A,
    /// Network in Network (89.3 %).
    B,
    /// All Convolutional Net (90.7 %).
    C,
}

impl ModelId {
    /// All three models, in table order.
    pub const ALL: [ModelId; 3] = [ModelId::A, ModelId::B, ModelId::C];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::A => "Model A (cuda-convnet)",
            ModelId::B => "Model B (Network in Network)",
            ModelId::C => "Model C (All-CNN)",
        }
    }

    /// The paper's measured CIFAR-10 test accuracy (Table IV), 0–1.
    pub fn paper_accuracy(&self) -> f32 {
        match self {
            ModelId::A => 0.814,
            ModelId::B => 0.893,
            ModelId::C => 0.907,
        }
    }

    /// The paper's measured ARM host inference rate (Table IV), img/s.
    pub fn paper_images_per_sec(&self) -> f64 {
        match self {
            ModelId::A => 29.68,
            ModelId::B => 3.63,
            ModelId::C => 3.09,
        }
    }
}

/// Builds the paper's full-size topology for 32×32 RGB inputs.
///
/// # Errors
///
/// Returns [`ShapeError`] if construction fails (indicates a bug in the
/// topology definition).
pub fn build_paper(id: ModelId, rng: &mut TensorRng) -> Result<Network, ShapeError> {
    let input = Shape::nchw(1, 3, 32, 32);
    match id {
        ModelId::A => model_a(input, 1, rng),
        ModelId::B => model_b(input, 1, rng),
        ModelId::C => model_c(input, 1, rng),
    }
}

/// Builds the reduced `fast` variant for 16×16 RGB inputs with channel
/// counts divided by four: same layer pattern and relative depths, but
/// trainable in seconds.
///
/// # Errors
///
/// Returns [`ShapeError`] if construction fails.
pub fn build_fast(id: ModelId, rng: &mut TensorRng) -> Result<Network, ShapeError> {
    let input = Shape::nchw(1, 3, 16, 16);
    match id {
        ModelId::A => model_a(input, 4, rng),
        ModelId::B => model_b(input, 4, rng),
        ModelId::C => model_c(input, 4, rng),
    }
}

fn ch(base: usize, divisor: usize) -> usize {
    (base / divisor).max(8)
}

/// Dropout strength: the paper's Caffe recipes use heavy dropout on the
/// full-width models; the reduced `fast` variants have far less
/// capacity to spare, so they drop proportionally less.
fn drop_p(paper: f32, divisor: usize) -> f32 {
    if divisor > 1 {
        paper * 0.4
    } else {
        paper
    }
}

/// Model A: conv-pool-LRN ×2 then conv-pool, FC-10 (Table III col. 1).
fn model_a(input: Shape, divisor: usize, rng: &mut TensorRng) -> Result<Network, ShapeError> {
    let b: NetworkBuilder = Network::builder(input)
        .conv2d(ch(32, divisor), 5, 1, 2, rng)?
        .max_pool_stride(3, 2)?
        .relu()
        .lrn(3, 5e-5, 0.75, 1.0)?
        .conv2d(ch(32, divisor), 5, 1, 2, rng)?
        .relu()
        .avg_pool(3, 2)?
        .lrn(3, 5e-5, 0.75, 1.0)?
        .conv2d(ch(64, divisor), 5, 1, 2, rng)?
        .relu()
        .avg_pool(3, 2)?
        .flatten();
    Ok(b.linear(10, rng)?.build())
}

/// Model B: three NiN blocks (5×5/1×1/1×1, pool, dropout) ending in a
/// 1×1-conv-10 and global average pooling (Table III col. 2).
fn model_b(input: Shape, divisor: usize, rng: &mut TensorRng) -> Result<Network, ShapeError> {
    let b = Network::builder(input)
        // Block 1
        .conv2d(ch(192, divisor), 5, 1, 2, rng)?
        .relu()
        .conv2d(ch(160, divisor), 1, 1, 0, rng)?
        .relu()
        .conv2d(ch(96, divisor), 1, 1, 0, rng)?
        .relu()
        .max_pool_stride(3, 2)?
        .dropout(drop_p(0.5, divisor), 0xB1)?
        // Block 2
        .conv2d(ch(192, divisor), 5, 1, 2, rng)?
        .relu()
        .conv2d(ch(192, divisor), 1, 1, 0, rng)?
        .relu()
        .conv2d(ch(192, divisor), 1, 1, 0, rng)?
        .relu()
        .max_pool_stride(3, 2)?
        .dropout(drop_p(0.5, divisor), 0xB2)?
        // Block 3
        .conv2d(ch(192, divisor), 3, 1, 1, rng)?
        .relu()
        .conv2d(ch(192, divisor), 1, 1, 0, rng)?
        .relu()
        .conv2d(10, 1, 1, 0, rng)?
        .relu()
        .global_avg_pool();
    Ok(b.build())
}

/// Model C: the All-CNN — stacks of 3×3 convolutions with stride-2
/// "pooling" convolutions, 1×1 heads and global average pooling
/// (Table III col. 3).
fn model_c(input: Shape, divisor: usize, rng: &mut TensorRng) -> Result<Network, ShapeError> {
    let b = Network::builder(input)
        .dropout(drop_p(0.2, divisor), 0xC0)?
        .conv2d(ch(96, divisor), 3, 1, 1, rng)?
        .relu()
        .conv2d(ch(96, divisor), 3, 1, 1, rng)?
        .relu()
        .conv2d(ch(96, divisor), 3, 2, 1, rng)? // stride-2 "pooling" conv
        .relu()
        .dropout(drop_p(0.5, divisor), 0xC1)?
        .conv2d(ch(192, divisor), 3, 1, 1, rng)?
        .relu()
        .conv2d(ch(192, divisor), 3, 1, 1, rng)?
        .relu()
        .conv2d(ch(192, divisor), 3, 2, 1, rng)? // stride-2 "pooling" conv
        .relu()
        .dropout(drop_p(0.5, divisor), 0xC2)?
        .conv2d(ch(192, divisor), 3, 1, 0, rng)?
        .relu()
        .conv2d(ch(192, divisor), 1, 1, 0, rng)?
        .relu()
        .conv2d(10, 1, 1, 0, rng)?
        .relu()
        .global_avg_pool();
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_nn::Mode;
    use mp_tensor::Tensor;

    fn rng() -> TensorRng {
        TensorRng::seed_from(80)
    }

    #[test]
    fn all_paper_models_build_and_classify() {
        for id in ModelId::ALL {
            let net = build_paper(id, &mut rng()).unwrap();
            let out = net
                .output_shape(&Shape::nchw(2, 3, 32, 32))
                .unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert_eq!(out.dims(), &[2, 10], "{}", id.name());
        }
    }

    #[test]
    fn all_fast_models_build_and_classify() {
        for id in ModelId::ALL {
            let mut net = build_fast(id, &mut rng()).unwrap();
            let x = Tensor::zeros(Shape::nchw(2, 3, 16, 16));
            let y = net.forward(&x).unwrap();
            assert_eq!(y.shape().dims(), &[2, 10], "{}", id.name());
        }
    }

    #[test]
    fn depth_ordering_matches_paper() {
        // Compute cost: A ≪ B ≈ C (B and C within 2× of each other).
        let mut r = rng();
        let a = build_paper(ModelId::A, &mut r)
            .unwrap()
            .total_cost()
            .unwrap();
        let b = build_paper(ModelId::B, &mut r)
            .unwrap()
            .total_cost()
            .unwrap();
        let c = build_paper(ModelId::C, &mut r)
            .unwrap()
            .total_cost()
            .unwrap();
        assert!(b.macs > a.macs * 8, "B={} A={}", b.macs, a.macs);
        assert!(c.macs > a.macs * 8, "C={} A={}", c.macs, a.macs);
        let ratio = c.macs as f64 / b.macs as f64;
        assert!((0.5..2.0).contains(&ratio), "C/B ratio {ratio}");
    }

    #[test]
    fn model_a_macs_in_expected_range() {
        // Hand count: ≈ 2.5M + 5.8M + 2.5M + 6K ≈ 10–13M MACs.
        let cost = build_paper(ModelId::A, &mut rng())
            .unwrap()
            .total_cost()
            .unwrap();
        assert!(
            (9_000_000..16_000_000).contains(&cost.macs),
            "Model A MACs {}",
            cost.macs
        );
    }

    #[test]
    fn fast_models_are_much_cheaper() {
        let mut r = rng();
        for id in ModelId::ALL {
            let full = build_paper(id, &mut r).unwrap().total_cost().unwrap();
            let fast = build_fast(id, &mut r).unwrap().total_cost().unwrap();
            assert!(
                fast.macs * 10 < full.macs,
                "{}: fast {} vs full {}",
                id.name(),
                fast.macs,
                full.macs
            );
        }
    }

    #[test]
    fn fast_models_train_one_step() {
        use mp_nn::loss::softmax_cross_entropy;
        use mp_nn::train::Sgd;
        let mut r = rng();
        for id in ModelId::ALL {
            let mut net = build_fast(id, &mut r).unwrap();
            let x = r.normal(Shape::nchw(4, 3, 16, 16), 0.0, 1.0);
            let logits = net.forward_mode(&x, Mode::Train).unwrap();
            let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
            net.backward(&grad).unwrap();
            Sgd::new(0.01).step(&mut net);
        }
    }

    #[test]
    fn paper_reference_values_exposed() {
        assert_eq!(ModelId::A.paper_accuracy(), 0.814);
        assert_eq!(ModelId::C.paper_images_per_sec(), 3.09);
        assert_eq!(ModelId::ALL.len(), 3);
    }
}
