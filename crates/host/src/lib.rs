//! # mp-host
//!
//! The host side of the heterogeneous system: the floating-point Caffe
//! networks of the paper's Table III and a performance model of the
//! dual-core ARM Cortex-A9 they run on.
//!
//! - [`zoo`] builds the three CIFAR-10 classifiers as [`mp_nn::Network`]s:
//!   Model A (Krizhevsky's cuda-convnet), Model B (Network in Network)
//!   and Model C (All Convolutional Net), in both the paper's full-size
//!   topologies and reduced "fast" variants that train quickly on the
//!   synthetic dataset;
//! - [`cost`] predicts images/second on the ZC702's ARM host from each
//!   network's multiply–accumulate count, calibrated on the paper's
//!   measured Table IV rates for Models A and B (Model C is then a
//!   genuine prediction of the model, landing within ~15 % of the
//!   paper).
//!
//! # Example
//!
//! ```
//! use mp_host::zoo::{self, ModelId};
//! use mp_host::cost::ArmHost;
//! use mp_tensor::init::TensorRng;
//!
//! # fn main() -> Result<(), mp_tensor::ShapeError> {
//! let mut rng = TensorRng::seed_from(0);
//! let model_a = zoo::build_paper(ModelId::A, &mut rng)?;
//! let host = ArmHost::calibrated_zc702()?;
//! let fps = host.images_per_sec(&model_a.total_cost()?);
//! assert!((fps - 29.68).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cost;
pub mod zoo;

pub use cost::ArmHost;
pub use zoo::ModelId;
