//! # mp-dataset
//!
//! Image classification datasets for the `multiprec` experiments.
//!
//! The paper evaluates on CIFAR-10 (32×32 RGB, 10 classes, 50 000 train /
//! 10 000 test images). Real CIFAR-10 is not redistributable inside this
//! repository, so the primary dataset is [`SynthImages`]: a deterministic
//! synthetic 10-class image distribution with the same geometry and
//! tunable difficulty knobs (pixel noise, class blending, spatial jitter).
//! When the real dataset *is* available on disk in its standard binary
//! layout, [`cifar10::load`] reads it into the same [`Dataset`] type so
//! every downstream experiment runs unchanged on either source.
//!
//! # Example
//!
//! ```
//! use mp_dataset::SynthSpec;
//!
//! # fn main() -> Result<(), mp_dataset::DatasetError> {
//! let spec = SynthSpec::tiny(); // 8×8 images for fast tests
//! let data = spec.generate(100)?;
//! assert_eq!(data.len(), 100);
//! assert_eq!(data.images().shape().dims()[1..], [3, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cifar10;
mod dataset;
mod error;
mod synth;

pub use dataset::{Batches, Dataset};
pub use error::DatasetError;
pub use synth::{SynthImages, SynthSpec};
