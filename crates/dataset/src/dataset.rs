use mp_tensor::{Shape, ShapeError, Tensor};

use crate::DatasetError;

/// A labelled image classification dataset (`[N, C, H, W]` + labels).
///
/// # Example
///
/// ```
/// use mp_dataset::Dataset;
/// use mp_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), mp_dataset::DatasetError> {
/// let images = Tensor::zeros(Shape::nchw(4, 1, 2, 2));
/// let data = Dataset::new(images, vec![0, 1, 0, 1], 2)?;
/// let (train, test) = data.split(0.5)?;
/// assert_eq!(train.len(), 2);
/// assert_eq!(test.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an NCHW image tensor and per-image labels.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if the tensor is not rank-4, counts
    /// mismatch, or a label is `>= num_classes`.
    pub fn new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if images.shape().rank() != 4 {
            return Err(ShapeError::new(
                "Dataset::new",
                format!("expected NCHW images, got {}", images.shape()),
            )
            .into());
        }
        if images.shape().dim(0) != labels.len() {
            return Err(ShapeError::new(
                "Dataset::new",
                format!(
                    "{} images vs {} labels",
                    images.shape().dim(0),
                    labels.len()
                ),
            )
            .into());
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DatasetError::InvalidSpec(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Self {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The `[N, C, H, W]` image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Per-image class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-image shape `[1, C, H, W]`.
    pub fn image_shape(&self) -> Shape {
        let s = self.images.shape();
        Shape::nchw(1, s.dim(1), s.dim(2), s.dim(3))
    }

    /// Splits into `(first, second)` at `fraction` of the examples,
    /// preserving order.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if `fraction` is outside `[0, 1]`.
    pub fn split(&self, fraction: f32) -> Result<(Dataset, Dataset), DatasetError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(DatasetError::InvalidSpec(format!(
                "split fraction {fraction} must be in [0,1]"
            )));
        }
        let cut = (self.len() as f32 * fraction).round() as usize;
        Ok((self.take_range(0..cut)?, self.take_range(cut..self.len())?))
    }

    /// Selects the first `n` examples (or all if fewer).
    ///
    /// # Errors
    ///
    /// Propagates internal shape errors (which indicate a bug).
    pub fn take(&self, n: usize) -> Result<Dataset, DatasetError> {
        self.take_range(0..n.min(self.len()))
    }

    /// Selects a contiguous index range.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if the range is out of bounds.
    pub fn take_range(&self, range: std::ops::Range<usize>) -> Result<Dataset, DatasetError> {
        if range.end > self.len() || range.start > range.end {
            return Err(DatasetError::InvalidSpec(format!(
                "range {range:?} out of bounds for {} examples",
                self.len()
            )));
        }
        let s = self.images.shape();
        let stride = s.dim(1) * s.dim(2) * s.dim(3);
        let data = self.images.as_slice()[range.start * stride..range.end * stride].to_vec();
        let images =
            Tensor::from_vec(Shape::nchw(range.len(), s.dim(1), s.dim(2), s.dim(3)), data)?;
        Ok(Dataset {
            images,
            labels: self.labels[range].to_vec(),
            num_classes: self.num_classes,
        })
    }

    /// Gathers the examples at `indices` (in the given order, repeats
    /// allowed) into a new dataset — the batch-assembly primitive the
    /// serving layer uses to coalesce queued requests.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Result<Dataset, DatasetError> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.len()) {
            return Err(DatasetError::InvalidSpec(format!(
                "index {bad} out of bounds for {} examples",
                self.len()
            )));
        }
        let s = self.images.shape();
        let stride = s.dim(1) * s.dim(2) * s.dim(3);
        let mut data = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images.as_slice()[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        let images = Tensor::from_vec(
            Shape::nchw(indices.len(), s.dim(1), s.dim(2), s.dim(3)),
            data,
        )?;
        Ok(Dataset {
            images,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Iterates over contiguous minibatches of up to `batch_size`
    /// images, yielding `(images, labels)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn iter_batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        Batches {
            dataset: self,
            batch_size,
            next: 0,
        }
    }

    /// Per-channel mean and standard deviation over the whole set —
    /// the statistics a normalisation layer or loader would fold in.
    pub fn channel_stats(&self) -> Vec<(f32, f32)> {
        let s = self.images.shape();
        let (n, c, plane) = (s.dim(0), s.dim(1), s.dim(2) * s.dim(3));
        let mut stats = Vec::with_capacity(c);
        for ch in 0..c {
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for img in 0..n {
                let base = (img * c + ch) * plane;
                for &x in &self.images.as_slice()[base..base + plane] {
                    sum += x as f64;
                    sq += (x as f64) * (x as f64);
                }
            }
            let count = (n * plane).max(1) as f64;
            let mean = sum / count;
            let var = (sq / count - mean * mean).max(0.0);
            stats.push((mean as f32, var.sqrt() as f32));
        }
        stats
    }
}

/// Iterator over a dataset's contiguous minibatches.
///
/// Produced by [`Dataset::iter_batches`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    next: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.dataset.len() {
            return None;
        }
        let end = (self.next + self.batch_size).min(self.dataset.len());
        let chunk = self
            .dataset
            .take_range(self.next..end)
            .expect("in-bounds by construction");
        self.next = end;
        Some((chunk.images, chunk.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::from_fn(Shape::nchw(n, 1, 2, 2), |i| i as f32);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let images = Tensor::zeros(Shape::nchw(2, 1, 2, 2));
        assert!(Dataset::new(images.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::new(Tensor::zeros([2, 4]), vec![0, 1], 2).is_err());
        assert!(Dataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn split_partitions_examples() {
        let d = toy(10);
        let (a, b) = d.split(0.7).unwrap();
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        // First image of b is image 7 of d.
        assert_eq!(b.images().as_slice()[0], d.images().as_slice()[7 * 4]);
        assert_eq!(b.labels()[0], d.labels()[7]);
        assert!(d.split(1.5).is_err());
    }

    #[test]
    fn take_clamps() {
        let d = toy(5);
        assert_eq!(d.take(3).unwrap().len(), 3);
        assert_eq!(d.take(99).unwrap().len(), 5);
    }

    #[test]
    fn class_counts_sum_to_len() {
        let d = toy(10);
        let counts = d.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    fn image_shape_is_single_image() {
        let d = toy(4);
        assert_eq!(d.image_shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn batches_cover_dataset_in_order() {
        let d = toy(7);
        let batches: Vec<_> = d.iter_batches(3).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].1.len(), 3);
        assert_eq!(batches[2].1.len(), 1);
        let all_labels: Vec<usize> = batches.iter().flat_map(|(_, l)| l.clone()).collect();
        assert_eq!(all_labels, d.labels());
        let first_pixel = batches[1].0.as_slice()[0];
        assert_eq!(first_pixel, d.images().as_slice()[3 * 4]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let d = toy(4);
        let _ = d.iter_batches(0);
    }

    #[test]
    fn channel_stats_match_hand_computation() {
        let images = Tensor::from_vec(Shape::nchw(2, 1, 1, 2), vec![0.0, 2.0, 4.0, 6.0]).unwrap();
        let d = Dataset::new(images, vec![0, 1], 2).unwrap();
        let stats = d.channel_stats();
        assert_eq!(stats.len(), 1);
        assert!((stats[0].0 - 3.0).abs() < 1e-6);
        assert!((stats[0].1 - 5.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn select_gathers_in_order_with_repeats() {
        let d = toy(5);
        let sel = d.select(&[4, 0, 4]).unwrap();
        assert_eq!(sel.len(), 3);
        assert_eq!(sel.labels(), &[d.labels()[4], d.labels()[0], d.labels()[4]]);
        assert_eq!(sel.images().as_slice()[0], d.images().as_slice()[4 * 4]);
        assert_eq!(sel.images().as_slice()[4], d.images().as_slice()[0]);
        assert!(d.select(&[5]).is_err());
        let empty = d.select(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.num_classes(), d.num_classes());
    }

    #[test]
    fn take_range_bounds_checked() {
        let d = toy(4);
        assert!(d.take_range(2..6).is_err());
        assert_eq!(d.take_range(1..3).unwrap().len(), 2);
    }
}
