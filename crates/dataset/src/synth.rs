//! SynthImages: the deterministic CIFAR-10 stand-in.
//!
//! Each class is defined by a *prototype image* composed of three
//! structured components chosen to give convolutional networks exploitable
//! local structure (oriented texture, a coloured blob, a global colour
//! cast), plus per-sample augmentations that control task difficulty:
//!
//! - **pixel noise** (`noise_std`) — the main difficulty knob;
//! - **class blending** (`blend`) — each sample mixes in a random other
//!   class's prototype, creating the hard, ambiguous examples on which a
//!   binarised network loses the most accuracy (the regime the paper's
//!   DMU exists to catch);
//! - **spatial jitter** (`max_shift`) — toroidal shifts;
//! - **photometric jitter** — brightness/contrast scaling.
//!
//! The generator is fully determined by [`SynthSpec`] (including its
//! seed), so every experiment in EXPERIMENTS.md is reproducible bit-exact.

use serde::{Deserialize, Serialize};

use mp_tensor::init::TensorRng;
use mp_tensor::{Shape, Tensor};

use crate::{Dataset, DatasetError};

/// Specification of a [`SynthImages`] distribution.
///
/// # Example
///
/// ```
/// use mp_dataset::SynthSpec;
///
/// # fn main() -> Result<(), mp_dataset::DatasetError> {
/// let data = SynthSpec::default().generate(32)?;
/// assert_eq!(data.images().shape().dims(), &[32, 3, 32, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Number of classes (CIFAR-10: 10).
    pub classes: usize,
    /// Colour channels (CIFAR-10: 3).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Maximum toroidal shift in pixels (each axis, uniform).
    pub max_shift: usize,
    /// Fraction of a random other class's prototype mixed into each
    /// sample (`0.0` = perfectly separable, `0.5` = maximally ambiguous).
    pub blend: f32,
    /// Root seed for prototypes and sampling.
    pub seed: u64,
}

impl Default for SynthSpec {
    /// CIFAR-10 geometry at a difficulty calibrated so that the paper's
    /// accuracy ordering (BNN < Model A < Model B < Model C) reproduces.
    fn default() -> Self {
        Self {
            classes: 10,
            channels: 3,
            height: 32,
            width: 32,
            noise_std: 0.68,
            max_shift: 3,
            blend: 0.33,
            seed: 0xC1FA_2018,
        }
    }
}

impl SynthSpec {
    /// An 8×8 three-channel variant for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            height: 8,
            width: 8,
            max_shift: 1,
            ..Self::default()
        }
    }

    /// A 16×16 variant used by the `Fast` experiment profile.
    pub fn fast() -> Self {
        Self {
            height: 16,
            width: 16,
            max_shift: 2,
            ..Self::default()
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] for zero sizes or
    /// out-of-range knobs.
    pub fn validate(&self) -> Result<(), DatasetError> {
        if self.classes == 0 || self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(DatasetError::InvalidSpec(
                "classes, channels, height and width must be positive".into(),
            ));
        }
        if !(0.0..=0.5).contains(&self.blend) {
            return Err(DatasetError::InvalidSpec(format!(
                "blend {} must be in [0, 0.5]",
                self.blend
            )));
        }
        if self.noise_std < 0.0 {
            return Err(DatasetError::InvalidSpec(
                "noise_std must be non-negative".into(),
            ));
        }
        if self.max_shift >= self.width.min(self.height) {
            return Err(DatasetError::InvalidSpec(format!(
                "max_shift {} must be smaller than the image",
                self.max_shift
            )));
        }
        Ok(())
    }

    /// Builds the generator for this specification.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] when [`validate`](Self::validate) fails.
    pub fn build(&self) -> Result<SynthImages, DatasetError> {
        SynthImages::new(self.clone())
    }

    /// Generates `n` labelled samples (uniform class distribution).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] when the spec is invalid.
    pub fn generate(&self, n: usize) -> Result<Dataset, DatasetError> {
        self.build()?.generate(n)
    }
}

/// Deterministic generator over a [`SynthSpec`] distribution.
#[derive(Debug, Clone)]
pub struct SynthImages {
    spec: SynthSpec,
    prototypes: Vec<Tensor>,
    rng: TensorRng,
}

impl SynthImages {
    /// Creates a generator, materialising the class prototypes.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] when the spec is invalid.
    pub fn new(spec: SynthSpec) -> Result<Self, DatasetError> {
        spec.validate()?;
        let mut rng = TensorRng::seed_from(spec.seed);
        let prototypes = (0..spec.classes)
            .map(|class| Self::prototype(&spec, class, &mut rng))
            .collect();
        Ok(Self {
            spec,
            prototypes,
            rng,
        })
    }

    /// The generator's specification.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// The noiseless prototype image of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= spec.classes`.
    pub fn class_prototype(&self, class: usize) -> &Tensor {
        &self.prototypes[class]
    }

    fn prototype(spec: &SynthSpec, class: usize, rng: &mut TensorRng) -> Tensor {
        let (c, h, w) = (spec.channels, spec.height, spec.width);
        // Class-specific structure parameters. Derived from the class index
        // (stable across runs) with a pinch of seeded randomness for phases.
        let theta = std::f32::consts::PI * class as f32 / spec.classes as f32;
        let freq = 1.5 + (class % 5) as f32;
        let (dir_x, dir_y) = (theta.cos(), theta.sin());
        let phase: f32 = rng.next_uniform(0.0, std::f32::consts::TAU);
        // Blob centre on a circle around the image centre.
        let angle = std::f32::consts::TAU * class as f32 / spec.classes as f32;
        let bx = 0.5 + 0.25 * angle.cos();
        let by = 0.5 + 0.25 * angle.sin();
        let blob_r2 = 0.03 + 0.01 * (class % 3) as f32;
        let mut img = Tensor::zeros(Shape::nchw(1, c, h, w));
        for ch in 0..c {
            // Per-channel colour cast: a rotating "hue" pattern.
            let cast = (std::f32::consts::TAU * (class as f32 / spec.classes as f32)
                + ch as f32 * 2.1)
                .cos()
                * 0.4;
            let chphase = phase + ch as f32 * 0.7;
            for y in 0..h {
                for x in 0..w {
                    let u = x as f32 / w as f32;
                    let v = y as f32 / h as f32;
                    let texture =
                        (std::f32::consts::TAU * freq * (u * dir_x + v * dir_y) + chphase).sin()
                            * 0.5;
                    let d2 = (u - bx) * (u - bx) + (v - by) * (v - by);
                    let blob = (-d2 / blob_r2).exp() * 0.8;
                    let val = cast + texture + blob;
                    img.set(&[0, ch, y, x], val)
                        .expect("in-bounds by construction");
                }
            }
        }
        img
    }

    /// Draws one sample of `class`, returning a `[1, C, H, W]` image.
    ///
    /// # Panics
    ///
    /// Panics if `class >= spec.classes`.
    pub fn sample(&mut self, class: usize) -> Tensor {
        assert!(class < self.spec.classes, "class out of range");
        let (c, h, w) = (self.spec.channels, self.spec.height, self.spec.width);
        // Pick a distractor class to blend in.
        let blend = self.spec.blend;
        let other = if self.spec.classes > 1 && blend > 0.0 {
            let mut o = self.rng.next_index(self.spec.classes - 1);
            if o >= class {
                o += 1;
            }
            o
        } else {
            class
        };
        // Toroidal shift.
        let max_shift = self.spec.max_shift;
        let (sx, sy) = if max_shift > 0 {
            (
                self.rng.next_index(2 * max_shift + 1) as isize - max_shift as isize,
                self.rng.next_index(2 * max_shift + 1) as isize - max_shift as isize,
            )
        } else {
            (0, 0)
        };
        // Photometric jitter.
        let gain = self.rng.next_uniform(0.85, 1.15);
        let bias = self.rng.next_uniform(-0.1, 0.1);
        let noise_std = self.spec.noise_std;
        let proto = &self.prototypes[class];
        let distractor = &self.prototypes[other];
        let mut img = Tensor::zeros(Shape::nchw(1, c, h, w));
        for ch in 0..c {
            for y in 0..h {
                let src_y = (y as isize + sy).rem_euclid(h as isize) as usize;
                for x in 0..w {
                    let src_x = (x as isize + sx).rem_euclid(w as isize) as usize;
                    let base = proto
                        .at(&[0, ch, src_y, src_x])
                        .expect("in-bounds by construction");
                    let mix = distractor
                        .at(&[0, ch, src_y, src_x])
                        .expect("in-bounds by construction");
                    let clean = (1.0 - blend) * base + blend * mix;
                    let noisy = gain * clean + bias + self.rng.next_gaussian(0.0, noise_std);
                    img.set(&[0, ch, y, x], noisy)
                        .expect("in-bounds by construction");
                }
            }
        }
        img
    }

    /// Generates `n` samples with labels cycling through the classes
    /// (so the class distribution is uniform up to rounding), then
    /// shuffles.
    ///
    /// # Errors
    ///
    /// Propagates internal shape errors (which indicate a bug).
    pub fn generate(&mut self, n: usize) -> Result<Dataset, DatasetError> {
        let mut labels: Vec<usize> = (0..n).map(|i| i % self.spec.classes).collect();
        self.rng.shuffle(&mut labels);
        let items: Vec<Tensor> = labels.iter().map(|&l| self.sample(l)).collect();
        let images = if items.is_empty() {
            Tensor::zeros(Shape::nchw(
                0,
                self.spec.channels,
                self.spec.height,
                self.spec.width,
            ))
        } else {
            Tensor::stack_batch(&items)?
        };
        Dataset::new(images, labels, self.spec.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_cifar_geometry() {
        let s = SynthSpec::default();
        assert_eq!((s.classes, s.channels, s.height, s.width), (10, 3, 32, 32));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = SynthSpec::tiny();
        s.classes = 0;
        assert!(s.validate().is_err());
        let mut s = SynthSpec::tiny();
        s.blend = 0.6;
        assert!(s.validate().is_err());
        let mut s = SynthSpec::tiny();
        s.noise_std = -1.0;
        assert!(s.validate().is_err());
        let mut s = SynthSpec::tiny();
        s.max_shift = 8;
        assert!(s.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthSpec::tiny().generate(20).unwrap();
        let b = SynthSpec::tiny().generate(20).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = SynthSpec::tiny();
        let a = spec.generate(10).unwrap();
        spec.seed += 1;
        let b = spec.generate(10).unwrap();
        assert_ne!(a.images(), b.images());
    }

    #[test]
    fn labels_are_roughly_uniform() {
        let d = SynthSpec::tiny().generate(200).unwrap();
        for &count in &d.class_counts() {
            assert_eq!(count, 20);
        }
    }

    #[test]
    fn prototypes_are_distinct() {
        let gen = SynthSpec::tiny().build().unwrap();
        let p0 = gen.class_prototype(0);
        let p1 = gen.class_prototype(1);
        let diff: f32 = p0
            .iter()
            .zip(p1.iter())
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f32>()
            / p0.len() as f32;
        assert!(diff > 0.1, "prototype mean abs diff {diff}");
    }

    #[test]
    fn noise_increases_sample_spread() {
        let mut quiet_spec = SynthSpec::tiny();
        quiet_spec.noise_std = 0.01;
        quiet_spec.blend = 0.0;
        quiet_spec.max_shift = 0;
        let mut noisy_spec = quiet_spec.clone();
        noisy_spec.noise_std = 1.0;
        let spread = |spec: &SynthSpec| {
            let mut g = spec.build().unwrap();
            let proto = g.class_prototype(0).clone();
            let s = g.sample(0);
            s.iter()
                .zip(proto.iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                / s.len() as f32
        };
        assert!(spread(&noisy_spec) > spread(&quiet_spec) * 10.0);
    }

    #[test]
    fn zero_samples_supported() {
        let d = SynthSpec::tiny().generate(0).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn sample_rejects_bad_class() {
        let mut g = SynthSpec::tiny().build().unwrap();
        let _ = g.sample(10);
    }
}
