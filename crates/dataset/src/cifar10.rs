//! Loader for the real CIFAR-10 binary distribution.
//!
//! When the standard `cifar-10-batches-bin` directory is available on
//! disk, these functions read it into a [`Dataset`] so every experiment
//! can run on the paper's actual data instead of [`SynthImages`]. Each
//! record in the binary format is `1` label byte followed by `3072` pixel
//! bytes (32×32 red plane, then green, then blue), which maps directly
//! onto our NCHW layout.
//!
//! [`SynthImages`]: crate::SynthImages

use std::fs;
use std::path::Path;

use mp_tensor::{Shape, Tensor};

use crate::{Dataset, DatasetError};

/// Image edge length.
pub const EDGE: usize = 32;
/// Colour channels.
pub const CHANNELS: usize = 3;
/// Classes.
pub const CLASSES: usize = 10;
/// Bytes per record: 1 label + 3·32·32 pixels.
pub const RECORD_BYTES: usize = 1 + CHANNELS * EDGE * EDGE;

/// CIFAR-10 class names, in label order.
pub const CLASS_NAMES: [&str; CLASSES] = [
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
];

/// Parses one or more concatenated CIFAR-10 binary records.
///
/// Pixels are scaled from `[0, 255]` to `[-1, 1]`, the input range the
/// binarised network's first layer expects.
///
/// # Errors
///
/// Returns [`DatasetError::Corrupt`] if `bytes` is not a whole number of
/// records or a label is out of range.
pub fn parse_records(bytes: &[u8]) -> Result<Dataset, DatasetError> {
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(DatasetError::Corrupt(format!(
            "{} bytes is not a multiple of the {RECORD_BYTES}-byte record size",
            bytes.len()
        )));
    }
    let n = bytes.len() / RECORD_BYTES;
    let mut labels = Vec::with_capacity(n);
    let mut pixels = Vec::with_capacity(n * CHANNELS * EDGE * EDGE);
    for rec in bytes.chunks_exact(RECORD_BYTES) {
        let label = rec[0] as usize;
        if label >= CLASSES {
            return Err(DatasetError::Corrupt(format!(
                "label byte {label} out of range"
            )));
        }
        labels.push(label);
        pixels.extend(rec[1..].iter().map(|&b| b as f32 / 127.5 - 1.0));
    }
    let images = Tensor::from_vec(Shape::nchw(n, CHANNELS, EDGE, EDGE), pixels)?;
    Dataset::new(images, labels, CLASSES)
}

/// Loads the standard CIFAR-10 binary directory.
///
/// Reads `data_batch_1.bin` … `data_batch_5.bin` as the training set and
/// `test_batch.bin` as the test set, returning `(train, test)`.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] when files are missing and
/// [`DatasetError::Corrupt`] when their contents are malformed.
pub fn load(dir: impl AsRef<Path>) -> Result<(Dataset, Dataset), DatasetError> {
    let dir = dir.as_ref();
    let mut train_bytes = Vec::new();
    for i in 1..=5 {
        train_bytes.extend(fs::read(dir.join(format!("data_batch_{i}.bin")))?);
    }
    let test_bytes = fs::read(dir.join("test_batch.bin"))?;
    Ok((parse_records(&train_bytes)?, parse_records(&test_bytes)?))
}

/// Returns `true` when `dir` looks like a CIFAR-10 binary directory.
pub fn is_available(dir: impl AsRef<Path>) -> bool {
    let dir = dir.as_ref();
    (1..=5).all(|i| dir.join(format!("data_batch_{i}.bin")).exists())
        && dir.join("test_batch.bin").exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_record(label: u8, fill: u8) -> Vec<u8> {
        let mut rec = vec![label];
        rec.extend(std::iter::repeat_n(fill, RECORD_BYTES - 1));
        rec
    }

    #[test]
    fn parses_single_record() {
        let rec = fake_record(3, 255);
        let d = parse_records(&rec).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.labels(), &[3]);
        // 255 maps to 1.0.
        assert!(d.images().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn pixel_scaling_covers_range() {
        let mut bytes = fake_record(0, 0);
        bytes.extend(fake_record(1, 128));
        let d = parse_records(&bytes).unwrap();
        let first = d.images().as_slice()[0];
        assert!((first + 1.0).abs() < 1e-6); // 0 → −1
        let second = d.images().as_slice()[CHANNELS * EDGE * EDGE];
        assert!(second.abs() < 0.01); // 128 → ≈0
    }

    #[test]
    fn rejects_truncated_and_bad_labels() {
        assert!(matches!(
            parse_records(&[0u8; 100]),
            Err(DatasetError::Corrupt(_))
        ));
        let rec = fake_record(10, 0);
        assert!(matches!(parse_records(&rec), Err(DatasetError::Corrupt(_))));
    }

    #[test]
    fn channel_planes_map_to_nchw() {
        // Red plane = 255, green = 0, blue = 128.
        let mut rec = vec![0u8];
        rec.extend(std::iter::repeat_n(255u8, EDGE * EDGE));
        rec.extend(std::iter::repeat_n(0u8, EDGE * EDGE));
        rec.extend(std::iter::repeat_n(128u8, EDGE * EDGE));
        let d = parse_records(&rec).unwrap();
        assert!((d.images().at(&[0, 0, 0, 0]).unwrap() - 1.0).abs() < 1e-6);
        assert!((d.images().at(&[0, 1, 16, 16]).unwrap() + 1.0).abs() < 1e-6);
        assert!(d.images().at(&[0, 2, 31, 31]).unwrap().abs() < 0.01);
    }

    #[test]
    fn missing_directory_reports_io() {
        assert!(matches!(
            load("/nonexistent/cifar"),
            Err(DatasetError::Io(_))
        ));
        assert!(!is_available("/nonexistent/cifar"));
    }

    #[test]
    fn class_names_cover_all_labels() {
        assert_eq!(CLASS_NAMES.len(), CLASSES);
        assert_eq!(CLASS_NAMES[0], "airplane");
        assert_eq!(CLASS_NAMES[9], "truck");
    }
}
