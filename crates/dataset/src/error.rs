use std::error::Error;
use std::fmt;
use std::io;

use mp_tensor::ShapeError;

/// Errors raised while generating or loading datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// A tensor shape was inconsistent (bug or bad specification).
    Shape(ShapeError),
    /// An on-disk dataset could not be read.
    Io(io::Error),
    /// The dataset specification is invalid (e.g. zero classes).
    InvalidSpec(String),
    /// An on-disk dataset file had unexpected contents.
    Corrupt(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Shape(e) => write!(f, "{e}"),
            DatasetError::Io(e) => write!(f, "dataset io error: {e}"),
            DatasetError::InvalidSpec(msg) => write!(f, "invalid dataset spec: {msg}"),
            DatasetError::Corrupt(msg) => write!(f, "corrupt dataset file: {msg}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Shape(e) => Some(e),
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for DatasetError {
    fn from(e: ShapeError) -> Self {
        DatasetError::Shape(e)
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let variants: Vec<DatasetError> = vec![
            ShapeError::new("x", "y").into(),
            io::Error::new(io::ErrorKind::NotFound, "gone").into(),
            DatasetError::InvalidSpec("zero classes".into()),
            DatasetError::Corrupt("short file".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let e: DatasetError = ShapeError::new("a", "b").into();
        assert!(e.source().is_some());
        assert!(DatasetError::InvalidSpec("x".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
