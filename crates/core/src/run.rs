//! The unified run configuration for the heterogeneous pipeline.
//!
//! Earlier revisions grew a method per execution variant
//! (`run`, `run_parallel`, `run_parallel_with`, plus the
//! `TrainedSystem::run_pipeline*` trio). [`RunOptions`] replaces them
//! with one builder consumed by
//! [`MultiPrecisionPipeline::execute`](crate::pipeline::MultiPrecisionPipeline::execute):
//! pick a [`Concurrency`], optionally override the threshold and host
//! parallelism, attach a fault plan / degradation policy, and plug in an
//! [`mp_obs::Recorder`] for zero-cost-when-disabled instrumentation.
//!
//! # Example
//!
//! ```no_run
//! use mp_core::{MultiPrecisionPipeline, PipelineTiming, RunOptions};
//! use mp_obs::SharedRecorder;
//! # fn run(
//! #     pipeline: &MultiPrecisionPipeline<'_>,
//! #     host: &mp_nn::Network,
//! #     data: &mp_dataset::Dataset,
//! # ) -> Result<(), mp_core::CoreError> {
//! let rec = SharedRecorder::new();
//! let opts = RunOptions::new(PipelineTiming::new(1.0 / 430.15, 1.0 / 29.68, 100))
//!     .threaded()
//!     .with_host_accuracy(0.88)
//!     .with_recorder(&rec);
//! let result = pipeline.execute(host, data, &opts)?;
//! println!("{} reruns, {:?}", result.rerun_count, rec.report().counters);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use mp_int::QuantBnn;
use mp_obs::{Recorder, NULL_RECORDER};
use mp_tensor::Parallelism;

use crate::cascade::CascadePolicy;
use crate::fault::{DegradationPolicy, FaultPlan};
use crate::pipeline::PipelineTiming;

/// How [`execute`](crate::pipeline::MultiPrecisionPipeline::execute)
/// drives the two processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// Single-threaded functional run with **modelled** timing: the
    /// paper's `async(1)`/`wait(1)` batch overlap is replayed
    /// arithmetically. Fault injection is not available in this mode.
    #[default]
    Modeled,
    /// The FPGA simulator and the host network run on separate threads
    /// connected by a bounded channel (Fig. 2's concurrent structure);
    /// wall-clock time is reported and fault injection is available.
    Threaded,
}

/// Numeric precision of the low-precision classification stage — a
/// first-class axis of
/// [`execute`](crate::pipeline::MultiPrecisionPipeline::execute)
/// alongside [`Concurrency`].
///
/// The quantized and float corners are *modeled-only*: they price
/// throughput through the MPIC cost LUT / the host timing constants
/// rather than simulating a second accelerator thread, so combining
/// them with [`Concurrency::Threaded`] is an
/// [`CoreError`](crate::CoreError)`::InvalidConfig`.
#[derive(Debug, Clone, Default)]
pub enum Precision {
    /// The shipped 1-bit XNOR datapath (`HardwareBnn`). The default,
    /// available under both executors.
    #[default]
    OneBit,
    /// The multi-precision integer path at the network's per-layer
    /// `(a_bits, w_bits)` widths: the [`QuantBnn`] classifies every
    /// image, the DMU flags on its normalised scores, and the modeled
    /// BNN batch time is scaled by the MAC-weighted MPIC cost factor.
    Quantized(Arc<QuantBnn>),
    /// The float32 corner: every image is re-inferred by the host
    /// network (the DMU stage still runs for accounting, but keeps
    /// nothing), so accuracy and throughput degenerate to the host
    /// model's.
    Float32,
}

impl Precision {
    /// Stable human-readable label: `1bit`, the per-layer precision
    /// string (e.g. `a8w4-a2w4-…`), or `float32`.
    pub fn label(&self) -> String {
        match self {
            Precision::OneBit => "1bit".to_owned(),
            Precision::Quantized(q) => q.precision().to_string(),
            Precision::Float32 => "float32".to_owned(),
        }
    }

    /// Whether this is the default 1-bit datapath.
    pub fn is_one_bit(&self) -> bool {
        matches!(self, Precision::OneBit)
    }
}

/// Builder-style configuration for one pipeline run.
///
/// The lifetime `'r` is the borrow of the attached [`Recorder`];
/// options built without [`with_recorder`](Self::with_recorder) are
/// `RunOptions<'static>` (they point at the shared
/// [`NULL_RECORDER`]).
pub struct RunOptions<'r> {
    timing: PipelineTiming,
    threshold: Option<f32>,
    cascade: Option<CascadePolicy>,
    parallelism: Option<Parallelism>,
    concurrency: Concurrency,
    precision: Precision,
    plan: FaultPlan,
    policy: DegradationPolicy,
    host_global_accuracy: f64,
    recorder: &'r dyn Recorder,
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("timing", &self.timing)
            .field("threshold", &self.threshold)
            .field("cascade", &self.cascade)
            .field("parallelism", &self.parallelism)
            .field("concurrency", &self.concurrency)
            .field("precision", &self.precision.label())
            .field("plan", &self.plan)
            .field("policy", &self.policy)
            .field("host_global_accuracy", &self.host_global_accuracy)
            .field("recorder_enabled", &self.recorder.enabled())
            .finish()
    }
}

impl Clone for RunOptions<'_> {
    fn clone(&self) -> Self {
        Self {
            timing: self.timing,
            threshold: self.threshold,
            cascade: self.cascade.clone(),
            parallelism: self.parallelism,
            concurrency: self.concurrency,
            precision: self.precision.clone(),
            plan: self.plan.clone(),
            policy: self.policy,
            host_global_accuracy: self.host_global_accuracy,
            recorder: self.recorder,
        }
    }
}

impl RunOptions<'static> {
    /// Options for a [`Concurrency::Modeled`] run at `timing`, with the
    /// pipeline's own threshold and parallelism, no faults, the default
    /// degradation policy, a host global accuracy of `0.0` (the eq. (2)
    /// prediction is meaningless until
    /// [`with_host_accuracy`](Self::with_host_accuracy) supplies the
    /// real value), and the [`NULL_RECORDER`].
    pub fn new(timing: PipelineTiming) -> Self {
        Self {
            timing,
            threshold: None,
            cascade: None,
            parallelism: None,
            concurrency: Concurrency::Modeled,
            precision: Precision::OneBit,
            plan: FaultPlan::none(),
            policy: DegradationPolicy::default(),
            host_global_accuracy: 0.0,
            recorder: &NULL_RECORDER,
        }
    }
}

impl<'r> RunOptions<'r> {
    /// Overrides the pipeline's DMU confidence threshold for this run.
    ///
    /// Deprecated: the threshold is the 2-stage special case of the
    /// cascade API — use
    /// `with_cascade(CascadePolicy::dmu(threshold))`, which is
    /// bit-identical. The raw value is still validated by
    /// [`execute`](crate::pipeline::MultiPrecisionPipeline::execute),
    /// exactly as before.
    #[deprecated(
        since = "0.6.0",
        note = "use with_cascade(CascadePolicy::dmu(threshold)) — the cascade is the \
                first-class decision API"
    )]
    #[must_use]
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Installs an N-stage confidence cascade as this run's decision
    /// policy. The canonical 2-stage instance
    /// [`CascadePolicy::dmu`]`(t)` reproduces the legacy threshold
    /// bit-identically (and supports both executors, faults included);
    /// deeper cascades run under [`Concurrency::Modeled`].
    ///
    /// Mutually exclusive with the deprecated `with_threshold` —
    /// [`execute`](crate::pipeline::MultiPrecisionPipeline::execute)
    /// rejects options carrying both.
    #[must_use]
    pub fn with_cascade(mut self, cascade: CascadePolicy) -> Self {
        self.cascade = Some(cascade);
        self
    }

    /// Overrides the pipeline's host-side data parallelism for this run.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Selects the two-thread executor ([`Concurrency::Threaded`]): a
    /// block-pipelined stage graph in which the BNN thread runs the
    /// batched fast path over blocks of
    /// [`PipelineTiming::batch_size`](crate::pipeline::PipelineTiming)
    /// images and publishes each block's flagged subset to the host
    /// worker, which re-infers it while the BNN processes the next
    /// block. Predictions, flags, and fault accounting are bit-identical
    /// to [`Concurrency::Modeled`].
    #[must_use]
    pub fn threaded(mut self) -> Self {
        self.concurrency = Concurrency::Threaded;
        self
    }

    /// Selects the modelled-time executor ([`Concurrency::Modeled`]).
    #[must_use]
    pub fn modeled(mut self) -> Self {
        self.concurrency = Concurrency::Modeled;
        self
    }

    /// Injects `plan` into the run. Fault injection requires the
    /// threaded executor, so this also selects
    /// [`Concurrency::Threaded`].
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self.concurrency = Concurrency::Threaded;
        self
    }

    /// Selects the numeric precision of the classification stage.
    /// Non-1-bit precisions are modeled-only;
    /// [`execute`](crate::pipeline::MultiPrecisionPipeline::execute)
    /// rejects them under [`Concurrency::Threaded`].
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the degradation policy applied to host misbehaviour.
    #[must_use]
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the host model's standalone full-set accuracy, used for the
    /// paper's eq. (2) accuracy prediction.
    #[must_use]
    pub fn with_host_accuracy(mut self, accuracy: f64) -> Self {
        self.host_global_accuracy = accuracy;
        self
    }

    /// Attaches a recorder; spans, counters, histograms and typed events
    /// are written into it during
    /// [`execute`](crate::pipeline::MultiPrecisionPipeline::execute).
    /// Recording is strictly passive — predictions and fault accounting
    /// are bit-identical with any recorder.
    #[must_use]
    pub fn with_recorder<'s>(self, recorder: &'s dyn Recorder) -> RunOptions<'s> {
        RunOptions {
            timing: self.timing,
            threshold: self.threshold,
            cascade: self.cascade,
            parallelism: self.parallelism,
            concurrency: self.concurrency,
            precision: self.precision,
            plan: self.plan,
            policy: self.policy,
            host_global_accuracy: self.host_global_accuracy,
            recorder,
        }
    }

    /// The timing constants of the run.
    pub fn timing(&self) -> &PipelineTiming {
        &self.timing
    }

    /// The per-run threshold override, if any.
    pub fn threshold(&self) -> Option<f32> {
        self.threshold
    }

    /// The installed cascade policy, if any.
    pub fn cascade(&self) -> Option<&CascadePolicy> {
        self.cascade.as_ref()
    }

    /// The per-run parallelism override, if any.
    pub fn parallelism(&self) -> Option<Parallelism> {
        self.parallelism
    }

    /// The selected execution mode.
    pub fn concurrency(&self) -> Concurrency {
        self.concurrency
    }

    /// The selected classification-stage precision.
    pub fn precision(&self) -> &Precision {
        &self.precision
    }

    /// The fault plan ([`FaultPlan::none`] unless injected).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The degradation policy.
    pub fn degradation_policy(&self) -> &DegradationPolicy {
        &self.policy
    }

    /// The host model's standalone full-set accuracy.
    pub fn host_accuracy(&self) -> f64 {
        self.host_global_accuracy
    }

    /// The attached recorder (the [`NULL_RECORDER`] by default).
    pub fn recorder(&self) -> &'r dyn Recorder {
        self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_modeled_and_null() {
        let opts = RunOptions::new(PipelineTiming::new(1e-3, 1e-2, 10));
        assert_eq!(opts.concurrency(), Concurrency::Modeled);
        assert!(opts.threshold().is_none());
        assert!(opts.parallelism().is_none());
        assert!(opts.fault_plan().is_none());
        assert!(!opts.recorder().enabled());
        assert_eq!(opts.host_accuracy(), 0.0);
    }

    #[test]
    fn with_faults_implies_threaded() {
        let opts = RunOptions::new(PipelineTiming::new(1e-3, 1e-2, 10))
            .with_faults(FaultPlan::seeded(1).with_host_error_rate(0.5));
        assert_eq!(opts.concurrency(), Concurrency::Threaded);
        assert!(!opts.fault_plan().is_none());
    }

    #[test]
    fn precision_defaults_to_one_bit_and_labels_corners() {
        let opts = RunOptions::new(PipelineTiming::new(1e-3, 1e-2, 10));
        assert!(opts.precision().is_one_bit());
        assert_eq!(opts.precision().label(), "1bit");
        let opts = opts.with_precision(Precision::Float32);
        assert!(!opts.precision().is_one_bit());
        assert_eq!(opts.precision().label(), "float32");
        assert_eq!(opts.clone().precision().label(), "float32");
        assert!(format!("{opts:?}").contains("float32"));
    }

    #[test]
    fn recorder_swap_keeps_settings() {
        let rec = mp_obs::SharedRecorder::new();
        let opts = RunOptions::new(PipelineTiming::new(1e-3, 1e-2, 10))
            .with_cascade(CascadePolicy::dmu(0.7))
            .with_parallelism(Parallelism::new(3))
            .threaded()
            .with_host_accuracy(0.9)
            .with_recorder(&rec);
        assert!(opts.recorder().enabled());
        assert_eq!(
            opts.cascade().and_then(CascadePolicy::dmu_threshold),
            Some(0.7)
        );
        assert_eq!(opts.concurrency(), Concurrency::Threaded);
        assert_eq!(opts.host_accuracy(), 0.9);
        let debug = format!("{opts:?}");
        assert!(debug.contains("recorder_enabled: true"));
        let cloned = opts.clone();
        assert_eq!(
            cloned.cascade().and_then(CascadePolicy::dmu_threshold),
            Some(0.7)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_threshold_shim_still_stores_raw_value() {
        // The shim must keep storing the raw f32 so `execute` stays the
        // single validation point (see
        // `execute_threshold_override_beats_constructor`).
        let opts = RunOptions::new(PipelineTiming::new(1e-3, 1e-2, 10)).with_threshold(3.0);
        assert_eq!(opts.threshold(), Some(3.0));
        assert!(opts.cascade().is_none());
    }
}
