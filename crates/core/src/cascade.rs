//! N-stage confidence cascades — the first-class decision API.
//!
//! The paper's DMU is a hard-wired **2-stage cascade**: the BNN
//! classifies every image, and one confidence threshold decides which
//! images the float host re-infers. CascadeCNN-style systems generalise
//! this to an ordered chain of classifiers of increasing precision and
//! cost, each with its own confidence gate: an image is accepted by the
//! first stage confident enough to keep it, and escalates otherwise.
//! [`CascadePolicy`] is that chain, validated at construction
//! (`try_new` + checked `Deserialize`, the repo's config convention)
//! and consumed by
//! [`RunOptions::with_cascade`](crate::run::RunOptions::with_cascade) /
//! [`MultiPrecisionPipeline::execute`](crate::pipeline::MultiPrecisionPipeline::execute).
//!
//! The legacy threshold is the canonical 2-stage instance:
//! [`CascadePolicy::dmu`]`(t)` ≡ "low-precision stage gated at `t`,
//! float host terminal", and the executor routes that shape through the
//! exact legacy code path, so it is **bit-identical** to
//! `with_threshold(t)` — predictions, flags and fault accounting alike.
//!
//! Gate semantics are NaN-safe by construction: a stage accepts an
//! image only when [`gate_accepts`] holds, and `NaN >= t` is `false`,
//! so an image whose confidence is poisoned (NaN logits anywhere in the
//! stage) always **escalates** toward higher precision — it can never
//! silently pass a gate.
//!
//! [`tune_gates`] is the cost-aware tuner: given per-stage
//! [`StageProfile`]s measured on a calibration set, it picks the gates
//! (and, where it pays, drops intermediate stages entirely) that reach
//! a target accuracy at minimum expected per-image cost. Because the
//! search space includes every sub-chain, an N-stage tuned cascade can
//! never do worse than the best 2-stage instance over the same grid —
//! the Pareto guarantee the `cascade_sweep` bench gates in CI.

use std::sync::Arc;

use serde::{Deserialize, Error, Serialize, Value};

use mp_int::{CostLut, QuantBnn};

use crate::pipeline::PipelineTiming;
use crate::run::Precision;
use crate::CoreError;

/// NaN-safe gate test: does confidence `p` pass a gate at `gate`?
///
/// This is the **single** acceptance predicate of the decision
/// subsystem — the DMU threshold path
/// ([`Dmu::estimate_batch`](crate::dmu::Dmu::estimate_batch)) and the
/// cascade executor both route through it. `p >= gate` is `false` for
/// a NaN confidence, so a poisoned image always escalates to the next
/// (higher-precision) stage instead of silently keeping a garbage
/// prediction.
#[inline]
pub fn gate_accepts(p: f32, gate: f32) -> bool {
    p >= gate
}

/// The classifier a cascade stage runs.
#[derive(Debug, Clone)]
pub enum StageClassifier {
    /// The run's configured low-precision classifier — whatever
    /// [`RunOptions::with_precision`](crate::run::RunOptions::with_precision)
    /// selects (the 1-bit `HardwareBnn` by default). Using a symbolic
    /// first stage keeps one policy valid across precisions, exactly
    /// like the legacy threshold was.
    Primary,
    /// An explicit quantized intermediate stage: the [`QuantBnn`]
    /// classifies the escalated subset, the DMU gates on its normalised
    /// scores, and its modeled cost is the 1-bit time scaled by the
    /// MAC-weighted MPIC factor.
    Quantized(Arc<QuantBnn>),
    /// The float host network. Always terminal: the host is the
    /// cascade's final authority, and the DMU has no trained confidence
    /// signal for float logits to gate on.
    HostFloat,
}

impl StageClassifier {
    /// Stable stage label, sharing [`Precision::label`]'s naming scheme
    /// so obs counters, bench records and verify diagnostics all use
    /// identical identifiers: `Primary` resolves to the run precision's
    /// label (`1bit`, `a4w4-…`, `float32`), `Quantized` to its
    /// per-layer precision string, `HostFloat` to `float32`.
    pub fn label(&self, primary: &Precision) -> String {
        match self {
            StageClassifier::Primary => primary.label(),
            StageClassifier::Quantized(q) => q.precision().to_string(),
            StageClassifier::HostFloat => Precision::Float32.label(),
        }
    }

    /// The serialisation tag (`primary` / the precision string /
    /// `float32`). `Primary` keeps its symbolic tag because its label
    /// is only known at run time.
    fn tag(&self) -> String {
        match self {
            StageClassifier::Primary => "primary".to_owned(),
            StageClassifier::Quantized(q) => q.precision().to_string(),
            StageClassifier::HostFloat => Precision::Float32.label(),
        }
    }

    /// Modeled seconds per image on this stage, under `timing` with the
    /// run precision `primary`.
    pub fn unit_cost_s(&self, primary: &Precision, timing: &PipelineTiming) -> f64 {
        let lut = CostLut::mpic();
        match self {
            StageClassifier::Primary => match primary {
                Precision::OneBit => timing.t_bnn_img_s,
                Precision::Quantized(q) => timing.t_bnn_img_s * q.network_cost_factor(&lut),
                Precision::Float32 => timing.t_fp_img_s,
            },
            StageClassifier::Quantized(q) => timing.t_bnn_img_s * q.network_cost_factor(&lut),
            StageClassifier::HostFloat => timing.t_fp_img_s,
        }
    }
}

/// One stage of a cascade: a classifier plus an optional confidence
/// gate. `gate: Some(t)` accepts images with DMU confidence `>= t`
/// ([`gate_accepts`]) and escalates the rest; `gate: None` marks the
/// terminal stage, which accepts everything it receives.
#[derive(Debug, Clone)]
pub struct CascadeStage {
    /// The stage's classifier.
    pub classifier: StageClassifier,
    /// Confidence gate in `[0, 1]`; `None` on the terminal stage.
    pub gate: Option<f32>,
}

impl CascadeStage {
    /// A gated (non-terminal) stage.
    pub fn gated(classifier: StageClassifier, gate: f32) -> Self {
        Self {
            classifier,
            gate: Some(gate),
        }
    }

    /// The terminal stage: accepts every image that reaches it.
    pub fn terminal(classifier: StageClassifier) -> Self {
        Self {
            classifier,
            gate: None,
        }
    }
}

impl Serialize for CascadeStage {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("classifier".to_owned(), Value::Str(self.classifier.tag())),
            ("gate".to_owned(), self.gate.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for CascadeStage {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let tag = String::from_value(value.get_field("classifier")?)?;
        let gate = Option::<f32>::from_value(value.get_field("gate")?)?;
        let classifier = match tag.as_str() {
            "primary" => StageClassifier::Primary,
            "float32" => StageClassifier::HostFloat,
            other => {
                return Err(Error::custom(format!(
                    "stage classifier {other:?}: quantized stages carry a trained \
                     network and must be bound programmatically \
                     (CascadeStage::gated(StageClassifier::Quantized(..), t))"
                )))
            }
        };
        Ok(Self { classifier, gate })
    }
}

/// An ordered, validated chain of cascade stages.
///
/// Invariants (enforced by [`try_new`](Self::try_new) and the checked
/// `Deserialize`):
///
/// - at least one stage;
/// - every stage except the last carries a finite gate in `[0, 1]`;
/// - the last stage carries no gate (it accepts everything);
/// - [`StageClassifier::HostFloat`] appears only as the terminal stage.
#[derive(Debug, Clone)]
pub struct CascadePolicy {
    stages: Vec<CascadeStage>,
}

impl CascadePolicy {
    /// Validates and builds a policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when any invariant above is
    /// violated.
    pub fn try_new(stages: Vec<CascadeStage>) -> Result<Self, CoreError> {
        if stages.is_empty() {
            return Err(CoreError::InvalidConfig(
                "cascade must have at least one stage".into(),
            ));
        }
        let last = stages.len() - 1;
        for (i, stage) in stages.iter().enumerate() {
            match (i == last, stage.gate) {
                (false, None) => {
                    return Err(CoreError::InvalidConfig(format!(
                        "cascade stage {i} is not terminal and must carry a gate"
                    )))
                }
                (true, Some(g)) => {
                    return Err(CoreError::InvalidConfig(format!(
                        "terminal cascade stage {i} must not carry a gate (got {g})"
                    )))
                }
                (false, Some(g)) => {
                    if !g.is_finite() || !(0.0..=1.0).contains(&g) {
                        return Err(CoreError::InvalidConfig(format!(
                            "cascade stage {i} gate {g} outside [0,1]"
                        )));
                    }
                }
                (true, None) => {}
            }
            if matches!(stage.classifier, StageClassifier::HostFloat) && i != last {
                return Err(CoreError::InvalidConfig(format!(
                    "cascade stage {i}: the float host must be the terminal stage \
                     (the DMU has no confidence signal for float logits)"
                )));
            }
        }
        Ok(Self { stages })
    }

    /// The canonical 2-stage instance reproducing the paper's DMU
    /// threshold **bit-identically**: the run's primary classifier
    /// gated at `threshold`, then the float host.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]` (mirroring
    /// [`MultiPrecisionPipeline::new`](crate::pipeline::MultiPrecisionPipeline::new)).
    pub fn dmu(threshold: f32) -> Self {
        assert!(
            threshold.is_finite() && (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        Self::try_new(vec![
            CascadeStage::gated(StageClassifier::Primary, threshold),
            CascadeStage::terminal(StageClassifier::HostFloat),
        ])
        .expect("the dmu shape satisfies every invariant")
    }

    /// `Some(t)` when this policy is exactly the DMU shape
    /// ([`dmu`](Self::dmu)`(t)`): the primary classifier gated at `t`,
    /// then the terminal float host. The executor routes this shape
    /// through the legacy threshold path, so it works under both
    /// executors (including fault injection) and is bit-identical to
    /// the deprecated `with_threshold(t)`.
    pub fn dmu_threshold(&self) -> Option<f32> {
        match self.stages.as_slice() {
            [CascadeStage {
                classifier: StageClassifier::Primary,
                gate: Some(t),
            }, CascadeStage {
                classifier: StageClassifier::HostFloat,
                gate: None,
            }] => Some(*t),
            _ => None,
        }
    }

    /// The validated stages, in escalation order.
    pub fn stages(&self) -> &[CascadeStage] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Always `false` — [`try_new`](Self::try_new) rejects empty
    /// chains; provided for clippy-idiomatic call sites.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Per-stage labels under the run precision `primary` — the shared
    /// identifiers obs/bench/verify report.
    pub fn labels(&self, primary: &Precision) -> Vec<String> {
        self.stages
            .iter()
            .map(|s| s.classifier.label(primary))
            .collect()
    }

    /// The static shape of this cascade under `timing` with the run
    /// precision `primary` — what `mp-verify`'s cascade pass analyses
    /// (gate placement/range, cost monotonicity, reachability) without
    /// executing anything.
    pub fn shape(&self, primary: &Precision, timing: &PipelineTiming) -> CascadeShape {
        CascadeShape {
            stages: self
                .stages
                .iter()
                .map(|s| StageShape {
                    label: s.classifier.label(primary),
                    gate: s.gate.map(f64::from),
                    unit_cost_s: s.classifier.unit_cost_s(primary, timing),
                })
                .collect(),
        }
    }
}

impl Serialize for CascadePolicy {
    fn to_value(&self) -> Value {
        Value::Map(vec![("stages".to_owned(), self.stages.to_value())])
    }
}

impl<'de> Deserialize<'de> for CascadePolicy {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let stages = Vec::<CascadeStage>::from_value(value.get_field("stages")?)?;
        CascadePolicy::try_new(stages).map_err(Error::custom)
    }
}

/// The statically analysable shape of one cascade stage: its label
/// (shared with obs/bench), its gate, and its modeled per-image cost.
/// Fields are public so verify golden tests can construct deliberately
/// broken shapes field by field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageShape {
    /// Stage label (`1bit`, `a4w4-…`, `float32`).
    pub label: String,
    /// Confidence gate; `None` on the terminal stage.
    pub gate: Option<f64>,
    /// Modeled seconds per image on this stage.
    pub unit_cost_s: f64,
}

/// The statically analysable shape of a whole cascade (see
/// [`CascadePolicy::shape`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeShape {
    /// Stage shapes in escalation order.
    pub stages: Vec<StageShape>,
}

// ---------------------------------------------------------------------------
// Cost-aware gate tuning
// ---------------------------------------------------------------------------

/// Per-stage calibration measurements the tuner searches over: for one
/// candidate stage, the DMU confidence, the stage's own correctness per
/// calibration image, and the stage's modeled per-image cost. Profiles
/// are measured **unconditionally** (every stage scores every
/// calibration image) so the tuner can evaluate any gate combination
/// without re-running inference.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Stage label (shared naming scheme — see [`StageClassifier::label`]).
    pub label: String,
    /// DMU confidence per calibration image (NaN allowed: a NaN
    /// confidence never passes a gate).
    pub confidence: Vec<f32>,
    /// Whether this stage classifies each calibration image correctly.
    pub correct: Vec<bool>,
    /// Modeled seconds per image on this stage.
    pub unit_cost_s: f64,
}

/// The outcome of evaluating one gate assignment over calibration data.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CascadeEval {
    /// Fraction of calibration images whose accepting stage classified
    /// them correctly.
    pub accuracy: f64,
    /// Expected serial cost per image: `Σ_s entered_s · c_s / n`. (The
    /// executor additionally reports the batch-overlapped time; the
    /// tuner optimises the serial expectation, which upper-bounds it.)
    pub expected_cost_s: f64,
    /// Images entering each stage.
    pub entered: Vec<usize>,
    /// Images accepted at each stage.
    pub accepted: Vec<usize>,
}

/// One tuned operating point: which profile indices form the chain,
/// the gates on its non-terminal stages, and the evaluation.
#[derive(Debug, Clone)]
pub struct TunedCascade {
    /// Indices into the tuner's profile list, in escalation order
    /// (always ends with the terminal profile).
    pub stage_indices: Vec<usize>,
    /// Gates for each non-terminal chain stage.
    pub gates: Vec<f32>,
    /// The evaluation at those gates.
    pub eval: CascadeEval,
}

/// Evaluates a chain of `profiles` (last = terminal) at `gates`
/// (`gates.len() == profiles.len() - 1`) over the calibration set.
///
/// # Panics
///
/// Panics if the profile/gate arities disagree or profiles have
/// mismatched lengths.
pub fn evaluate_chain(profiles: &[&StageProfile], gates: &[f32]) -> CascadeEval {
    assert!(!profiles.is_empty(), "chain must have at least one stage");
    assert_eq!(
        gates.len(),
        profiles.len() - 1,
        "one gate per non-terminal stage"
    );
    let n = profiles[0].correct.len();
    for p in profiles {
        assert_eq!(p.correct.len(), n, "profile length mismatch");
        assert_eq!(p.confidence.len(), n, "profile length mismatch");
    }
    let mut entered = vec![0usize; profiles.len()];
    let mut accepted = vec![0usize; profiles.len()];
    let mut hits = 0usize;
    let mut cost = 0.0f64;
    for img in 0..n {
        for (s, p) in profiles.iter().enumerate() {
            entered[s] += 1;
            cost += p.unit_cost_s;
            let accept = s == profiles.len() - 1 || gate_accepts(p.confidence[img], gates[s]);
            if accept {
                accepted[s] += 1;
                if p.correct[img] {
                    hits += 1;
                }
                break;
            }
        }
    }
    let denom = n.max(1) as f64;
    CascadeEval {
        accuracy: hits as f64 / denom,
        expected_cost_s: cost / denom,
        entered,
        accepted,
    }
}

/// Cost-aware gate tuner: finds the cheapest chain (by expected serial
/// cost) reaching `target_accuracy`, searching every gate combination
/// from `grid` over every sub-chain of `profiles` that keeps the final
/// (terminal) profile. Searching sub-chains is what makes an N-stage
/// cascade dominate-or-match every shorter one: the best 2-stage
/// operating point is itself a candidate.
///
/// Returns `Ok(None)` when no candidate reaches the target (it is above
/// what even the terminal stage alone achieves).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an empty profile list,
/// mismatched profile lengths, a non-finite/negative stage cost, gate
/// grid values outside `[0, 1]`, or a search space beyond 2^21
/// evaluations (too many stages × grid points).
pub fn tune_gates(
    profiles: &[StageProfile],
    target_accuracy: f64,
    grid: &[f32],
) -> Result<Option<TunedCascade>, CoreError> {
    if profiles.is_empty() {
        return Err(CoreError::InvalidConfig(
            "tuner needs at least the terminal profile".into(),
        ));
    }
    let n = profiles[0].correct.len();
    for (i, p) in profiles.iter().enumerate() {
        if p.correct.len() != n || p.confidence.len() != n {
            return Err(CoreError::InvalidConfig(format!(
                "profile {i} ({}) length mismatch",
                p.label
            )));
        }
        if !p.unit_cost_s.is_finite() || p.unit_cost_s < 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "profile {i} ({}) has invalid unit cost {}",
                p.label, p.unit_cost_s
            )));
        }
    }
    if n == 0 {
        return Err(CoreError::InvalidConfig(
            "tuner needs a non-empty calibration set".into(),
        ));
    }
    if grid.is_empty()
        || grid
            .iter()
            .any(|g| !g.is_finite() || !(0.0..=1.0).contains(g))
    {
        return Err(CoreError::InvalidConfig(
            "gate grid must be non-empty with values in [0,1]".into(),
        ));
    }
    let k = profiles.len() - 1; // non-terminal candidates
    let evals: u64 = (0..=k)
        .map(|m| (grid.len() as u64).saturating_pow(m as u32) * binomial(k, m))
        .sum();
    if evals > (1 << 21) {
        return Err(CoreError::InvalidConfig(format!(
            "gate search space of {evals} evaluations is too large; \
             reduce stages or the grid"
        )));
    }
    let mut best: Option<TunedCascade> = None;
    // Every subset of the non-terminal profiles, in escalation order.
    for mask in 0..(1u32 << k) {
        let mut indices: Vec<usize> = (0..k).filter(|i| mask & (1 << i) != 0).collect();
        indices.push(k); // terminal always present
        let chain: Vec<&StageProfile> = indices.iter().map(|&i| &profiles[i]).collect();
        let mut gates = vec![grid[0]; chain.len() - 1];
        search_gates(grid, 0, &mut gates, &mut |gates| {
            let eval = evaluate_chain(&chain, gates);
            if eval.accuracy + 1e-12 < target_accuracy {
                return;
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    eval.expected_cost_s < b.eval.expected_cost_s - 1e-15
                        || ((eval.expected_cost_s - b.eval.expected_cost_s).abs() <= 1e-15
                            && eval.accuracy > b.eval.accuracy)
                }
            };
            if better {
                best = Some(TunedCascade {
                    stage_indices: indices.clone(),
                    gates: gates.to_vec(),
                    eval,
                });
            }
        });
    }
    Ok(best)
}

fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let mut acc = 1u64;
    for i in 0..k.min(n - k) {
        acc = acc * (n - i) as u64 / (i + 1) as u64;
    }
    acc
}

fn search_gates(grid: &[f32], depth: usize, gates: &mut [f32], visit: &mut impl FnMut(&[f32])) {
    if depth == gates.len() {
        visit(gates);
        return;
    }
    for &g in grid {
        gates[depth] = g;
        search_gates(grid, depth + 1, gates, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage() -> Vec<CascadeStage> {
        vec![
            CascadeStage::gated(StageClassifier::Primary, 0.7),
            CascadeStage::terminal(StageClassifier::HostFloat),
        ]
    }

    #[test]
    fn gate_is_nan_safe() {
        assert!(gate_accepts(0.9, 0.5));
        assert!(gate_accepts(0.5, 0.5));
        assert!(!gate_accepts(0.4, 0.5));
        // A NaN confidence must never pass a gate — it escalates.
        assert!(!gate_accepts(f32::NAN, 0.5));
        assert!(!gate_accepts(f32::NAN, 0.0));
    }

    #[test]
    fn try_new_enforces_invariants() {
        assert!(CascadePolicy::try_new(Vec::new()).is_err());
        // Non-terminal stage without a gate.
        assert!(CascadePolicy::try_new(vec![
            CascadeStage::terminal(StageClassifier::Primary),
            CascadeStage::terminal(StageClassifier::HostFloat),
        ])
        .is_err());
        // Terminal stage with a gate.
        assert!(
            CascadePolicy::try_new(vec![CascadeStage::gated(StageClassifier::Primary, 0.5)])
                .is_err()
        );
        // Gate out of range / NaN.
        for bad in [-0.1f32, 1.5, f32::NAN] {
            let mut stages = two_stage();
            stages[0].gate = Some(bad);
            assert!(CascadePolicy::try_new(stages).is_err(), "gate {bad}");
        }
        // Host float must be terminal.
        assert!(CascadePolicy::try_new(vec![
            CascadeStage::gated(StageClassifier::HostFloat, 0.5),
            CascadeStage::terminal(StageClassifier::Primary),
        ])
        .is_err());
        assert!(CascadePolicy::try_new(two_stage()).is_ok());
        // A single terminal stage (BNN-only) is legal.
        assert!(
            CascadePolicy::try_new(vec![CascadeStage::terminal(StageClassifier::Primary)]).is_ok()
        );
    }

    #[test]
    fn dmu_shape_round_trips_threshold() {
        let policy = CascadePolicy::dmu(0.84);
        assert_eq!(policy.len(), 2);
        assert_eq!(policy.dmu_threshold(), Some(0.84));
        // Anything else is not dmu-shaped.
        let three = CascadePolicy::try_new(vec![
            CascadeStage::gated(StageClassifier::Primary, 0.5),
            CascadeStage::gated(StageClassifier::Primary, 0.8),
            CascadeStage::terminal(StageClassifier::HostFloat),
        ])
        .unwrap();
        assert_eq!(three.dmu_threshold(), None);
        let solo =
            CascadePolicy::try_new(vec![CascadeStage::terminal(StageClassifier::Primary)]).unwrap();
        assert_eq!(solo.dmu_threshold(), None);
    }

    #[test]
    #[should_panic(expected = "threshold must be in [0,1]")]
    fn dmu_rejects_bad_threshold() {
        let _ = CascadePolicy::dmu(1.5);
    }

    #[test]
    fn labels_share_precision_naming() {
        let policy = CascadePolicy::dmu(0.5);
        assert_eq!(
            policy.labels(&Precision::OneBit),
            vec!["1bit".to_owned(), "float32".to_owned()]
        );
        assert_eq!(
            policy.labels(&Precision::Float32),
            vec!["float32".to_owned(), "float32".to_owned()]
        );
    }

    #[test]
    fn shape_prices_stages_from_timing() {
        let timing = PipelineTiming::new(0.002, 0.03, 10);
        let shape = CascadePolicy::dmu(0.6).shape(&Precision::OneBit, &timing);
        assert_eq!(shape.stages.len(), 2);
        assert_eq!(shape.stages[0].label, "1bit");
        assert_eq!(shape.stages[0].gate, Some(f64::from(0.6f32)));
        assert!((shape.stages[0].unit_cost_s - 0.002).abs() < 1e-15);
        assert_eq!(shape.stages[1].label, "float32");
        assert_eq!(shape.stages[1].gate, None);
        assert!((shape.stages[1].unit_cost_s - 0.03).abs() < 1e-15);
    }

    #[test]
    fn serialization_round_trips_and_validates() {
        let policy = CascadePolicy::dmu(0.75);
        let json = serde_json::to_string(&policy).unwrap();
        let back: CascadePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dmu_threshold(), Some(0.75));
        // A broken payload is rejected through try_new, not at use time.
        let bad = r#"{"stages":[{"classifier":"primary","gate":1.7},
                       {"classifier":"float32","gate":null}]}"#;
        assert!(serde_json::from_str::<CascadePolicy>(bad).is_err());
        // Quantized stages cannot come from config files.
        let quant = r#"{"stages":[{"classifier":"a4w4","gate":0.5},
                        {"classifier":"float32","gate":null}]}"#;
        let err = serde_json::from_str::<CascadePolicy>(quant).unwrap_err();
        assert!(format!("{err}").contains("programmatically"), "{err}");
    }

    fn profile(label: &str, conf: &[f32], correct: &[bool], cost: f64) -> StageProfile {
        StageProfile {
            label: label.into(),
            confidence: conf.to_vec(),
            correct: correct.to_vec(),
            unit_cost_s: cost,
        }
    }

    #[test]
    fn evaluate_chain_accounts_traffic_and_accuracy() {
        // 4 images. Stage 0 confident on the first two (one wrong),
        // terminal fixes everything it sees.
        let s0 = profile(
            "1bit",
            &[0.9, 0.8, 0.2, f32::NAN],
            &[true, false, false, true],
            1.0,
        );
        let s1 = profile("float32", &[1.0; 4], &[true; 4], 10.0);
        let eval = evaluate_chain(&[&s0, &s1], &[0.5]);
        assert_eq!(eval.entered, vec![4, 2]);
        assert_eq!(eval.accepted, vec![2, 2]);
        // Accepted: img0 right, img1 wrong, img2+img3 via terminal right.
        assert!((eval.accuracy - 0.75).abs() < 1e-12);
        // Cost: 4·1 + 2·10 over 4 images.
        assert!((eval.expected_cost_s - 6.0).abs() < 1e-12);
    }

    #[test]
    fn nan_confidence_always_escalates_in_evaluator() {
        let s0 = profile("1bit", &[f32::NAN, f32::NAN], &[true, true], 1.0);
        let s1 = profile("float32", &[1.0, 1.0], &[false, true], 2.0);
        // Even a 0.0 gate never accepts a NaN-confidence image.
        let eval = evaluate_chain(&[&s0, &s1], &[0.0]);
        assert_eq!(eval.accepted[0], 0);
        assert_eq!(eval.entered[1], 2);
    }

    #[test]
    fn tuner_reaches_target_at_minimum_cost() {
        // Stage 0 is cheap and 50% accurate with informative confidence;
        // terminal is expensive and perfect.
        let n = 8;
        let conf: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { 0.9 } else { 0.1 }).collect();
        let correct: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let s0 = profile("1bit", &conf, &correct, 1.0);
        let s1 = profile("float32", &vec![1.0; n], &vec![true; n], 10.0);
        let grid = [0.0f32, 0.5, 1.0];
        // Target 1.0: gate 0.5 sends exactly the wrong half to the host.
        let tuned = tune_gates(&[s0.clone(), s1.clone()], 1.0, &grid)
            .unwrap()
            .expect("reachable target");
        assert_eq!(tuned.stage_indices, vec![0, 1]);
        assert!((tuned.eval.accuracy - 1.0).abs() < 1e-12);
        assert!((tuned.eval.expected_cost_s - 6.0).abs() < 1e-12);
        // Target 0.5: keeping everything on stage 0 is cheapest.
        let lax = tune_gates(&[s0, s1], 0.5, &grid).unwrap().unwrap();
        assert!((lax.eval.expected_cost_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuner_drops_useless_intermediate_stages() {
        let n = 4;
        // A middle stage that costs more than the terminal and adds
        // nothing: the tuned chain must exclude it.
        let s0 = profile("1bit", &[0.9; 4], &[true; 4], 1.0);
        let mid = profile("a8w8", &[0.0; 4], &[false; 4], 50.0);
        let term = profile("float32", &vec![1.0; n], &vec![true; n], 10.0);
        let tuned = tune_gates(&[s0, mid, term], 1.0, &[0.0, 1.0])
            .unwrap()
            .expect("terminal alone reaches 1.0");
        assert!(
            !tuned.stage_indices.contains(&1),
            "useless stage retained: {:?}",
            tuned.stage_indices
        );
    }

    #[test]
    fn tuner_never_loses_to_a_sub_chain() {
        // The 3-stage tuned cost is ≤ the best 2-stage cost at every
        // target, because 2-stage chains are in the search space.
        let n = 16;
        let conf0: Vec<f32> = (0..n).map(|i| (i as f32) / (n as f32)).collect();
        let corr0: Vec<bool> = (0..n).map(|i| i >= 8).collect();
        let conf1: Vec<f32> = (0..n).map(|i| ((i * 7) % n) as f32 / n as f32).collect();
        let corr1: Vec<bool> = (0..n).map(|i| i % 4 != 0).collect();
        let s0 = profile("1bit", &conf0, &corr0, 1.0);
        let s1 = profile("a4w4", &conf1, &corr1, 3.0);
        let term = profile("float32", &vec![1.0; n], &vec![true; n], 12.0);
        let grid: Vec<f32> = (0..=10).map(|i| i as f32 / 10.0).collect();
        for target in [0.6, 0.75, 0.9, 1.0] {
            let three = tune_gates(&[s0.clone(), s1.clone(), term.clone()], target, &grid)
                .unwrap()
                .expect("terminal reaches 1.0");
            let two = tune_gates(&[s0.clone(), term.clone()], target, &grid)
                .unwrap()
                .expect("sub-chain reaches 1.0");
            assert!(
                three.eval.expected_cost_s <= two.eval.expected_cost_s + 1e-12,
                "target {target}: 3-stage {} > 2-stage {}",
                three.eval.expected_cost_s,
                two.eval.expected_cost_s
            );
        }
    }

    #[test]
    fn tuner_rejects_bad_inputs() {
        let s = profile("1bit", &[0.5], &[true], 1.0);
        assert!(tune_gates(&[], 0.5, &[0.5]).is_err());
        assert!(tune_gates(std::slice::from_ref(&s), 0.5, &[]).is_err());
        assert!(tune_gates(std::slice::from_ref(&s), 0.5, &[1.5]).is_err());
        let bad_cost = profile("x", &[0.5], &[true], f64::NAN);
        assert!(tune_gates(&[bad_cost], 0.5, &[0.5]).is_err());
        let mismatched = profile("y", &[0.5, 0.6], &[true, false], 1.0);
        assert!(tune_gates(&[s, mismatched], 0.5, &[0.5]).is_err());
        // Unreachable target → Ok(None).
        let weak = profile("z", &[0.5], &[false], 1.0);
        assert!(tune_gates(&[weak], 0.9, &[0.5]).unwrap().is_none());
    }
}
