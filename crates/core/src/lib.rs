//! # mp-core
//!
//! The paper's primary contribution: the **multi-precision CNN** — a
//! binarised network on the FPGA classifying every image, a
//! floating-point network on the CPU re-classifying the hard ones, and a
//! light-weight trained **Decision-Making Unit** in between (paper
//! Fig. 1).
//!
//! - [`dmu`]: the DMU — a trained single "Softmax" unit (ten
//!   multiplications, a bias, a sigmoid; §III-B) over the BNN's class
//!   scores, its threshold sweep (Fig. 5), and the FS/F̄S̄/F̄S/FS̄
//!   quadrant accounting (Table II);
//! - [`model`]: the analytic throughput and accuracy models, eqs. (1)
//!   and (2);
//! - [`pipeline`]: the heterogeneous executor — both a modelled-time
//!   batch pipeline following the paper's `async(1)`/`wait(1)`
//!   pseudo-code and a real two-thread implementation where the FPGA
//!   simulator and the host network run concurrently (Fig. 2);
//! - [`run`]: the unified [`RunOptions`] builder consumed by
//!   [`MultiPrecisionPipeline::execute`] — execution mode, cascade
//!   policy and parallelism overrides, fault plan, degradation policy,
//!   and an attachable `mp_obs` recorder for passive instrumentation;
//! - [`cascade`]: the first-class decision API — an N-stage
//!   [`CascadePolicy`] of increasing-precision classifiers with
//!   validated confidence gates, subsuming the DMU threshold as its
//!   canonical 2-stage instance ([`CascadePolicy::dmu`]), plus the
//!   cost-aware gate tuner ([`cascade::tune_gates`]);
//! - [`experiment`]: end-to-end orchestration that trains the BNN, the
//!   host models and the DMU on the synthetic dataset and produces the
//!   records behind Tables II, IV and V;
//! - [`fault`]: deterministic fault injection (seeded host errors,
//!   latency spikes, worker death, FPGA stream faults) and the graceful
//!   degradation policy — retries, deadlines, and a circuit breaker
//!   that trips the pipeline into BNN-only mode.
//!
//! # Example
//!
//! ```no_run
//! use mp_core::experiment::{ExperimentConfig, TrainedSystem};
//!
//! # fn main() -> Result<(), mp_core::CoreError> {
//! let system = TrainedSystem::prepare(&ExperimentConfig::fast_profile(0))?;
//! println!("BNN accuracy: {:.3}", system.bnn_test_accuracy);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod error;

pub mod cascade;
pub mod dmu;
pub mod experiment;
pub mod fault;
pub mod model;
pub mod pipeline;
pub mod run;
pub mod stats;

pub use cascade::{
    gate_accepts, CascadePolicy, CascadeShape, CascadeStage, StageClassifier, StageShape,
};
pub use dmu::{ConfusionQuadrants, Dmu};
pub use error::CoreError;
pub use fault::{
    CircuitBreaker, DegradationPolicy, DegradationStats, FaultEvent, FaultInjector, FaultKind,
    FaultPlan, FleetFaultPlan, ReplicaFault, ReplicaFaultEvent,
};
pub use pipeline::{
    modeled_batch_time, modeled_cascade_time, MultiPrecisionPipeline, PipelineResult,
    PipelineTiming, StageTraffic,
};
pub use run::{Concurrency, Precision, RunOptions};
pub use stats::nearest_rank_percentile;
