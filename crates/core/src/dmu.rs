//! The Decision-Making Unit (paper §III-B).
//!
//! The DMU estimates, from the BNN's ten output scores alone, whether
//! the BNN classified an image correctly. The paper trains a "Softmax
//! layer" on a dataset of (FINN score vector → correct/incorrect) pairs;
//! one inference is "ten floating-point multiplications and their sum, a
//! bias addition, and application of a Sigmoid positive transfer
//! function" — i.e. a logistic regression unit, which is what [`Dmu`]
//! implements and trains.
//!
//! A threshold on the DMU's probability splits images into four
//! quadrants ([`ConfusionQuadrants`]): images predicted correct keep
//! their BNN labels, images predicted incorrect are re-inferred on the
//! host. Sweeping the threshold (Fig. 5) trades accuracy against host
//! load, eqs. (6)–(7).

use serde::{Deserialize, Serialize};

use mp_tensor::init::TensorRng;
use mp_tensor::{ShapeError, Tensor};

/// The four outcome quadrants of Softmax-estimated BNN classifications,
/// as fractions of the total (paper §III-B and Table II).
///
/// Notation: `F` = classified correctly by FINN, `S` = estimated correct
/// by the Softmax DMU; a bar negates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfusionQuadrants {
    /// FS: correct and estimated correct (kept, right).
    pub fs: f64,
    /// F̄S̄: incorrect and estimated incorrect (rerun, rightly).
    pub fbar_sbar: f64,
    /// F̄S: incorrect but estimated correct — kept wrong answers; caps
    /// the achievable multi-precision accuracy.
    pub fbar_s: f64,
    /// FS̄: correct but estimated incorrect — wasted reruns; costs host
    /// throughput.
    pub fs_bar: f64,
}

impl ConfusionQuadrants {
    /// Tallies quadrants from per-image flags.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn tally(bnn_correct: &[bool], estimated_correct: &[bool]) -> Self {
        assert_eq!(
            bnn_correct.len(),
            estimated_correct.len(),
            "flag slices must match"
        );
        let n = bnn_correct.len().max(1) as f64;
        let mut q = ConfusionQuadrants::default();
        for (&f, &s) in bnn_correct.iter().zip(estimated_correct) {
            match (f, s) {
                (true, true) => q.fs += 1.0,
                (false, false) => q.fbar_sbar += 1.0,
                (false, true) => q.fbar_s += 1.0,
                (true, false) => q.fs_bar += 1.0,
            }
        }
        q.fs /= n;
        q.fbar_sbar /= n;
        q.fbar_s /= n;
        q.fs_bar /= n;
        q
    }

    /// The DMU's own accuracy: `FS + F̄S̄` (paper: "the obtained Softmax
    /// accuracy").
    pub fn softmax_accuracy(&self) -> f64 {
        self.fs + self.fbar_sbar
    }

    /// Fraction of images sent to the host: `R_rerun = F̄S̄ + FS̄`.
    pub fn rerun_ratio(&self) -> f64 {
        self.fbar_sbar + self.fs_bar
    }

    /// Fraction of wasted reruns: `R_rerun_err = FS̄` (images the BNN had
    /// right but the DMU flagged anyway).
    pub fn rerun_err_ratio(&self) -> f64 {
        self.fs_bar
    }

    /// Maximum achievable multi-precision accuracy: `1 − F̄S` (kept
    /// wrong answers can never be fixed).
    pub fn max_achievable_accuracy(&self) -> f64 {
        1.0 - self.fbar_s
    }
}

/// The trained DMU: `p(correct) = σ(w · scores + b)`.
///
/// # Example
///
/// ```
/// use mp_core::Dmu;
///
/// let dmu = Dmu::with_weights(vec![0.5; 10], -1.0);
/// let p = dmu.predict(&[2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
/// assert!((0.0..=1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dmu {
    weights: Vec<f32>,
    bias: f32,
}

impl Dmu {
    /// Creates an untrained DMU for `classes` input scores.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "classes must be positive");
        Self {
            weights: vec![0.0; classes],
            bias: 0.0,
        }
    }

    /// Creates a DMU from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn with_weights(weights: Vec<f32>, bias: f32) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        Self { weights, bias }
    }

    /// Number of input scores.
    pub fn classes(&self) -> usize {
        self.weights.len()
    }

    /// The trained weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The trained bias.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Normalises a raw score vector into the DMU's input features.
    ///
    /// The BNN's integer scores grow with fan-in, so the DMU consumes
    /// them standardised per image (zero mean, unit variance) and sorted
    /// descending — a parameter-free normalisation that keeps one
    /// trained unit valid across folded networks and keeps the sigmoid
    /// out of saturation so the 0.5–1.0 threshold range stays
    /// informative (Fig. 5). Sorting makes the unit learn *margin*
    /// structure: top-1 minus runners-up, exactly the confidence signal
    /// softmax-style estimators extract.
    fn features(&self, scores: &[f32]) -> Vec<f32> {
        let mut feats = Vec::new();
        self.features_into(scores, &mut feats);
        feats
    }

    /// [`Dmu::features`] into a caller-owned buffer (cleared first), so
    /// per-image hot loops reuse one allocation. Identical arithmetic
    /// and sort order, so results are bit-identical.
    fn features_into(&self, scores: &[f32], feats: &mut Vec<f32>) {
        let n = scores.len().max(1) as f32;
        let mean = scores.iter().sum::<f32>() / n;
        let var = scores.iter().map(|&s| (s - mean) * (s - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var.sqrt() + 1e-6);
        feats.clear();
        feats.extend(scores.iter().map(|&s| (s - mean) * inv_std));
        feats.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Probability that the BNN classified correctly, given its scores.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len()` differs from [`Dmu::classes`].
    pub fn predict(&self, scores: &[f32]) -> f32 {
        self.predict_with_scratch(scores, &mut Vec::new())
    }

    /// [`Dmu::predict`] with a caller-owned feature scratch buffer: the
    /// allocation-free form for per-image hot loops (the overlapped
    /// executor's producer calls this once per image). Bit-identical to
    /// `predict`.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len()` differs from [`Dmu::classes`].
    pub fn predict_with_scratch(&self, scores: &[f32], feats: &mut Vec<f32>) -> f32 {
        assert_eq!(scores.len(), self.classes(), "score vector length mismatch");
        self.features_into(scores, feats);
        let z: f32 = self
            .weights
            .iter()
            .zip(feats.iter())
            .map(|(&w, &x)| w * x)
            .sum::<f32>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// Predicts for every row of a `[N, classes]` score matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `scores` is not `[N, classes]`.
    pub fn predict_batch(&self, scores: &Tensor) -> Result<Vec<f32>, ShapeError> {
        if scores.shape().rank() != 2 || scores.shape().dim(1) != self.classes() {
            return Err(ShapeError::new(
                "Dmu::predict_batch",
                format!(
                    "expected [N,{}] scores, got {}",
                    self.classes(),
                    scores.shape()
                ),
            ));
        }
        let n = scores.shape().dim(0);
        let k = self.classes();
        Ok((0..n)
            .map(|row| self.predict(&scores.as_slice()[row * k..(row + 1) * k]))
            .collect())
    }

    /// Trains the unit by SGD on binary cross-entropy over
    /// `(scores, bnn_correct)` pairs — the procedure of §III-B, with the
    /// FINN training-set classifications as labels.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes disagree.
    pub fn train(
        &mut self,
        scores: &Tensor,
        bnn_correct: &[bool],
        epochs: usize,
        learning_rate: f32,
        rng: &mut TensorRng,
    ) -> Result<(), ShapeError> {
        if scores.shape().rank() != 2
            || scores.shape().dim(1) != self.classes()
            || scores.shape().dim(0) != bnn_correct.len()
        {
            return Err(ShapeError::new(
                "Dmu::train",
                format!(
                    "expected [{},{}] scores, got {}",
                    bnn_correct.len(),
                    self.classes(),
                    scores.shape()
                ),
            ));
        }
        let n = bnn_correct.len();
        if n == 0 {
            return Ok(());
        }
        let k = self.classes();
        // Pre-compute features once.
        let feats: Vec<Vec<f32>> = (0..n)
            .map(|row| self.features(&scores.as_slice()[row * k..(row + 1) * k]))
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let x = &feats[i];
                let z: f32 = self
                    .weights
                    .iter()
                    .zip(x)
                    .map(|(&w, &v)| w * v)
                    .sum::<f32>()
                    + self.bias;
                let p = 1.0 / (1.0 + (-z).exp());
                let target = if bnn_correct[i] { 1.0 } else { 0.0 };
                let g = p - target;
                for (w, &v) in self.weights.iter_mut().zip(x) {
                    *w -= learning_rate * g * v;
                }
                self.bias -= learning_rate * g;
            }
        }
        Ok(())
    }

    /// Applies a confidence `threshold`: images with `p ≥ threshold` are
    /// estimated correct (kept); the rest are flagged for host rerun.
    ///
    /// The comparison is the shared cascade gate
    /// ([`crate::cascade::gate_accepts`]), so a NaN confidence — NaN
    /// logits anywhere upstream — never passes: the image is flagged
    /// for re-inference, the safe direction.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `scores` is not `[N, classes]`.
    pub fn estimate_batch(&self, scores: &Tensor, threshold: f32) -> Result<Vec<bool>, ShapeError> {
        Ok(self
            .predict_batch(scores)?
            .into_iter()
            .map(|p| crate::cascade::gate_accepts(p, threshold))
            .collect())
    }

    /// Sweeps thresholds, producing one quadrant record per point — the
    /// data behind the paper's Fig. 5.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes disagree.
    pub fn threshold_sweep(
        &self,
        scores: &Tensor,
        bnn_correct: &[bool],
        thresholds: &[f32],
    ) -> Result<Vec<(f32, ConfusionQuadrants)>, ShapeError> {
        let probs = self.predict_batch(scores)?;
        if probs.len() != bnn_correct.len() {
            return Err(ShapeError::new(
                "Dmu::threshold_sweep",
                format!(
                    "{} probabilities vs {} flags",
                    probs.len(),
                    bnn_correct.len()
                ),
            ));
        }
        Ok(thresholds
            .iter()
            .map(|&t| {
                let est: Vec<bool> = probs.iter().map(|&p| p >= t).collect();
                (t, ConfusionQuadrants::tally(bnn_correct, &est))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrants_sum_to_one() {
        let q = ConfusionQuadrants::tally(
            &[true, true, false, false, true],
            &[true, false, true, false, true],
        );
        let total = q.fs + q.fbar_sbar + q.fbar_s + q.fs_bar;
        assert!((total - 1.0).abs() < 1e-9);
        assert!((q.fs - 0.4).abs() < 1e-9);
        assert!((q.fs_bar - 0.2).abs() < 1e-9);
        assert!((q.fbar_s - 0.2).abs() < 1e-9);
        assert!((q.fbar_sbar - 0.2).abs() < 1e-9);
    }

    #[test]
    fn quadrant_derived_metrics() {
        // Paper Table II: FS=66.2, F̄S̄=12.8, F̄S=8.7, FS̄=12.3 (%).
        let q = ConfusionQuadrants {
            fs: 0.662,
            fbar_sbar: 0.128,
            fbar_s: 0.087,
            fs_bar: 0.123,
        };
        assert!((q.softmax_accuracy() - 0.79).abs() < 1e-9);
        assert!((q.rerun_ratio() - 0.251).abs() < 1e-9);
        assert!((q.rerun_err_ratio() - 0.123).abs() < 1e-9);
        // "the maximum achievable multi-precision accuracy will be 91.3%"
        assert!((q.max_achievable_accuracy() - 0.913).abs() < 1e-9);
    }

    #[test]
    fn predict_is_a_probability() {
        let dmu = Dmu::with_weights(vec![1.0; 10], 0.0);
        let p = dmu.predict(&[5.0, -1.0, 0.5, 0.0, 2.0, -3.0, 1.0, 0.0, 0.0, 0.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn predict_with_scratch_is_bit_identical_to_predict() {
        let dmu = Dmu::with_weights(vec![0.3, -0.1, 0.7, 0.05, -0.4], 0.2);
        let mut rng = TensorRng::seed_from(91);
        let mut feats = Vec::new();
        for _ in 0..50 {
            let scores: Vec<f32> = (0..5).map(|_| rng.next_gaussian(0.0, 4.0)).collect();
            let a = dmu.predict(&scores);
            let b = dmu.predict_with_scratch(&scores, &mut feats);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn training_learns_margin_signal() {
        // Synthetic task: "correct" iff the top score clearly beats the
        // rest — the margin structure real BNN scores exhibit.
        let mut rng = TensorRng::seed_from(90);
        let n = 600;
        let k = 10;
        let mut data = Vec::with_capacity(n * k);
        let mut correct = Vec::with_capacity(n);
        for i in 0..n {
            let is_confident = i % 2 == 0;
            let margin = if is_confident { 8.0 } else { 1.0 };
            let winner = rng.next_index(k);
            for j in 0..k {
                let base: f32 = rng.next_gaussian(0.0, 1.0);
                data.push(if j == winner { base + margin } else { base });
            }
            correct.push(is_confident);
        }
        let scores = Tensor::from_vec([n, k], data).unwrap();
        let mut dmu = Dmu::new(k);
        dmu.train(&scores, &correct, 30, 0.05, &mut rng).unwrap();
        let est = dmu.estimate_batch(&scores, 0.5).unwrap();
        let q = ConfusionQuadrants::tally(&correct, &est);
        assert!(
            q.softmax_accuracy() > 0.85,
            "DMU accuracy {}",
            q.softmax_accuracy()
        );
    }

    #[test]
    fn higher_threshold_reruns_more() {
        let mut rng = TensorRng::seed_from(91);
        let n = 200;
        let scores = rng.normal([n, 10], 0.0, 2.0);
        let correct: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let mut dmu = Dmu::new(10);
        dmu.train(&scores, &correct, 10, 0.05, &mut rng).unwrap();
        let sweep = dmu
            .threshold_sweep(&scores, &correct, &[0.3, 0.5, 0.7, 0.9])
            .unwrap();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1.rerun_ratio() >= pair[0].1.rerun_ratio() - 1e-9,
                "rerun ratio must be non-decreasing in the threshold"
            );
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let dmu = Dmu::new(10);
        assert!(dmu.predict_batch(&Tensor::zeros([4, 9])).is_err());
        let mut dmu = Dmu::new(10);
        let mut rng = TensorRng::seed_from(92);
        assert!(dmu
            .train(&Tensor::zeros([4, 10]), &[true; 3], 1, 0.1, &mut rng)
            .is_err());
    }

    #[test]
    fn empty_training_set_is_noop() {
        let mut dmu = Dmu::new(10);
        let mut rng = TensorRng::seed_from(93);
        dmu.train(&Tensor::zeros([0, 10]), &[], 5, 0.1, &mut rng)
            .unwrap();
        assert_eq!(dmu.weights(), vec![0.0; 10].as_slice());
    }

    #[test]
    #[should_panic(expected = "classes must be positive")]
    fn zero_classes_rejected() {
        let _ = Dmu::new(0);
    }
}

/// Untrained confidence baselines for DMU ablations.
///
/// The paper motivates a *trained* Softmax unit; these rules are the
/// standard training-free alternatives an ablation compares against.
/// Each maps a raw BNN score vector to a confidence in `[0, 1]` so the
/// same threshold/quadrant machinery applies.
pub mod baselines {
    use mp_tensor::{ShapeError, Tensor};

    fn softmax(scores: &[f32]) -> Vec<f32> {
        let n = scores.len().max(1) as f32;
        let mean = scores.iter().sum::<f32>() / n;
        let var = scores.iter().map(|&s| (s - mean) * (s - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var.sqrt() + 1e-6);
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores
            .iter()
            .map(|&s| ((s - max) * inv_std).exp())
            .collect();
        let denom: f32 = exps.iter().sum();
        exps.into_iter().map(|e| e / denom).collect()
    }

    /// Maximum softmax probability (standardised scores).
    pub fn max_softmax(scores: &[f32]) -> f32 {
        softmax(scores).into_iter().fold(0.0, f32::max)
    }

    /// Top-1 minus top-2 softmax probability (the classification margin).
    pub fn margin(scores: &[f32]) -> f32 {
        let mut p = softmax(scores);
        p.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        if p.len() < 2 {
            return 1.0;
        }
        p[0] - p[1]
    }

    /// One minus the normalised softmax entropy (1 = fully confident).
    pub fn negative_entropy(scores: &[f32]) -> f32 {
        let p = softmax(scores);
        let k = p.len().max(2) as f32;
        let h: f32 = p
            .iter()
            .map(|&x| if x > 0.0 { -x * x.ln() } else { 0.0 })
            .sum();
        1.0 - h / k.ln()
    }

    /// Applies a baseline rule to every row of a `[N, classes]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `scores` is not rank-2.
    pub fn confidence_batch(
        scores: &Tensor,
        rule: fn(&[f32]) -> f32,
    ) -> Result<Vec<f32>, ShapeError> {
        if scores.shape().rank() != 2 {
            return Err(ShapeError::new(
                "baselines::confidence_batch",
                format!("expected [N,classes], got {}", scores.shape()),
            ));
        }
        let (n, k) = (scores.shape().dim(0), scores.shape().dim(1));
        Ok((0..n)
            .map(|row| rule(&scores.as_slice()[row * k..(row + 1) * k]))
            .collect())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const SHARP: [f32; 4] = [30.0, -10.0, -10.0, -10.0];
        const FLAT: [f32; 4] = [1.0, 0.9, 1.1, 1.0];

        #[test]
        fn sharp_scores_are_confident() {
            assert!(max_softmax(&SHARP) > max_softmax(&FLAT));
            assert!(margin(&SHARP) > margin(&FLAT));
            assert!(negative_entropy(&SHARP) > negative_entropy(&FLAT));
        }

        #[test]
        fn confidences_are_bounded() {
            for rule in [max_softmax, margin, negative_entropy] {
                for scores in [&SHARP, &FLAT] {
                    let c = rule(scores);
                    assert!((0.0..=1.0 + 1e-6).contains(&c), "confidence {c}");
                }
            }
        }

        #[test]
        fn batch_application_matches_rowwise() {
            let t = Tensor::from_vec([2, 4], [SHARP, FLAT].concat()).unwrap();
            let c = confidence_batch(&t, max_softmax).unwrap();
            assert_eq!(c.len(), 2);
            assert!((c[0] - max_softmax(&SHARP)).abs() < 1e-6);
            assert!(confidence_batch(&Tensor::zeros([4]), max_softmax).is_err());
        }
    }
}

/// Threshold selection per the paper's eqs. (6)–(7): FS̄ trades against
/// host speed, so given a host budget the integrator picks the highest
/// threshold whose rerun load the host can absorb.
///
/// [`select_threshold_for_rerun`] picks from a sweep the largest
/// threshold whose rerun ratio stays within `budget`;
/// [`select_threshold_for_throughput`] converts a system throughput
/// target into that budget via eq. (1).
pub mod selection {
    use crate::dmu::ConfusionQuadrants;

    /// Largest threshold whose rerun ratio is at most `budget`, or the
    /// smallest-threshold point when none qualifies.
    ///
    /// # Panics
    ///
    /// Panics if `sweep` is empty.
    pub fn select_threshold_for_rerun(
        sweep: &[(f32, ConfusionQuadrants)],
        budget: f64,
    ) -> (f32, ConfusionQuadrants) {
        assert!(!sweep.is_empty(), "sweep must be non-empty");
        sweep
            .iter()
            .filter(|(_, q)| q.rerun_ratio() <= budget)
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite thresholds"))
            .copied()
            .unwrap_or_else(|| {
                sweep
                    .iter()
                    .min_by(|a, b| {
                        a.1.rerun_ratio()
                            .partial_cmp(&b.1.rerun_ratio())
                            .expect("finite ratios")
                    })
                    .copied()
                    .expect("non-empty sweep")
            })
    }

    /// Eq. (1) inverted: the rerun budget a `target_fps` system rate
    /// allows on a host running at `host_fps`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is non-positive.
    pub fn rerun_budget_for_throughput(target_fps: f64, host_fps: f64) -> f64 {
        assert!(target_fps > 0.0 && host_fps > 0.0, "rates must be positive");
        (host_fps / target_fps).min(1.0)
    }

    /// Picks the largest threshold meeting a system throughput target.
    ///
    /// # Panics
    ///
    /// Panics if `sweep` is empty or a rate is non-positive.
    pub fn select_threshold_for_throughput(
        sweep: &[(f32, ConfusionQuadrants)],
        target_fps: f64,
        host_fps: f64,
    ) -> (f32, ConfusionQuadrants) {
        select_threshold_for_rerun(sweep, rerun_budget_for_throughput(target_fps, host_fps))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn sweep() -> Vec<(f32, ConfusionQuadrants)> {
            // Rerun ratio grows with threshold, as the DMU guarantees.
            [(0.5f32, 0.10f64), (0.7, 0.25), (0.9, 0.60)]
                .into_iter()
                .map(|(t, rerun)| {
                    (
                        t,
                        ConfusionQuadrants {
                            fs: 0.7 - rerun / 2.0,
                            fbar_sbar: rerun / 2.0,
                            fbar_s: 0.3 - rerun / 2.0,
                            fs_bar: rerun / 2.0,
                        },
                    )
                })
                .collect()
        }

        #[test]
        fn picks_largest_threshold_within_budget() {
            let s = sweep();
            let (t, q) = select_threshold_for_rerun(&s, 0.30);
            assert_eq!(t, 0.7);
            assert!(q.rerun_ratio() <= 0.30);
        }

        #[test]
        fn falls_back_to_cheapest_point() {
            let s = sweep();
            let (t, _) = select_threshold_for_rerun(&s, 0.01);
            assert_eq!(t, 0.5);
        }

        #[test]
        fn throughput_budget_via_eq1() {
            // 60 fps target on a 30 fps host allows R = 0.5.
            assert!((rerun_budget_for_throughput(60.0, 30.0) - 0.5).abs() < 1e-12);
            // Slower targets than the host cap at 1.
            assert_eq!(rerun_budget_for_throughput(10.0, 30.0), 1.0);
            let s = sweep();
            let (t, _) = select_threshold_for_throughput(&s, 90.0, 29.68);
            assert_eq!(t, 0.7);
        }

        #[test]
        #[should_panic(expected = "non-empty")]
        fn empty_sweep_panics() {
            let _ = select_threshold_for_rerun(&[], 0.5);
        }
    }
}
