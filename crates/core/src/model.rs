//! The paper's analytic performance and accuracy models.
//!
//! Equation (1): the average per-image interval of the multi-precision
//! system, with host re-inference overlapping FPGA execution:
//!
//! ```text
//! t_multi ≈ max(t_fp · R_rerun, t_bnn)
//! ```
//!
//! Equation (2): the accuracy of the combined system:
//!
//! ```text
//! Acc_multi ≈ Acc_bnn + Acc_fp · R_rerun − R_rerun_err
//! ```
//!
//! The paper notes eq. (2) overestimates in practice because the host's
//! accuracy drops on the hard-to-classify rerun subset;
//! [`accuracy_exact`] gives the exact identity using the subset
//! accuracy.

/// Eq. (1): average seconds per image of the pipelined system.
///
/// # Panics
///
/// Panics if a time is negative or `rerun_ratio` is outside `[0, 1]`.
pub fn interval_per_image(t_fp_img: f64, t_bnn_img: f64, rerun_ratio: f64) -> f64 {
    assert!(
        t_fp_img >= 0.0 && t_bnn_img >= 0.0,
        "times must be non-negative"
    );
    assert!(
        (0.0..=1.0).contains(&rerun_ratio),
        "rerun ratio must be in [0,1]"
    );
    (t_fp_img * rerun_ratio).max(t_bnn_img)
}

/// Eq. (1) expressed as images per second.
///
/// # Panics
///
/// Same conditions as [`interval_per_image`]; additionally both times
/// must not be zero simultaneously.
pub fn images_per_sec(t_fp_img: f64, t_bnn_img: f64, rerun_ratio: f64) -> f64 {
    let t = interval_per_image(t_fp_img, t_bnn_img, rerun_ratio);
    assert!(t > 0.0, "degenerate zero interval");
    1.0 / t
}

/// Eq. (2): predicted multi-precision accuracy from global quantities.
///
/// `acc_bnn` and `acc_fp` are 0–1 accuracies; `rerun_ratio` and
/// `rerun_err_ratio` are the DMU quantities `R_rerun` and `R_rerun_err`.
///
/// # Panics
///
/// Panics if any argument is outside `[0, 1]`.
pub fn accuracy_eq2(acc_bnn: f64, acc_fp: f64, rerun_ratio: f64, rerun_err_ratio: f64) -> f64 {
    for (name, v) in [
        ("acc_bnn", acc_bnn),
        ("acc_fp", acc_fp),
        ("rerun_ratio", rerun_ratio),
        ("rerun_err_ratio", rerun_err_ratio),
    ] {
        assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
    }
    acc_bnn + acc_fp * rerun_ratio - rerun_err_ratio
}

/// The exact accuracy identity: replacing eq. (2)'s global `Acc_fp` with
/// the host's accuracy **on the rerun subset** makes it exact:
///
/// ```text
/// Acc_multi = Acc_bnn − R_rerun_err + Acc_fp_subset · R_rerun
/// ```
///
/// # Panics
///
/// Panics if any argument is outside `[0, 1]`.
pub fn accuracy_exact(
    acc_bnn: f64,
    acc_fp_on_rerun_subset: f64,
    rerun_ratio: f64,
    rerun_err_ratio: f64,
) -> f64 {
    accuracy_eq2(
        acc_bnn,
        acc_fp_on_rerun_subset,
        rerun_ratio,
        rerun_err_ratio,
    )
}

/// The accuracy gain over the plain BNN implied by eq. (2):
/// `Acc_fp·R_rerun − R_rerun_err`.
pub fn accuracy_gain(acc_fp: f64, rerun_ratio: f64, rerun_err_ratio: f64) -> f64 {
    acc_fp * rerun_ratio - rerun_err_ratio
}

/// Eq. (1) generalised to an N-stage cascade: with every stage's
/// execution overlapping the others (the ideal dataflow pipeline), the
/// steady-state interval is set by the busiest stage:
///
/// ```text
/// t_cascade ≈ max_s (t_s · f_s)
/// ```
///
/// where `f_s` is the fraction of images **entering** stage `s`
/// (`f_0 = 1` by convention — pass the full per-stage enter fractions,
/// including the leading 1). Reduces to [`interval_per_image`] for the
/// 2-stage `[t_bnn, t_fp]` / `[1, R_rerun]` instance.
///
/// # Panics
///
/// Panics on empty or length-mismatched slices, negative times, or
/// enter fractions outside `[0, 1]`.
pub fn interval_per_image_n(stage_times: &[f64], enter_fracs: &[f64]) -> f64 {
    assert!(!stage_times.is_empty(), "cascade must have stages");
    assert_eq!(
        stage_times.len(),
        enter_fracs.len(),
        "one enter fraction per stage"
    );
    stage_times
        .iter()
        .zip(enter_fracs)
        .map(|(&t, &f)| {
            assert!(t >= 0.0, "times must be non-negative");
            assert!((0.0..=1.0).contains(&f), "enter fraction must be in [0,1]");
            t * f
        })
        .fold(0.0, f64::max)
}

/// Eq. (2) generalised to an N-stage cascade. Stage 0 contributes its
/// standalone accuracy; each upgrade stage `s ≥ 1` contributes the
/// images it corrects minus the correct-at-stage-0 images that were
/// escalated and lost:
///
/// ```text
/// Acc ≈ Acc_0 + Σ_{s≥1} (Acc_s · f_s − E_s)
/// ```
///
/// with `f_s` the fraction entering stage `s`, `Acc_s` the stage's
/// accuracy on its entering subset (use the global stage accuracy for
/// the eq.(2)-style estimate, the measured subset accuracy for the
/// exact identity), and `E_s` the fraction of **all** images that
/// stage `s − 1` would have classified correctly but escalated.
/// Reduces to [`accuracy_eq2`] / [`accuracy_exact`] at one upgrade.
///
/// # Panics
///
/// Panics if any accuracy or fraction is outside `[0, 1]`.
pub fn accuracy_eq2_n(acc_stage0: f64, upgrades: &[(f64, f64, f64)]) -> f64 {
    assert!(
        (0.0..=1.0).contains(&acc_stage0),
        "acc_stage0 must be in [0,1], got {acc_stage0}"
    );
    let mut acc = acc_stage0;
    for (i, &(acc_s, enter_frac, err_frac)) in upgrades.iter().enumerate() {
        for (name, v) in [
            ("accuracy", acc_s),
            ("enter fraction", enter_frac),
            ("escalated-correct fraction", err_frac),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "upgrade {i} {name} must be in [0,1], got {v}"
            );
        }
        acc += acc_s * enter_frac - err_frac;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_host_bound_regime() {
        // Paper: "in general the host re-inference latency is the
        // bottleneck". Model A: t_fp = 1/29.68 s, R = 0.251.
        let t_fp = 1.0 / 29.68;
        let t_bnn = 1.0 / 430.15;
        let t = interval_per_image(t_fp, t_bnn, 0.251);
        assert!((t - t_fp * 0.251).abs() < 1e-12);
        // ≈ 118 img/s upper bound for Model A + FINN (paper got 90.82
        // measured, below the ideal-overlap model).
        let fps = images_per_sec(t_fp, t_bnn, 0.251);
        assert!((fps - 118.25).abs() < 1.0, "fps {fps}");
    }

    #[test]
    fn eq1_bnn_bound_regime() {
        // With a very fast host or tiny rerun ratio the BNN dominates.
        let t = interval_per_image(1e-3, 2.32e-3, 0.01);
        assert!((t - 2.32e-3).abs() < 1e-12);
    }

    #[test]
    fn eq2_reproduces_paper_numbers() {
        // Model A & FINN: Acc_bnn = 0.785, subset accuracy 65 %,
        // R_rerun = 0.251, R_rerun_err = 0.123 →
        // 0.785 − 0.123 + 0.65·0.251 = 0.825 — the paper's 82.5 %.
        let acc = accuracy_exact(0.785, 0.65, 0.251, 0.123);
        assert!((acc - 0.825).abs() < 0.002, "acc {acc}");
    }

    #[test]
    fn eq2_with_global_accuracy_overestimates() {
        // Using Model A's global 81.4 % instead of the 65 % subset value
        // overestimates, as the paper warns.
        let optimistic = accuracy_eq2(0.785, 0.814, 0.251, 0.123);
        let exact = accuracy_exact(0.785, 0.65, 0.251, 0.123);
        assert!(optimistic > exact);
    }

    #[test]
    fn gain_decomposition() {
        let gain = accuracy_gain(0.65, 0.251, 0.123);
        assert!((accuracy_exact(0.785, 0.65, 0.251, 0.123) - (0.785 + gain)).abs() < 1e-12);
    }

    #[test]
    fn eq1_n_reduces_to_two_stage_form() {
        let t_fp = 1.0 / 29.68;
        let t_bnn = 1.0 / 430.15;
        for r in [0.0, 0.123, 0.251, 1.0] {
            let two = interval_per_image(t_fp, t_bnn, r);
            let n = interval_per_image_n(&[t_bnn, t_fp], &[1.0, r]);
            assert!((two - n).abs() < 1e-15, "r={r}: {two} vs {n}");
        }
    }

    #[test]
    fn eq1_n_picks_the_busiest_stage() {
        // Three stages: the middle one dominates at these fractions.
        let t = interval_per_image_n(&[1.0, 10.0, 100.0], &[1.0, 0.5, 0.01]);
        assert!((t - 5.0).abs() < 1e-12);
    }

    #[test]
    fn eq2_n_reduces_to_two_stage_form() {
        let two = accuracy_exact(0.785, 0.65, 0.251, 0.123);
        let n = accuracy_eq2_n(0.785, &[(0.65, 0.251, 0.123)]);
        assert!((two - n).abs() < 1e-15);
    }

    #[test]
    fn eq2_n_accumulates_upgrades() {
        // Two upgrade stages, each trading escalated-correct mass for
        // corrected mass.
        let acc = accuracy_eq2_n(0.70, &[(0.8, 0.3, 0.05), (0.95, 0.1, 0.02)]);
        assert!((acc - (0.70 + 0.8 * 0.3 - 0.05 + 0.95 * 0.1 - 0.02)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "enter fraction")]
    fn eq1_n_rejects_bad_fraction() {
        let _ = interval_per_image_n(&[1.0], &[1.5]);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn eq2_n_rejects_bad_upgrade() {
        let _ = accuracy_eq2_n(0.5, &[(1.2, 0.5, 0.1)]);
    }

    #[test]
    #[should_panic(expected = "rerun ratio")]
    fn bad_ratio_rejected() {
        let _ = interval_per_image(1.0, 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_accuracy_rejected() {
        let _ = accuracy_eq2(1.2, 0.5, 0.5, 0.1);
    }
}
