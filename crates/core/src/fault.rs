//! Deterministic fault injection and graceful degradation.
//!
//! The paper's throughput guarantee (eq. (1)) holds only while the slow
//! host keeps up with its rerun stream; CascadeCNN and FINN both frame
//! the two-stage hand-off as a system that must survive the
//! high-precision side misbehaving. This module makes that testable:
//!
//! - [`FaultPlan`] describes *what goes wrong* — transient host
//!   inference errors, per-image latency spikes, host-worker death, and
//!   FPGA stream faults (via [`mp_fpga::StreamFaults`]) — all keyed on a
//!   seed so a chaos run replays byte-identically;
//! - [`FaultInjector`] turns the plan into per-image, per-attempt
//!   decisions with a stateless hash (no RNG state to share across the
//!   pipeline's threads);
//! - [`DegradationPolicy`] describes *what the pipeline does about it* —
//!   a retry budget with exponential backoff, a per-image host deadline,
//!   and a circuit breaker that trips to BNN-only mode after `N`
//!   consecutive host failures, with periodic recovery probing;
//! - [`CircuitBreaker`] is the policy's state machine;
//! - [`FaultEvent`] / [`DegradationStats`] are the audit trail surfaced
//!   in [`PipelineResult`](crate::PipelineResult).
//!
//! Injected latency is *virtual*: the injector reports what the latency
//! would have been and the policy compares it with the deadline, so
//! chaos tests stay fast and deterministic while exercising exactly the
//! timeout/degradation control path.

use std::fmt;

use serde::{Deserialize, Serialize};

use mp_fpga::StreamFaults;

use crate::CoreError;

/// A seeded description of the faults to inject into one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed; every per-image decision derives from it.
    pub seed: u64,
    /// Probability that a host inference attempt fails transiently.
    pub host_error_rate: f64,
    /// Probability that a host inference attempt suffers a latency
    /// spike of [`host_spike_latency_s`](Self::host_spike_latency_s).
    pub host_spike_rate: f64,
    /// Virtual latency of a spiked attempt, in seconds. Compared with
    /// [`DegradationPolicy::host_deadline_s`]; a spike above the
    /// deadline is a timeout fault.
    pub host_spike_latency_s: f64,
    /// Kill the host worker after it has processed this many flagged
    /// images (an injected panic; the pipeline must degrade, not abort).
    pub host_death_after: Option<usize>,
    /// FPGA-side stream faults (source stalls / interval jitter) for
    /// [`mp_fpga::StreamSim`]-based experiments.
    pub stream: StreamFaults,
}

impl FaultPlan {
    /// The fault-free plan: a threaded `execute` under it is
    /// functionally identical to the modelled executor.
    pub fn none() -> Self {
        Self {
            seed: 0,
            host_error_rate: 0.0,
            host_spike_rate: 0.0,
            host_spike_latency_s: 1.0,
            host_death_after: None,
            stream: StreamFaults::none(),
        }
    }

    /// A fault-free plan carrying only a seed (faults added via the
    /// `with_*` builders).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            stream: StreamFaults::seeded(seed),
            ..Self::none()
        }
    }

    /// Sets the transient host error rate.
    pub fn with_host_error_rate(mut self, rate: f64) -> Self {
        self.host_error_rate = rate;
        self
    }

    /// Sets the host latency-spike process.
    pub fn with_host_spikes(mut self, rate: f64, latency_s: f64) -> Self {
        self.host_spike_rate = rate;
        self.host_spike_latency_s = latency_s;
        self
    }

    /// Kills the host worker after `processed` flagged images.
    pub fn with_host_death_after(mut self, processed: usize) -> Self {
        self.host_death_after = Some(processed);
        self
    }

    /// Sets the FPGA-side stream faults.
    pub fn with_stream(mut self, stream: StreamFaults) -> Self {
        self.stream = stream;
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.host_error_rate == 0.0
            && self.host_spike_rate == 0.0
            && self.host_death_after.is_none()
            && self.stream.is_none()
    }

    /// Validates rates and durations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if a rate is outside
    /// `[0, 1]` or a duration is negative.
    pub fn validate(&self) -> Result<(), CoreError> {
        for (name, rate) in [
            ("host_error_rate", self.host_error_rate),
            ("host_spike_rate", self.host_spike_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(CoreError::InvalidConfig(format!(
                    "{name} {rate} outside [0,1]"
                )));
            }
        }
        if self.host_spike_latency_s < 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "host_spike_latency_s {} negative",
                self.host_spike_latency_s
            )));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// How the pipeline degrades when the host misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Retries allowed per flagged image beyond the first attempt.
    pub max_retries: u32,
    /// Base of the exponential (virtual) backoff: retry `k` costs
    /// `backoff_base_s · 2^k` from the budget.
    pub backoff_base_s: f64,
    /// Total virtual backoff budget per image; retrying stops once the
    /// next backoff would exceed it, even if retries remain.
    pub backoff_budget_s: f64,
    /// Per-image host deadline: an attempt whose (injected) latency
    /// exceeds this is a timeout fault.
    pub host_deadline_s: f64,
    /// Consecutive host failures that trip the circuit breaker into
    /// BNN-only mode.
    pub breaker_threshold: u32,
    /// While the breaker is open, probe the host once every this many
    /// flagged images; a successful probe closes the breaker.
    pub breaker_probe_every: u32,
}

impl DegradationPolicy {
    /// Validates the policy knobs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on non-positive thresholds,
    /// deadline, or probe interval.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.breaker_threshold == 0 {
            return Err(CoreError::InvalidConfig(
                "breaker_threshold must be positive".into(),
            ));
        }
        if self.breaker_probe_every == 0 {
            return Err(CoreError::InvalidConfig(
                "breaker_probe_every must be positive".into(),
            ));
        }
        if self.host_deadline_s <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "host_deadline_s must be positive".into(),
            ));
        }
        if self.backoff_base_s < 0.0 || self.backoff_budget_s < 0.0 {
            return Err(CoreError::InvalidConfig(
                "backoff parameters must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_s: 0.005,
            backoff_budget_s: 0.1,
            host_deadline_s: 0.25,
            breaker_threshold: 5,
            breaker_probe_every: 8,
        }
    }
}

/// The kind of an injected or observed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A transient host inference error.
    HostTransient,
    /// A host latency spike that exceeded the per-image deadline.
    HostTimeout,
    /// The host worker thread died.
    HostWorkerDeath,
    /// The circuit breaker was open, so the host was not attempted.
    BreakerOpen,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::HostTransient => "transient host error",
            FaultKind::HostTimeout => "host deadline exceeded",
            FaultKind::HostWorkerDeath => "host worker death",
            FaultKind::BreakerOpen => "circuit breaker open",
        };
        f.write_str(s)
    }
}

/// One entry of the pipeline's fault log. Same seed ⇒ byte-identical
/// log (the chaos property tests assert this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A host inference attempt failed.
    HostFault {
        /// Image index.
        image: usize,
        /// Zero-based attempt number.
        attempt: u32,
        /// What went wrong.
        kind: FaultKind,
    },
    /// A flagged image succeeded after at least one retry.
    Recovered {
        /// Image index.
        image: usize,
        /// Retries it took.
        retries: u32,
    },
    /// A flagged image fell back to its BNN prediction.
    Fallback {
        /// Image index.
        image: usize,
        /// The fault that exhausted the policy.
        kind: FaultKind,
    },
    /// The breaker tripped open: subsequent flagged images go BNN-only.
    BreakerOpened {
        /// Image index at which it tripped.
        image: usize,
        /// Consecutive failures observed.
        consecutive_failures: u32,
    },
    /// A recovery probe succeeded and closed the breaker.
    BreakerClosed {
        /// Image index of the successful probe.
        image: usize,
    },
    /// The host worker thread died; every flagged image without a
    /// delivered prediction falls back to the BNN.
    WorkerDied {
        /// Panic payload or failure description.
        detail: String,
    },
}

/// Degradation accounting for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationStats {
    /// Flagged images that fell back to their BNN prediction.
    pub degraded_count: usize,
    /// Host inference retries performed.
    pub retries: usize,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: usize,
    /// Host inference attempts (first tries, retries and probes).
    pub host_attempts: usize,
    /// Producer-side sends that found the bounded channel full (the
    /// back-pressure the unbounded channel used to hide). Timing
    /// dependent, hence excluded from determinism comparisons.
    pub backpressure_events: usize,
    /// Virtual seconds spent in retry backoff.
    pub virtual_backoff_s: f64,
    /// The ordered fault log.
    pub fault_log: Vec<FaultEvent>,
}

/// The fault an injector chose for one host inference attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HostFault {
    /// The attempt fails transiently.
    Transient,
    /// The attempt completes but takes `latency_s` (virtual) seconds.
    Spike {
        /// Injected latency of the attempt.
        latency_s: f64,
    },
}

/// Turns a [`FaultPlan`] into deterministic per-image decisions.
///
/// Decisions are pure functions of `(seed, image, attempt)`, so they do
/// not depend on thread interleaving, wall-clock time, or how many
/// images were processed before — the property the chaos determinism
/// tests rely on.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the plan is invalid.
    pub fn new(plan: FaultPlan) -> Result<Self, CoreError> {
        plan.validate()?;
        Ok(Self { plan })
    }

    /// The plan behind this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault (if any) injected into attempt `attempt` of re-running
    /// image `image` on the host. Transient errors take precedence over
    /// spikes; retries re-roll both, so an image can recover.
    pub fn host_fault(&self, image: usize, attempt: u32) -> Option<HostFault> {
        if self.plan.host_error_rate > 0.0
            && unit_hash(self.plan.seed, image as u64, u64::from(attempt), 0)
                < self.plan.host_error_rate
        {
            return Some(HostFault::Transient);
        }
        if self.plan.host_spike_rate > 0.0
            && unit_hash(self.plan.seed, image as u64, u64::from(attempt), 1)
                < self.plan.host_spike_rate
        {
            return Some(HostFault::Spike {
                latency_s: self.plan.host_spike_latency_s,
            });
        }
        None
    }

    /// After how many processed flagged images the host worker dies.
    pub fn host_death_after(&self) -> Option<usize> {
        self.plan.host_death_after
    }
}

/// The degradation policy's circuit-breaker state machine.
///
/// Closed → (N consecutive failures) → Open → (every `probe_every`
/// flagged images, one half-open probe) → Closed on probe success.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    probe_every: u32,
    consecutive_failures: u32,
    open: bool,
    skipped_since_probe: u32,
    trips: usize,
}

impl CircuitBreaker {
    /// Creates a breaker following `policy`.
    pub fn new(policy: &DegradationPolicy) -> Self {
        Self {
            threshold: policy.breaker_threshold.max(1),
            probe_every: policy.breaker_probe_every.max(1),
            consecutive_failures: 0,
            open: false,
            skipped_since_probe: 0,
            trips: 0,
        }
    }

    /// Whether the breaker is open (BNN-only mode).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Consecutive failures observed since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Decides whether the next flagged image should attempt the host.
    /// Closed: always. Open: only every `probe_every`-th image (a
    /// half-open recovery probe).
    pub fn should_attempt(&mut self) -> bool {
        if !self.open {
            return true;
        }
        self.skipped_since_probe += 1;
        if self.skipped_since_probe >= self.probe_every {
            self.skipped_since_probe = 0;
            true
        } else {
            false
        }
    }

    /// Records a successful host inference. Returns `true` if this
    /// closed an open breaker (a recovery).
    pub fn record_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        let recovered = self.open;
        self.open = false;
        recovered
    }

    /// Records a failed host inference. Returns `true` if this tripped
    /// the breaker open.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if !self.open && self.consecutive_failures >= self.threshold {
            self.open = true;
            self.trips += 1;
            self.skipped_since_probe = 0;
            true
        } else {
            false
        }
    }
}

/// A fleet-level fault: something that happens to a whole pipeline
/// replica rather than to one image. Consumed by `mp-fleet`'s
/// virtual-time cluster simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplicaFault {
    /// The replica crashes. Its queued and in-flight requests must be
    /// re-routed or shed explicitly — never silently dropped.
    Crash,
    /// A crashed replica comes back up with an empty queue and a fresh
    /// (closed) circuit breaker.
    Recover,
    /// Every batch dispatched after this point takes `factor` times its
    /// modelled service time (a slow replica, or a stall for very large
    /// factors).
    Slowdown {
        /// Service-time multiplier, `>= 1` and finite.
        factor: f64,
    },
    /// Clears a previous [`ReplicaFault::Slowdown`].
    Restore,
}

/// One scheduled fleet fault: which replica, when (virtual seconds),
/// and what happens to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaFaultEvent {
    /// Index of the replica the fault hits.
    pub replica: usize,
    /// Virtual time at which it hits, in seconds.
    pub at_s: f64,
    /// What happens.
    pub fault: ReplicaFault,
}

/// The fleet-level extension of [`FaultPlan`]: a seeded schedule of
/// replica crashes, slowdowns and recoveries for one fleet run. Same
/// seed and builders ⇒ byte-identical schedule ⇒ byte-identical fleet
/// replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultPlan {
    /// Root seed; the generated-schedule builders derive from it.
    pub seed: u64,
    /// The scheduled events, in insertion order. Consumers process them
    /// sorted by time (ties broken by replica index, then insertion
    /// order).
    pub events: Vec<ReplicaFaultEvent>,
}

impl FleetFaultPlan {
    /// The fault-free plan: a fleet run under it matches the unfaulted
    /// baseline exactly.
    pub fn none() -> Self {
        Self {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// An empty plan carrying only a seed (events added via the
    /// `with_*` builders).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Schedules a crash of `replica` at `at_s`.
    #[must_use]
    pub fn with_crash(mut self, replica: usize, at_s: f64) -> Self {
        self.events.push(ReplicaFaultEvent {
            replica,
            at_s,
            fault: ReplicaFault::Crash,
        });
        self
    }

    /// Schedules a recovery of `replica` at `at_s`.
    #[must_use]
    pub fn with_recovery(mut self, replica: usize, at_s: f64) -> Self {
        self.events.push(ReplicaFaultEvent {
            replica,
            at_s,
            fault: ReplicaFault::Recover,
        });
        self
    }

    /// Schedules a service-time slowdown of `replica` from `at_s` on.
    #[must_use]
    pub fn with_slowdown(mut self, replica: usize, at_s: f64, factor: f64) -> Self {
        self.events.push(ReplicaFaultEvent {
            replica,
            at_s,
            fault: ReplicaFault::Slowdown { factor },
        });
        self
    }

    /// Clears a slowdown of `replica` at `at_s`.
    #[must_use]
    pub fn with_restore(mut self, replica: usize, at_s: f64) -> Self {
        self.events.push(ReplicaFaultEvent {
            replica,
            at_s,
            fault: ReplicaFault::Restore,
        });
        self
    }

    /// Adds `kills` seeded crash+recover pairs over `[0, horizon_s)`:
    /// each kill picks a replica and a crash time from the plan's seed
    /// and recovers it `mttr_s` later. Crash times land in the first 80%
    /// of the horizon so the recovery is observable within it.
    #[must_use]
    pub fn with_random_kills(
        mut self,
        replicas: usize,
        horizon_s: f64,
        kills: usize,
        mttr_s: f64,
    ) -> Self {
        for k in 0..kills {
            let at_s = unit_hash(self.seed, k as u64, 0, 20) * horizon_s * 0.8;
            let replica = ((unit_hash(self.seed, k as u64, 1, 21) * replicas as f64) as usize)
                .min(replicas.saturating_sub(1));
            self = self
                .with_crash(replica, at_s)
                .with_recovery(replica, at_s + mttr_s);
        }
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by `(at_s, replica)`, ties keeping insertion
    /// order — the canonical processing order for a deterministic fleet
    /// replay.
    pub fn sorted_events(&self) -> Vec<ReplicaFaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            a.at_s
                .partial_cmp(&b.at_s)
                .expect("validated finite times")
                .then(a.replica.cmp(&b.replica))
        });
        events
    }

    /// Validates times and slowdown factors (`replica` bounds are the
    /// consumer's job — the plan does not know the fleet size).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a non-finite or negative
    /// event time, or a slowdown factor below `1` or non-finite.
    pub fn validate(&self) -> Result<(), CoreError> {
        for ev in &self.events {
            if !ev.at_s.is_finite() || ev.at_s < 0.0 {
                return Err(CoreError::InvalidConfig(format!(
                    "replica fault time {} invalid",
                    ev.at_s
                )));
            }
            if let ReplicaFault::Slowdown { factor } = ev.fault {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(CoreError::InvalidConfig(format!(
                        "slowdown factor {factor} must be finite and >= 1"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Default for FleetFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Panic message used for injected host-worker death; the pipeline
/// recognises real panics by the same join-path, this constant only
/// lets test harnesses silence the expected noise.
pub const INJECTED_DEATH_MSG: &str = "injected host worker death";

/// Installs (once) a panic hook that suppresses the backtrace noise of
/// *injected* worker deaths while forwarding every other panic to the
/// previous hook. Chaos tests and the `chaos_ablation` binary call this
/// so expected kills don't flood stderr.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.contains(INJECTED_DEATH_MSG)) {
                return;
            }
            prev(info);
        }));
    });
}

/// SplitMix64-style hash of `(seed, image, attempt, salt)` folded into
/// `[0, 1)`. Mirrors `mp_fpga::stream_sim`'s hash (crates cannot share
/// a private helper); both must stay stateless and platform-stable.
fn unit_hash(seed: u64, image: u64, attempt: u64, salt: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(image.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(attempt.wrapping_mul(0xD6E8_FEB8_6659_FD93))
        .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::none()).unwrap();
        for image in 0..200 {
            assert_eq!(inj.host_fault(image, 0), None);
        }
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::seeded(1).with_host_error_rate(0.1).is_none());
    }

    #[test]
    fn injection_is_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::seeded(42).with_host_error_rate(0.3)).unwrap();
        let b = FaultInjector::new(FaultPlan::seeded(42).with_host_error_rate(0.3)).unwrap();
        let c = FaultInjector::new(FaultPlan::seeded(43).with_host_error_rate(0.3)).unwrap();
        let faults = |inj: &FaultInjector| -> Vec<bool> {
            (0..500).map(|i| inj.host_fault(i, 0).is_some()).collect()
        };
        assert_eq!(faults(&a), faults(&b));
        assert_ne!(faults(&a), faults(&c));
    }

    #[test]
    fn error_rate_is_roughly_honoured() {
        let inj = FaultInjector::new(FaultPlan::seeded(7).with_host_error_rate(0.25)).unwrap();
        let hits = (0..4000)
            .filter(|&i| inj.host_fault(i, 0).is_some())
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn retries_reroll_faults() {
        let inj = FaultInjector::new(FaultPlan::seeded(9).with_host_error_rate(0.5)).unwrap();
        // Some image that faults on attempt 0 must pass on a later
        // attempt (each attempt is an independent draw).
        let recovered = (0..200).any(|i| {
            inj.host_fault(i, 0).is_some() && (1..4).any(|a| inj.host_fault(i, a).is_none())
        });
        assert!(recovered);
    }

    #[test]
    fn spikes_report_their_latency() {
        let inj = FaultInjector::new(FaultPlan::seeded(5).with_host_spikes(1.0, 2.5)).unwrap();
        match inj.host_fault(0, 0) {
            Some(HostFault::Spike { latency_s }) => assert_eq!(latency_s, 2.5),
            other => panic!("expected spike, got {other:?}"),
        }
    }

    #[test]
    fn invalid_plans_rejected() {
        assert!(FaultPlan::seeded(0)
            .with_host_error_rate(1.5)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(0)
            .with_host_spikes(-0.1, 1.0)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(0)
            .with_host_spikes(0.1, -1.0)
            .validate()
            .is_err());
        assert!(FaultInjector::new(FaultPlan::seeded(0).with_host_error_rate(2.0)).is_err());
    }

    #[test]
    fn invalid_policies_rejected() {
        let ok = DegradationPolicy::default();
        assert!(ok.validate().is_ok());
        assert!(DegradationPolicy {
            breaker_threshold: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(DegradationPolicy {
            breaker_probe_every: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(DegradationPolicy {
            host_deadline_s: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(DegradationPolicy {
            backoff_base_s: -1.0,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn breaker_trips_and_recovers() {
        let policy = DegradationPolicy {
            breaker_threshold: 3,
            breaker_probe_every: 2,
            ..DegradationPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        assert!(b.should_attempt());
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        // Third consecutive failure trips it.
        assert!(b.record_failure());
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        // Open: skip one, probe on the second.
        assert!(!b.should_attempt());
        assert!(b.should_attempt());
        // Probe succeeds → closed again.
        assert!(b.record_success());
        assert!(!b.is_open());
        assert!(b.should_attempt());
    }

    #[test]
    fn open_breaker_failure_does_not_double_trip() {
        let policy = DegradationPolicy {
            breaker_threshold: 1,
            ..DegradationPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        assert!(b.record_failure());
        assert!(!b.record_failure());
        assert_eq!(b.trips(), 1);
    }

    // Satellite audit (PR 6): the half-open/reset semantics below were
    // reviewed line by line and found sound; these tests pin them so a
    // future edit cannot regress the recovery path silently.

    /// The breaker must not stay open forever once faults stop: after a
    /// trip, a probe is admitted within `probe_every` flagged images and
    /// a successful probe closes it again.
    #[test]
    fn breaker_closes_after_faults_stop() {
        let policy = DegradationPolicy {
            breaker_threshold: 2,
            breaker_probe_every: 4,
            ..DegradationPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        b.record_failure();
        assert!(b.record_failure(), "second consecutive failure trips");
        assert!(b.is_open());
        // Faults stop here. The breaker must offer a probe within
        // `probe_every` images, never later.
        let skipped = (0..8).take_while(|_| !b.should_attempt()).count();
        assert_eq!(skipped, 3, "probe admitted on the probe_every-th image");
        assert!(b.record_success(), "successful probe closes the breaker");
        assert!(!b.is_open());
        assert!(b.should_attempt(), "closed breaker admits everything");
        assert_eq!(b.consecutive_failures(), 0, "success resets the streak");
    }

    /// A failed half-open probe re-opens the breaker without counting a
    /// new trip, and the *next* probe window starts from the failed
    /// probe (no immediate retry storm).
    #[test]
    fn failed_probe_reopens_without_double_counting_trips() {
        let policy = DegradationPolicy {
            breaker_threshold: 1,
            breaker_probe_every: 3,
            ..DegradationPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        assert!(b.record_failure());
        assert_eq!(b.trips(), 1);
        // First probe arrives after probe_every - 1 skips…
        assert!(!b.should_attempt());
        assert!(!b.should_attempt());
        assert!(b.should_attempt());
        // …and fails: still open, still one trip.
        assert!(!b.record_failure(), "failed probe is not a fresh trip");
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        // The probe interval restarts — no immediate second probe.
        assert!(!b.should_attempt());
        assert!(!b.should_attempt());
        assert!(b.should_attempt());
        assert!(b.record_success());
        assert!(!b.is_open());
        // A fresh failure streak after recovery counts a *second* trip.
        assert!(b.record_failure());
        assert_eq!(b.trips(), 2);
    }

    /// Trip counts are a pure function of the (seeded) fault sequence:
    /// replaying the identical sequence yields identical trips and
    /// identical open/closed trajectories.
    #[test]
    fn breaker_trip_counts_are_seed_deterministic() {
        let inj = FaultInjector::new(FaultPlan::seeded(31).with_host_error_rate(0.45)).unwrap();
        let run = || {
            let mut b = CircuitBreaker::new(&DegradationPolicy::default());
            let mut trajectory = Vec::new();
            for image in 0..400 {
                if !b.should_attempt() {
                    trajectory.push((image, b.is_open()));
                    continue;
                }
                if inj.host_fault(image, 0).is_some() {
                    b.record_failure();
                } else {
                    b.record_success();
                }
                trajectory.push((image, b.is_open()));
            }
            (b.trips(), trajectory)
        };
        let (trips_a, traj_a) = run();
        let (trips_b, traj_b) = run();
        assert_eq!(trips_a, trips_b);
        assert_eq!(traj_a, traj_b);
        assert!(trips_a > 0, "a 45% error rate must trip the breaker");
    }

    #[test]
    fn fleet_plan_builders_schedule_and_sort() {
        let plan = FleetFaultPlan::seeded(5)
            .with_recovery(1, 3.0)
            .with_crash(1, 1.0)
            .with_slowdown(0, 2.0, 8.0)
            .with_restore(0, 2.5);
        assert!(!plan.is_none());
        plan.validate().unwrap();
        let sorted = plan.sorted_events();
        let times: Vec<f64> = sorted.iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![1.0, 2.0, 2.5, 3.0]);
        assert_eq!(sorted[0].fault, ReplicaFault::Crash);
        assert!(FleetFaultPlan::none().is_none());
    }

    #[test]
    fn fleet_plan_random_kills_are_seeded_and_paired() {
        let a = FleetFaultPlan::seeded(9).with_random_kills(4, 100.0, 3, 5.0);
        let b = FleetFaultPlan::seeded(9).with_random_kills(4, 100.0, 3, 5.0);
        let c = FleetFaultPlan::seeded(10).with_random_kills(4, 100.0, 3, 5.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events.len(), 6, "each kill is a crash + recovery");
        a.validate().unwrap();
        for pair in a.events.chunks(2) {
            assert_eq!(pair[0].fault, ReplicaFault::Crash);
            assert_eq!(pair[1].fault, ReplicaFault::Recover);
            assert_eq!(pair[0].replica, pair[1].replica);
            assert!(pair[1].at_s > pair[0].at_s);
            assert!(pair[0].at_s < 80.0, "crashes land in the first 80%");
        }
    }

    #[test]
    fn fleet_plan_rejects_bad_events() {
        assert!(FleetFaultPlan::seeded(0)
            .with_crash(0, -1.0)
            .validate()
            .is_err());
        assert!(FleetFaultPlan::seeded(0)
            .with_crash(0, f64::NAN)
            .validate()
            .is_err());
        assert!(FleetFaultPlan::seeded(0)
            .with_slowdown(0, 1.0, 0.5)
            .validate()
            .is_err());
        assert!(FleetFaultPlan::seeded(0)
            .with_slowdown(0, 1.0, f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn fleet_plan_serialises() {
        let plan = FleetFaultPlan::seeded(3)
            .with_crash(2, 1.5)
            .with_slowdown(0, 0.5, 4.0);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FleetFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn fault_log_serialises() {
        let log = vec![
            FaultEvent::HostFault {
                image: 3,
                attempt: 0,
                kind: FaultKind::HostTransient,
            },
            FaultEvent::Fallback {
                image: 3,
                kind: FaultKind::HostTransient,
            },
            FaultEvent::WorkerDied {
                detail: INJECTED_DEATH_MSG.into(),
            },
        ];
        let json = serde_json::to_string(&log).unwrap();
        let back: Vec<FaultEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}
