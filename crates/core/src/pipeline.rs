//! The heterogeneous multi-precision executor (paper Figs. 1–2).
//!
//! The FPGA (the [`HardwareBnn`] functional model) classifies every
//! image; the DMU flags low-confidence classifications; the host network
//! re-infers the flagged subset. Two execution modes are provided:
//!
//! - [`MultiPrecisionPipeline::run`] computes the functional result and
//!   a **modelled** execution time that replays the paper's
//!   `async(1)`/`wait(1)` batch overlap: while the FPGA processes batch
//!   `i`, the host re-infers the images flagged in batch `i−1`;
//! - [`MultiPrecisionPipeline::run_parallel`] actually executes the two
//!   sides on separate threads connected by a channel, demonstrating the
//!   concurrent structure of Fig. 2 (its wall-clock time reflects this
//!   machine, not the ZC702).

use crossbeam::channel;

use mp_bnn::HardwareBnn;
use mp_dataset::Dataset;
use mp_nn::Network;
use mp_tensor::{Shape, Tensor};

use crate::dmu::{ConfusionQuadrants, Dmu};
use crate::model;
use crate::CoreError;

/// Timing constants of the two heterogeneous processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTiming {
    /// Seconds per image on the FPGA BNN (e.g. `1/430.15`).
    pub t_bnn_img_s: f64,
    /// Seconds per image on the host float network (e.g. `1/29.68`).
    pub t_fp_img_s: f64,
    /// Images per FPGA batch in the `async`/`wait` loop.
    pub batch_size: usize,
}

impl PipelineTiming {
    /// Creates a timing record.
    ///
    /// # Panics
    ///
    /// Panics if a time is non-positive or `batch_size` is zero.
    pub fn new(t_bnn_img_s: f64, t_fp_img_s: f64, batch_size: usize) -> Self {
        assert!(
            t_bnn_img_s > 0.0 && t_fp_img_s > 0.0,
            "times must be positive"
        );
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            t_bnn_img_s,
            t_fp_img_s,
            batch_size,
        }
    }
}

/// Outcome of one multi-precision classification run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Images classified.
    pub total_images: usize,
    /// Final multi-precision accuracy.
    pub accuracy: f64,
    /// Standalone BNN accuracy on the same set.
    pub bnn_accuracy: f64,
    /// Host accuracy on the rerun subset (the paper reports 65/79/83 %
    /// for Models A/B/C — lower than their global accuracies because the
    /// subset is hard).
    pub host_subset_accuracy: f64,
    /// DMU quadrants at the operating threshold.
    pub quadrants: ConfusionQuadrants,
    /// Images re-inferred on the host.
    pub rerun_count: usize,
    /// Modelled execution time of the batch-overlapped pipeline.
    pub modeled_time_s: f64,
    /// Throughput from the modelled time.
    pub modeled_images_per_sec: f64,
    /// Eq. (1) prediction with the measured rerun ratio.
    pub analytic_images_per_sec: f64,
    /// Eq. (2) prediction with the host's *global* accuracy (the paper's
    /// optimistic form).
    pub analytic_accuracy_eq2: f64,
    /// Final per-image class predictions.
    pub predictions: Vec<usize>,
    /// Wall-clock seconds when run with [`MultiPrecisionPipeline::run_parallel`].
    pub wall_seconds: Option<f64>,
}

/// The multi-precision system: BNN + DMU + threshold.
#[derive(Debug)]
pub struct MultiPrecisionPipeline<'a> {
    hw: &'a HardwareBnn,
    dmu: &'a Dmu,
    threshold: f32,
}

impl<'a> MultiPrecisionPipeline<'a> {
    /// Creates a pipeline at a DMU confidence `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(hw: &'a HardwareBnn, dmu: &'a Dmu, threshold: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        Self { hw, dmu, threshold }
    }

    /// The DMU confidence threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Runs the full set through BNN → DMU → host, with modelled timing.
    ///
    /// `host_global_accuracy` is the host model's standalone accuracy on
    /// the full test set, used for the eq. (2) prediction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies.
    pub fn run(
        &self,
        host: &mut Network,
        data: &Dataset,
        timing: &PipelineTiming,
        host_global_accuracy: f64,
    ) -> Result<PipelineResult, CoreError> {
        let stage = self.classify_and_flag(data)?;
        let rerun_indices: Vec<usize> = stage.flagged_indices();
        let host_preds = infer_host_subset(host, data, &rerun_indices)?;
        self.finish(
            data,
            timing,
            host_global_accuracy,
            stage,
            rerun_indices,
            host_preds,
            None,
        )
    }

    /// Runs with the FPGA simulator and the host network on separate
    /// threads (Fig. 2's concurrent structure). Functionally identical
    /// to [`run`](Self::run); additionally reports wall-clock time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies; errors on the
    /// host thread are propagated.
    pub fn run_parallel(
        &self,
        host: &mut Network,
        data: &Dataset,
        timing: &PipelineTiming,
        host_global_accuracy: f64,
    ) -> Result<PipelineResult, CoreError> {
        let start = std::time::Instant::now();
        let n = data.len();
        let batch = timing.batch_size;
        let (tx, rx) = channel::unbounded::<(usize, Tensor)>();
        // Host worker: re-infers flagged images as they arrive.
        let host_result = std::thread::scope(
            |scope| -> Result<(StageOutput, Vec<(usize, usize)>), CoreError> {
                let worker = scope.spawn(move || -> Result<Vec<(usize, usize)>, CoreError> {
                    let mut preds = Vec::new();
                    for (index, image) in rx {
                        let scores = host.forward(&image)?;
                        let p = Network::argmax_rows(&scores)?;
                        preds.push((index, p[0]));
                    }
                    Ok(preds)
                });
                // "FPGA" side: classify batch i, flag, send to the host.
                let mut stage = StageOutput::with_capacity(n);
                'batches: for chunk_start in (0..n).step_by(batch) {
                    let chunk_end = (chunk_start + batch).min(n);
                    for i in chunk_start..chunk_end {
                        let image = data.images().batch_item(i)?;
                        let scores = self.hw.infer_image(&image)?;
                        let scores_f: Vec<f32> = scores.iter().map(|&s| s as f32).collect();
                        let pred = argmax(&scores_f);
                        let p = self.dmu.predict(&scores_f);
                        let keep = p >= self.threshold;
                        stage.push(pred, keep);
                        if !keep && tx.send((i, image)).is_err() {
                            // The worker died (its error is joined below);
                            // stop feeding it.
                            break 'batches;
                        }
                    }
                }
                drop(tx);
                let preds = worker.join().expect("host worker must not panic")?;
                Ok((stage, preds))
            },
        )?;
        let (stage, mut host_pairs) = host_result;
        host_pairs.sort_unstable_by_key(|&(i, _)| i);
        let rerun_indices: Vec<usize> = host_pairs.iter().map(|&(i, _)| i).collect();
        let host_preds: Vec<usize> = host_pairs.iter().map(|&(_, p)| p).collect();
        let wall = start.elapsed().as_secs_f64();
        self.finish(
            data,
            timing,
            host_global_accuracy,
            stage,
            rerun_indices,
            host_preds,
            Some(wall),
        )
    }

    fn classify_and_flag(&self, data: &Dataset) -> Result<StageOutput, CoreError> {
        let scores = self.hw.infer_batch(data.images())?;
        let preds = Network::argmax_rows(&scores)?;
        let keep_flags = self.dmu.estimate_batch(&scores, self.threshold)?;
        let mut stage = StageOutput::with_capacity(data.len());
        for (p, k) in preds.into_iter().zip(keep_flags) {
            stage.push(p, k);
        }
        Ok(stage)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        data: &Dataset,
        timing: &PipelineTiming,
        host_global_accuracy: f64,
        stage: StageOutput,
        rerun_indices: Vec<usize>,
        host_preds: Vec<usize>,
        wall_seconds: Option<f64>,
    ) -> Result<PipelineResult, CoreError> {
        let n = data.len();
        let labels = data.labels();
        let bnn_correct: Vec<bool> = stage
            .bnn_preds
            .iter()
            .zip(labels)
            .map(|(p, l)| p == l)
            .collect();
        let quadrants = ConfusionQuadrants::tally(&bnn_correct, &stage.kept);
        // Merge host predictions over BNN predictions.
        let mut final_preds = stage.bnn_preds.clone();
        let mut host_hits = 0usize;
        for (&idx, &pred) in rerun_indices.iter().zip(&host_preds) {
            final_preds[idx] = pred;
            if pred == labels[idx] {
                host_hits += 1;
            }
        }
        let accuracy = final_preds
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / n.max(1) as f64;
        let bnn_accuracy = bnn_correct.iter().filter(|&&c| c).count() as f64 / n.max(1) as f64;
        let host_subset_accuracy = if rerun_indices.is_empty() {
            0.0
        } else {
            host_hits as f64 / rerun_indices.len() as f64
        };
        let modeled_time_s = modeled_batch_time(&stage.kept, timing);
        let rerun_ratio = quadrants.rerun_ratio();
        Ok(PipelineResult {
            total_images: n,
            accuracy,
            bnn_accuracy,
            host_subset_accuracy,
            quadrants,
            rerun_count: rerun_indices.len(),
            modeled_time_s,
            modeled_images_per_sec: n as f64 / modeled_time_s.max(f64::MIN_POSITIVE),
            analytic_images_per_sec: model::images_per_sec(
                timing.t_fp_img_s,
                timing.t_bnn_img_s,
                rerun_ratio,
            ),
            analytic_accuracy_eq2: model::accuracy_eq2(
                bnn_accuracy,
                host_global_accuracy,
                rerun_ratio,
                quadrants.rerun_err_ratio(),
            ),
            predictions: final_preds,
            wall_seconds,
        })
    }
}

/// Per-image outputs of the BNN + DMU stage.
#[derive(Debug)]
struct StageOutput {
    bnn_preds: Vec<usize>,
    kept: Vec<bool>,
}

impl StageOutput {
    fn with_capacity(n: usize) -> Self {
        Self {
            bnn_preds: Vec::with_capacity(n),
            kept: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, pred: usize, keep: bool) {
        self.bnn_preds.push(pred);
        self.kept.push(keep);
    }

    fn flagged_indices(&self) -> Vec<usize> {
        self.kept
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| (!k).then_some(i))
            .collect()
    }
}

/// Replays the paper's `async(1)`/`wait(1)` loop: iteration `i` runs
/// FPGA batch `i` concurrently with host re-inference of the images
/// flagged in batch `i−1`; a final host pass drains the last batch.
fn modeled_batch_time(kept: &[bool], timing: &PipelineTiming) -> f64 {
    let n = kept.len();
    if n == 0 {
        return 0.0;
    }
    let batch = timing.batch_size;
    let flagged_per_batch: Vec<usize> = kept
        .chunks(batch)
        .map(|c| c.iter().filter(|&&k| !k).count())
        .collect();
    let fpga_time = |count: usize| count as f64 * timing.t_bnn_img_s;
    let host_time = |flagged: usize| flagged as f64 * timing.t_fp_img_s;
    let mut total = 0.0;
    for (i, chunk) in kept.chunks(batch).enumerate() {
        let host_side = if i > 0 {
            host_time(flagged_per_batch[i - 1])
        } else {
            0.0
        };
        total += fpga_time(chunk.len()).max(host_side);
    }
    total += host_time(*flagged_per_batch.last().expect("non-empty"));
    total
}

fn argmax(scores: &[f32]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Re-infers `indices` of `data` on the host network, batched.
fn infer_host_subset(
    host: &mut Network,
    data: &Dataset,
    indices: &[usize],
) -> Result<Vec<usize>, CoreError> {
    let mut preds = Vec::with_capacity(indices.len());
    for chunk in indices.chunks(32) {
        let images: Vec<Tensor> = chunk
            .iter()
            .map(|&i| data.images().batch_item(i))
            .collect::<Result<_, _>>()?;
        let batch = Tensor::stack_batch(&images)?;
        let scores = host.forward(&batch)?;
        preds.extend(Network::argmax_rows(&scores)?);
    }
    Ok(preds)
}

/// Convenience: the per-image shape a dataset's host network expects.
pub fn host_input_shape(data: &Dataset) -> Shape {
    data.image_shape()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_bnn::{BnnClassifier, FinnTopology};
    use mp_nn::train::Model;
    use mp_nn::Mode;
    use mp_tensor::init::TensorRng;

    fn tiny_system() -> (HardwareBnn, Dmu, Dataset, Network) {
        let mut rng = TensorRng::seed_from(100);
        let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
        // Populate batch-norm stats.
        for _ in 0..3 {
            let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let dmu = Dmu::with_weights(vec![0.1; 10], 0.0);
        let spec = mp_dataset::SynthSpec::tiny();
        let data = spec.generate(40).unwrap();
        let host = Network::builder(Shape::nchw(1, 3, 8, 8))
            .conv2d(8, 3, 1, 1, &mut rng)
            .unwrap()
            .relu()
            .global_avg_pool()
            .linear(10, &mut rng)
            .unwrap()
            .build();
        (hw, dmu, data, host)
    }

    fn timing() -> PipelineTiming {
        PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 10)
    }

    #[test]
    fn run_produces_consistent_accounting() {
        let (hw, dmu, data, mut host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        let r = pipeline.run(&mut host, &data, &timing(), 0.5).unwrap();
        assert_eq!(r.total_images, 40);
        assert_eq!(r.predictions.len(), 40);
        // Quadrants sum to 1.
        let q = r.quadrants;
        assert!((q.fs + q.fbar_sbar + q.fbar_s + q.fs_bar - 1.0).abs() < 1e-9);
        // Rerun count matches the quadrants.
        assert_eq!(r.rerun_count, (q.rerun_ratio() * 40.0).round() as usize);
        // Accuracy bounded by the DMU cap.
        assert!(r.accuracy <= q.max_achievable_accuracy() + 1e-9);
        assert!(r.modeled_time_s > 0.0);
        assert!(r.wall_seconds.is_none());
    }

    #[test]
    fn threshold_extremes() {
        let (hw, dmu, data, mut host) = tiny_system();
        // Threshold 0: nothing reruns — accuracy equals the BNN's.
        let none = MultiPrecisionPipeline::new(&hw, &dmu, 0.0)
            .run(&mut host, &data, &timing(), 0.5)
            .unwrap();
        assert_eq!(none.rerun_count, 0);
        assert!((none.accuracy - none.bnn_accuracy).abs() < 1e-9);
        // Threshold 1: everything reruns — accuracy equals the host's.
        let all = MultiPrecisionPipeline::new(&hw, &dmu, 1.0)
            .run(&mut host, &data, &timing(), 0.5)
            .unwrap();
        assert_eq!(all.rerun_count, 40);
        assert!((all.accuracy - all.host_subset_accuracy).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential_functionally() {
        let (hw, dmu, data, mut host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.6);
        let seq = pipeline.run(&mut host, &data, &timing(), 0.5).unwrap();
        let par = pipeline
            .run_parallel(&mut host, &data, &timing(), 0.5)
            .unwrap();
        assert_eq!(seq.predictions, par.predictions);
        assert_eq!(seq.rerun_count, par.rerun_count);
        assert!((seq.accuracy - par.accuracy).abs() < 1e-12);
        assert!(par.wall_seconds.is_some());
    }

    #[test]
    fn modeled_time_overlaps_host_and_fpga() {
        // 20 images, batch 10, flag everything: host work (20·t_fp)
        // dominates; with overlap the first batch's FPGA time is the
        // only non-overlapped FPGA contribution.
        let t = PipelineTiming::new(0.001, 0.01, 10);
        let kept = vec![false; 20];
        let total = modeled_batch_time(&kept, &t);
        // Iter 0: fpga(10) = 0.01. Iter 1: max(fpga 0.01, host 10·0.01) =
        // 0.1. Drain: 0.1. Total 0.21.
        assert!((total - 0.21).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn modeled_time_single_oversized_batch() {
        // Batch larger than the set: one FPGA pass, then the host drain.
        let t = PipelineTiming::new(0.001, 0.01, 100);
        let kept = vec![false, true, false, true];
        let total = modeled_batch_time(&kept, &t);
        assert!((total - (4.0 * 0.001 + 2.0 * 0.01)).abs() < 1e-12);
    }

    #[test]
    fn modeled_time_empty_set_is_zero() {
        let t = PipelineTiming::new(0.001, 0.01, 10);
        assert_eq!(modeled_batch_time(&[], &t), 0.0);
    }

    #[test]
    fn modeled_time_bnn_bound_when_no_reruns() {
        let t = PipelineTiming::new(0.002, 0.01, 10);
        let kept = vec![true; 30];
        let total = modeled_batch_time(&kept, &t);
        assert!((total - 0.06).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let (hw, dmu, _, _) = tiny_system();
        let _ = MultiPrecisionPipeline::new(&hw, &dmu, 1.5);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn bad_timing_rejected() {
        let _ = PipelineTiming::new(1.0, 1.0, 0);
    }
}
