//! The heterogeneous multi-precision executor (paper Figs. 1–2).
//!
//! The FPGA (the [`HardwareBnn`] functional model) classifies every
//! image; the DMU flags low-confidence classifications; the host network
//! re-infers the flagged subset. All execution variants are driven by
//! [`MultiPrecisionPipeline::execute`] with a [`RunOptions`] builder:
//!
//! - [`Concurrency::Modeled`] computes the functional result and a
//!   **modelled** execution time that replays the paper's
//!   `async(1)`/`wait(1)` batch overlap: while the FPGA processes batch
//!   `i`, the host re-infers the images flagged in batch `i−1`;
//! - [`Concurrency::Threaded`] actually executes the two sides on
//!   separate threads connected by a **bounded** channel, demonstrating
//!   the concurrent structure of Fig. 2 (its wall-clock time reflects
//!   this machine, not the ZC702).
//!
//! The threaded executor is built for a *misbehaving* host:
//! [`RunOptions::with_faults`] injects a seeded [`FaultPlan`] under a
//! [`RunOptions::with_degradation`] policy, and the pipeline guarantees
//! that every image still receives a prediction — recoverable host
//! faults (errors, latency spikes, even worker death) degrade the
//! flagged subset to its BNN predictions instead of aborting the run,
//! with the degradation fully accounted in the extended
//! [`PipelineResult`].
//!
//! Every run is observable: [`RunOptions::with_recorder`] attaches an
//! [`mp_obs::Recorder`] that receives spans (whole run, BNN+DMU stage,
//! host rerun batches, per-engine and per-layer timings), counters,
//! latency histograms and typed events — with bit-identical predictions
//! and fault accounting whether recording is on or off.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel::{self, TrySendError};

use mp_bnn::HardwareBnn;
use mp_dataset::Dataset;
use mp_int::{CostLut, QuantBnn};
use mp_nn::Network;
use mp_obs::{now_ns, schema, ObsEvent, Recorder};
use mp_tensor::{nan_aware_argmax, Parallelism, Shape, ShapeError, Tensor};

use crate::cascade::{gate_accepts, CascadePolicy, StageClassifier};
use crate::dmu::{ConfusionQuadrants, Dmu};
use crate::fault::{
    CircuitBreaker, DegradationPolicy, DegradationStats, FaultEvent, FaultInjector, FaultKind,
    FaultPlan, HostFault, INJECTED_DEATH_MSG,
};
use crate::model;
use crate::run::{Concurrency, Precision, RunOptions};
use crate::CoreError;

/// Timing constants of the two heterogeneous processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTiming {
    /// Seconds per image on the FPGA BNN (e.g. `1/430.15`).
    pub t_bnn_img_s: f64,
    /// Seconds per image on the host float network (e.g. `1/29.68`).
    pub t_fp_img_s: f64,
    /// Images per FPGA batch in the `async`/`wait` loop. Also sizes the
    /// bounded FPGA→host channel of the parallel executor, so a stalled
    /// host applies back-pressure instead of growing memory unboundedly.
    pub batch_size: usize,
}

impl PipelineTiming {
    /// Creates a timing record.
    ///
    /// # Panics
    ///
    /// Panics if a time is non-positive or `batch_size` is zero.
    pub fn new(t_bnn_img_s: f64, t_fp_img_s: f64, batch_size: usize) -> Self {
        assert!(
            t_bnn_img_s > 0.0 && t_fp_img_s > 0.0,
            "times must be positive"
        );
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            t_bnn_img_s,
            t_fp_img_s,
            batch_size,
        }
    }
}

/// Per-stage traffic accounting of one run, in cascade order. Counts
/// reflect **gate decisions**: `entered` is how many images reached the
/// stage, `accepted` how many its gate kept (the terminal stage accepts
/// everything it receives). Host-side degradation under faults is *not*
/// folded in here — it stays in
/// [`PipelineResult::degraded_count`] — so the legacy threshold path
/// and [`CascadePolicy::dmu`] report identical traffic under chaos.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct StageTraffic {
    /// Stage label (shared with [`Precision::label`] /
    /// [`CascadePolicy::labels`]).
    pub label: String,
    /// Images that entered this stage.
    pub entered: usize,
    /// Images this stage's gate accepted.
    pub accepted: usize,
    /// `entered / total_images` — the `f_s` of the generalised eq. (1).
    pub entered_frac: f64,
    /// `accepted / total_images`.
    pub accepted_frac: f64,
    /// Modeled seconds per image on this stage (cost-factor scaled).
    pub unit_cost_s: f64,
}

/// Outcome of one multi-precision classification run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Images classified.
    pub total_images: usize,
    /// Final multi-precision accuracy.
    pub accuracy: f64,
    /// Standalone BNN accuracy on the same set.
    pub bnn_accuracy: f64,
    /// Host accuracy on the successfully rerun subset (the paper reports
    /// 65/79/83 % for Models A/B/C — lower than their global accuracies
    /// because the subset is hard). `None` when nothing was rerun.
    pub host_subset_accuracy: Option<f64>,
    /// DMU quadrants at the operating threshold.
    pub quadrants: ConfusionQuadrants,
    /// Images successfully re-inferred on the host.
    pub rerun_count: usize,
    /// Modelled execution time of the batch-overlapped pipeline.
    pub modeled_time_s: f64,
    /// Throughput from the modelled time.
    pub modeled_images_per_sec: f64,
    /// Eq. (1) prediction with the measured rerun ratio.
    pub analytic_images_per_sec: f64,
    /// Eq. (2) prediction with the host's *global* accuracy (the paper's
    /// optimistic form).
    pub analytic_accuracy_eq2: f64,
    /// Final per-image class predictions.
    pub predictions: Vec<usize>,
    /// Per-image DMU decision: `true` where the image was flagged for
    /// host re-inference, `false` where the BNN prediction was kept.
    /// Downstream service-time models (`mp-fleet`) replay batches from
    /// this mask without re-running inference.
    pub flagged: Vec<bool>,
    /// Per-stage traffic and modeled unit cost, in cascade order. The
    /// legacy threshold path reports its implicit 2-stage cascade here
    /// (low-precision stage, then `float32`), so every run is
    /// cascade-shaped to observers.
    pub stage_traffic: Vec<StageTraffic>,
    /// Wall-clock seconds when run with [`Concurrency::Threaded`].
    pub wall_seconds: Option<f64>,
    /// Flagged images that fell back to their BNN prediction because the
    /// host misbehaved (fault-injected or real).
    pub degraded_count: usize,
    /// Host inference retries performed under the degradation policy.
    pub retries: usize,
    /// Times the circuit breaker tripped into BNN-only mode.
    pub breaker_trips: usize,
    /// Host inference attempts (first tries, retries and recovery probes).
    pub host_attempts: usize,
    /// Producer-side sends that found the bounded channel full.
    pub backpressure_events: usize,
    /// Virtual seconds charged to retry backoff.
    pub virtual_backoff_s: f64,
    /// Ordered fault log; empty on a fault-free run. Same seed ⇒
    /// byte-identical log.
    pub fault_log: Vec<FaultEvent>,
}

/// The multi-precision system: BNN + DMU + threshold.
#[derive(Debug)]
pub struct MultiPrecisionPipeline<'a> {
    hw: &'a HardwareBnn,
    dmu: &'a Dmu,
    threshold: f32,
    parallelism: Parallelism,
}

impl<'a> MultiPrecisionPipeline<'a> {
    /// Creates a pipeline at a DMU confidence `threshold`.
    ///
    /// Host re-inference runs sequentially by default; see
    /// [`with_parallelism`](Self::with_parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(hw: &'a HardwareBnn, dmu: &'a Dmu, threshold: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        Self {
            hw,
            dmu,
            threshold,
            parallelism: Parallelism::sequential(),
        }
    }

    /// Shards host re-inference batches across `parallelism` worker
    /// threads. Predictions are bit-identical for every setting, and the
    /// fault log stays seed-deterministic: fault decisions depend only on
    /// arrival order, `(image, attempt)` and breaker state, never on how
    /// the deferred inference batch is sharded.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The DMU confidence threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The host-side data parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Runs the pipeline as configured by `opts` — the single entry
    /// point behind every execution variant.
    ///
    /// With [`Concurrency::Modeled`] (the [`RunOptions::new`] default)
    /// the full set runs BNN → DMU → host single-threaded and the
    /// result carries the paper's modelled `async(1)`/`wait(1)` batch
    /// time. With [`Concurrency::Threaded`] the FPGA simulator and the
    /// host network run on separate threads connected by a channel
    /// **bounded** by [`PipelineTiming::batch_size`], wall-clock time is
    /// reported, and an injected [`FaultPlan`] exercises the degradation
    /// machinery:
    ///
    /// - a stalled host back-pressures the producer (counted in
    ///   [`PipelineResult::backpressure_events`]) instead of queueing
    ///   unboundedly;
    /// - a failed host attempt is retried with exponential (virtual)
    ///   backoff within the policy's budget; exhaustion falls the image
    ///   back to its BNN prediction;
    /// - an injected latency spike beyond
    ///   [`DegradationPolicy::host_deadline_s`] is a timeout fault;
    /// - after [`DegradationPolicy::breaker_threshold`] consecutive
    ///   failures the circuit breaker trips to BNN-only mode, probing
    ///   the host every
    ///   [`DegradationPolicy::breaker_probe_every`] flagged images;
    /// - host-worker death (injected or a real panic) can never take the
    ///   pipeline down: it is recorded as the typed
    ///   [`CoreError::HostWorker`] in the fault log, every undelivered
    ///   flagged image falls back to the BNN, and the run completes.
    ///
    /// Every image therefore always receives a prediction, and with
    /// [`FaultPlan::none`] the two modes are functionally identical.
    ///
    /// The recorder attached via [`RunOptions::with_recorder`] receives
    /// the whole-run span, the BNN+DMU stage span, host-rerun batch
    /// spans, per-image BNN / backoff / queue-depth histograms, the
    /// outcome counters and the typed event log. Recording is strictly
    /// passive: predictions and fault accounting are bit-identical with
    /// any recorder, and the disabled [`mp_obs::NullRecorder`] costs one
    /// branch per site.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the effective threshold
    /// is outside `[0, 1]` or a fault plan is combined with
    /// [`Concurrency::Modeled`]; otherwise [`CoreError`] on shape
    /// inconsistencies, invalid plan/policy, or *real* (non-injected)
    /// host inference errors — never for recoverable injected faults.
    pub fn execute(
        &self,
        host: &Network,
        data: &Dataset,
        opts: &RunOptions<'_>,
    ) -> Result<PipelineResult, CoreError> {
        let mut threshold = opts.threshold().unwrap_or(self.threshold);
        // Cascade resolution: the dmu-shaped policy IS the legacy
        // threshold (bit-identical by construction, both executors,
        // faults included); anything deeper takes the N-stage executor.
        let mut general_cascade: Option<&CascadePolicy> = None;
        if let Some(policy) = opts.cascade() {
            if opts.threshold().is_some() {
                return Err(CoreError::InvalidConfig(
                    "with_threshold and with_cascade are mutually exclusive; \
                     the threshold is CascadePolicy::dmu(t)"
                        .into(),
                ));
            }
            match policy.dmu_threshold() {
                Some(t) => threshold = t,
                None => general_cascade = Some(policy),
            }
        }
        if !(0.0..=1.0).contains(&threshold) {
            return Err(CoreError::InvalidConfig(format!(
                "threshold {threshold} outside [0,1]"
            )));
        }
        let par = opts.parallelism().unwrap_or(self.parallelism);
        let rec = opts.recorder();
        let t_exec = rec.enabled().then(now_ns);
        let result = if let Some(policy) = general_cascade {
            if opts.concurrency() == Concurrency::Threaded {
                return Err(CoreError::InvalidConfig(format!(
                    "a {}-stage cascade requires the modeled executor \
                     (only the 2-stage dmu shape runs threaded)",
                    policy.len()
                )));
            }
            if !opts.fault_plan().is_none() {
                return Err(CoreError::InvalidConfig(
                    "fault injection requires the threaded executor \
                     (RunOptions::threaded or with_faults)"
                        .into(),
                ));
            }
            if matches!(opts.precision(), Precision::Float32) {
                return Err(CoreError::InvalidConfig(
                    "Precision::Float32 cannot anchor a multi-stage cascade: \
                     the DMU has no confidence signal for float logits"
                        .into(),
                ));
            }
            self.execute_cascade(host, data, opts, policy, par)?
        } else {
            match opts.concurrency() {
                Concurrency::Modeled => {
                    if !opts.fault_plan().is_none() {
                        return Err(CoreError::InvalidConfig(
                            "fault injection requires the threaded executor \
                             (RunOptions::threaded or with_faults)"
                                .into(),
                        ));
                    }
                    self.execute_modeled(host, data, opts, threshold, par)?
                }
                Concurrency::Threaded => {
                    if !opts.precision().is_one_bit() {
                        return Err(CoreError::InvalidConfig(format!(
                            "precision {} requires the modeled executor (the quantized \
                             and float corners are priced analytically, not threaded)",
                            opts.precision().label()
                        )));
                    }
                    self.execute_threaded(host, data, opts, threshold, par)?
                }
            }
        };
        if let Some(start) = t_exec {
            rec.record_span(schema::SPAN_PIPELINE_EXECUTE, start, now_ns());
            record_result(rec, &result);
        }
        Ok(result)
    }

    /// Runs the full set through BNN → DMU → host, with modelled timing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies.
    #[deprecated(since = "0.2.0", note = "use `execute` with `RunOptions`")]
    pub fn run(
        &self,
        host: &Network,
        data: &Dataset,
        timing: &PipelineTiming,
        host_global_accuracy: f64,
    ) -> Result<PipelineResult, CoreError> {
        self.execute(
            host,
            data,
            &RunOptions::new(*timing).with_host_accuracy(host_global_accuracy),
        )
    }

    /// Runs with the FPGA simulator and the host network on separate
    /// threads.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies.
    #[deprecated(since = "0.2.0", note = "use `execute` with `RunOptions::threaded`")]
    pub fn run_parallel(
        &self,
        host: &Network,
        data: &Dataset,
        timing: &PipelineTiming,
        host_global_accuracy: f64,
    ) -> Result<PipelineResult, CoreError> {
        self.execute(
            host,
            data,
            &RunOptions::new(*timing)
                .threaded()
                .with_host_accuracy(host_global_accuracy),
        )
    }

    /// The chaos-ready parallel executor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies, invalid
    /// plan/policy, or real (non-injected) host inference errors.
    #[deprecated(since = "0.2.0", note = "use `execute` with `RunOptions::with_faults`")]
    pub fn run_parallel_with(
        &self,
        host: &Network,
        data: &Dataset,
        timing: &PipelineTiming,
        host_global_accuracy: f64,
        plan: &FaultPlan,
        policy: &DegradationPolicy,
    ) -> Result<PipelineResult, CoreError> {
        self.execute(
            host,
            data,
            &RunOptions::new(*timing)
                .with_host_accuracy(host_global_accuracy)
                .with_faults(plan.clone())
                .with_degradation(*policy),
        )
    }

    /// The [`Concurrency::Modeled`] executor body.
    fn execute_modeled(
        &self,
        host: &Network,
        data: &Dataset,
        opts: &RunOptions<'_>,
        threshold: f32,
        par: Parallelism,
    ) -> Result<PipelineResult, CoreError> {
        let rec = opts.recorder();
        let (stage, timing) = match opts.precision() {
            Precision::OneBit => (
                self.classify_and_flag(data, threshold, par, rec)?,
                *opts.timing(),
            ),
            Precision::Quantized(quant) => {
                let stage = self.classify_and_flag_quant(quant, data, threshold, par, rec)?;
                // Quantized MACs take extra cycles; the MAC-weighted MPIC
                // factor scales the BNN side of the batch-overlap model
                // (exactly 1 at the 1-bit corner).
                let factor = quant.network_cost_factor(&CostLut::mpic());
                let t = opts.timing();
                (
                    stage,
                    PipelineTiming::new(t.t_bnn_img_s * factor, t.t_fp_img_s, t.batch_size),
                )
            }
            Precision::Float32 => {
                // The float corner: the 1-bit stage still classifies (so
                // BNN accuracy and DMU quadrants stay reported), but every
                // image is flagged to the host — final predictions and
                // throughput degenerate to the host model's.
                let mut stage = self.classify_and_flag(data, threshold, par, rec)?;
                stage.flag_all();
                (stage, *opts.timing())
            }
        };
        let rerun_indices: Vec<usize> = stage.flagged_indices();
        let host_preds = infer_host_subset(host, data, &rerun_indices, par, rec)?;
        self.finish(
            data,
            &timing,
            opts.host_accuracy(),
            opts.precision().label(),
            stage,
            rerun_indices,
            host_preds,
            None,
            DegradationStats::default(),
        )
    }

    /// The N-stage cascade executor ([`Concurrency::Modeled`] only).
    ///
    /// Each stage scores exactly the images escalated to it, the DMU
    /// estimates a confidence from the stage's normalised scores, and
    /// the stage's gate accepts via [`gate_accepts`] (NaN never
    /// passes — a poisoned confidence escalates). The terminal stage
    /// accepts everything. Stage 0 always sees the full set, so the
    /// BNN-side accounting (`bnn_accuracy`, DMU quadrants, `flagged`)
    /// keeps its legacy meaning: correctness and acceptance of the
    /// first stage.
    fn execute_cascade(
        &self,
        host: &Network,
        data: &Dataset,
        opts: &RunOptions<'_>,
        policy: &CascadePolicy,
        par: Parallelism,
    ) -> Result<PipelineResult, CoreError> {
        let rec = opts.recorder();
        let n = data.len();
        let labels = data.labels();
        let shape = policy.shape(opts.precision(), opts.timing());
        let stages = policy.stages();
        let mut active: Vec<usize> = (0..n).collect();
        let mut entered_masks: Vec<Vec<bool>> = Vec::with_capacity(stages.len());
        let mut traffic: Vec<StageTraffic> = Vec::with_capacity(stages.len());
        let mut final_preds: Vec<usize> = vec![0; n];
        let mut stage0_preds: Vec<usize> = vec![0; n];
        let mut kept0: Vec<bool> = vec![false; n];
        let mut rerun_indices: Vec<usize> = Vec::new();
        let mut host_preds: Vec<usize> = Vec::new();
        let mut upgrades: Vec<(f64, f64, f64)> = Vec::new();
        // Correct-at-previous-stage images that its gate escalated — the
        // `E_s` loss term of the generalised eq. (2).
        let mut escalated_correct_prev = 0usize;
        let denom = n.max(1) as f64;
        for (s, stage) in stages.iter().enumerate() {
            let entered = active.len();
            let mut entered_mask = vec![false; n];
            for &i in &active {
                entered_mask[i] = true;
            }
            let enter_frac = entered as f64 / denom;
            let is_host = matches!(stage.classifier, StageClassifier::HostFloat);
            let (preds_sub, conf_sub): (Vec<usize>, Vec<f32>) = if entered == 0 {
                (Vec::new(), Vec::new())
            } else {
                let t0 = rec.enabled().then(now_ns);
                let scored = match &stage.classifier {
                    StageClassifier::HostFloat => {
                        let preds = infer_host_subset(host, data, &active, par, rec)?;
                        (preds, Vec::new())
                    }
                    classifier => {
                        let subset = data.select(&active)?;
                        let scores = match classifier {
                            StageClassifier::Primary => match opts.precision() {
                                Precision::OneBit => self
                                    .hw
                                    .infer_batch_obs(subset.images(), par, rec)
                                    .map_err(CoreError::fpga)?,
                                Precision::Quantized(q) => q
                                    .infer_batch_obs(subset.images(), par, rec)
                                    .map_err(CoreError::fpga)?,
                                // Rejected by `execute` before dispatch.
                                Precision::Float32 => unreachable!(
                                    "Float32 primary is rejected for multi-stage cascades"
                                ),
                            },
                            StageClassifier::Quantized(q) => q
                                .infer_batch_obs(subset.images(), par, rec)
                                .map_err(CoreError::fpga)?,
                            StageClassifier::HostFloat => unreachable!(),
                        };
                        let preds = Network::argmax_rows(&scores)?;
                        let conf = self.dmu.predict_batch(&scores)?;
                        (preds, conf)
                    }
                };
                if let Some(start) = t0 {
                    rec.record_span(&schema::cascade_stage_span(s), start, now_ns());
                }
                scored
            };
            let mut next_active = Vec::new();
            let mut accepted = 0usize;
            let mut correct_in = 0usize;
            let mut escalated_correct = 0usize;
            for (j, &i) in active.iter().enumerate() {
                let pred = preds_sub[j];
                if s == 0 {
                    stage0_preds[i] = pred;
                }
                let is_correct = pred == labels[i];
                if is_correct {
                    correct_in += 1;
                }
                let accept = match stage.gate {
                    None => true,
                    Some(g) => gate_accepts(conf_sub[j], g),
                };
                if accept {
                    accepted += 1;
                    final_preds[i] = pred;
                    if s == 0 {
                        kept0[i] = true;
                    }
                    if is_host {
                        rerun_indices.push(i);
                        host_preds.push(pred);
                    }
                } else {
                    if is_correct {
                        escalated_correct += 1;
                    }
                    next_active.push(i);
                }
            }
            if s > 0 {
                // Host stages use the caller's global host accuracy (the
                // paper's optimistic eq. (2) form); other stages use
                // their measured entering-subset accuracy.
                let acc_s = if is_host {
                    opts.host_accuracy()
                } else if entered == 0 {
                    0.0
                } else {
                    correct_in as f64 / entered as f64
                };
                upgrades.push((acc_s, enter_frac, escalated_correct_prev as f64 / denom));
            }
            escalated_correct_prev = escalated_correct;
            traffic.push(StageTraffic {
                label: shape.stages[s].label.clone(),
                entered,
                accepted,
                entered_frac: enter_frac,
                accepted_frac: accepted as f64 / denom,
                unit_cost_s: shape.stages[s].unit_cost_s,
            });
            entered_masks.push(entered_mask);
            active = next_active;
        }
        let bnn_correct: Vec<bool> = stage0_preds
            .iter()
            .zip(labels)
            .map(|(p, l)| p == l)
            .collect();
        let quadrants = ConfusionQuadrants::tally(&bnn_correct, &kept0);
        let bnn_accuracy = bnn_correct.iter().filter(|&&c| c).count() as f64 / denom;
        let accuracy = final_preds
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / denom;
        let host_hits = rerun_indices
            .iter()
            .zip(&host_preds)
            .filter(|(&i, &p)| p == labels[i])
            .count();
        let host_subset_accuracy = if rerun_indices.is_empty() {
            None
        } else {
            Some(host_hits as f64 / rerun_indices.len() as f64)
        };
        let unit_costs: Vec<f64> = shape.stages.iter().map(|s| s.unit_cost_s).collect();
        let modeled_time_s =
            modeled_cascade_time(&entered_masks, &unit_costs, opts.timing().batch_size);
        // Eq. (1) generalised: f_0 = 1 by convention (stage 0 always
        // sees the full stream in steady state).
        let mut analytic_fracs: Vec<f64> = traffic.iter().map(|t| t.entered_frac).collect();
        analytic_fracs[0] = 1.0;
        Ok(PipelineResult {
            total_images: n,
            accuracy,
            bnn_accuracy,
            host_subset_accuracy,
            quadrants,
            rerun_count: rerun_indices.len(),
            modeled_time_s,
            modeled_images_per_sec: n as f64 / modeled_time_s.max(f64::MIN_POSITIVE),
            analytic_images_per_sec: 1.0
                / model::interval_per_image_n(&unit_costs, &analytic_fracs),
            analytic_accuracy_eq2: model::accuracy_eq2_n(bnn_accuracy, &upgrades),
            predictions: final_preds,
            flagged: kept0.iter().map(|&k| !k).collect(),
            stage_traffic: traffic,
            wall_seconds: None,
            degraded_count: 0,
            retries: 0,
            breaker_trips: 0,
            host_attempts: 0,
            backpressure_events: 0,
            virtual_backoff_s: 0.0,
            fault_log: Vec::new(),
        })
    }

    /// The [`Concurrency::Threaded`] executor body.
    fn execute_threaded(
        &self,
        host: &Network,
        data: &Dataset,
        opts: &RunOptions<'_>,
        threshold: f32,
        par: Parallelism,
    ) -> Result<PipelineResult, CoreError> {
        let timing = opts.timing();
        let policy = opts.degradation_policy();
        let rec = opts.recorder();
        policy.validate()?;
        let injector = FaultInjector::new(opts.fault_plan().clone())?;
        if injector.host_death_after().is_some() {
            // A planned kill is expected noise, not a crash report.
            crate::fault::silence_injected_panics();
        }
        let start = std::time::Instant::now();
        let n = data.len();
        // Satellite fix: bounded channel sized from the FPGA batch, so a
        // stalled host applies back-pressure instead of growing memory.
        let (tx, rx) = channel::bounded::<(usize, Tensor)>(timing.batch_size);
        let policy = *policy;
        let injector_ref = &injector;
        // The crossbeam stub channel exposes no occupancy, so the queue
        // depth is mirrored in an atomic — maintained only while a
        // recorder is attached (it never influences control flow).
        let queue_depth = AtomicUsize::new(0);
        let depth_obs: Option<(&dyn Recorder, &AtomicUsize)> =
            rec.enabled().then_some((rec, &queue_depth));
        type WorkerJoin = Result<HostWorkerOutput, CoreError>;
        let (stage, backpressure_events, worker_out) = std::thread::scope(
            |scope| -> Result<(StageOutput, usize, WorkerJoin), CoreError> {
                // Host worker: re-infers flagged images as they arrive,
                // applying the degradation policy per image.
                let worker = scope.spawn(move || -> Result<HostWorkerOutput, CoreError> {
                    host_worker_loop(host, rx, injector_ref, &policy, par, depth_obs)
                });
                // "FPGA" side: the block-pipelined stage graph. The BNN
                // runs the batched `IMG_BLOCK` fast path over one block
                // of `timing.batch_size` images, publishes that block's
                // flagged subset to the host worker, then starts on the
                // next block while the worker re-infers — the real-thread
                // mirror of `modeled_batch_time`'s `async(1)`/`wait(1)`
                // overlap. Flagged images are still sent one at a time in
                // index order, so the worker loop, fault arrival order,
                // and channel backpressure semantics are unchanged.
                let mut stage = StageOutput::with_capacity(n);
                let mut backpressure_events = 0usize;
                let mut worker_gone = false;
                let classes = self.hw.topology().classes();
                let block = timing.batch_size;
                // Steady-state scratch, reused across every block and
                // image: block scores, DMU features, BNN plan + planes.
                let mut stream = self.hw.block_stream();
                let mut scores: Vec<f32> = Vec::new();
                let mut feats: Vec<f32> = Vec::new();
                let mut block_start = 0usize;
                while block_start < n {
                    let block_end = (block_start + block).min(n);
                    let b = block_end - block_start;
                    let t_blk = rec.enabled().then(now_ns);
                    stream
                        .infer_block_into(data.images(), block_start, block_end, rec, &mut scores)
                        .map_err(CoreError::fpga)?;
                    if let Some(t0) = t_blk {
                        let t1 = now_ns();
                        // The block span is pure BNN compute: flagged
                        // sends (and any backpressure stall) happen after
                        // it closes, so queue waits never inflate it.
                        rec.record_span(schema::SPAN_PIPELINE_BNN_BLOCK, t0, t1);
                        let per_image_s = t1.saturating_sub(t0) as f64 * 1e-9 / b as f64;
                        for _ in 0..b {
                            rec.observe(schema::HIST_BNN_IMAGE_S, per_image_s);
                        }
                    }
                    for j in 0..b {
                        let i = block_start + j;
                        let row = &scores[j * classes..(j + 1) * classes];
                        // Satellite fix (kept from the per-image path): a
                        // local argmax would silently predict class 0 for
                        // an all-NaN row; the shared NaN-aware helper
                        // surfaces the failure instead.
                        let pred = nan_aware_argmax(row).ok_or_else(|| {
                            CoreError::fpga(ShapeError::new(
                                "pipeline",
                                format!("image {i}: BNN scores have no comparable maximum"),
                            ))
                        })?;
                        let p = self.dmu.predict_with_scratch(row, &mut feats);
                        let keep = gate_accepts(p, threshold);
                        stage.push(pred, keep);
                        if !keep && !worker_gone {
                            let image = data.images().batch_item(i)?;
                            // Count the item before it becomes visible to
                            // the worker; incrementing after delivery races
                            // the worker's decrement and the mirror goes
                            // negative.
                            if let Some((_, depth)) = depth_obs {
                                depth.fetch_add(1, Ordering::Relaxed);
                            }
                            let delivered = match tx.try_send((i, image)) {
                                Ok(()) => true,
                                Err(TrySendError::Full(msg)) => {
                                    backpressure_events += 1;
                                    // Satellite fix: the blocking wait on a
                                    // full host queue is backpressure, not
                                    // BNN time — record it in its own
                                    // histogram (one entry per event, so
                                    // its count matches the counter).
                                    let t_stall = rec.enabled().then(now_ns);
                                    let sent = tx.send(msg).is_ok();
                                    if let Some(t0) = t_stall {
                                        rec.observe(
                                            schema::HIST_BACKPRESSURE_WAIT_S,
                                            now_ns().saturating_sub(t0) as f64 * 1e-9,
                                        );
                                    }
                                    // On a send error the worker died; stop
                                    // feeding it. Its fate is classified at
                                    // join below.
                                    worker_gone = !sent;
                                    sent
                                }
                                Err(TrySendError::Disconnected(_)) => {
                                    worker_gone = true;
                                    false
                                }
                            };
                            if let Some((rec, depth)) = depth_obs {
                                if delivered {
                                    // The worker may already have consumed
                                    // the item, so clamp: depth was ≥ 1 at
                                    // delivery.
                                    let d = depth.load(Ordering::Relaxed).max(1);
                                    rec.observe(schema::HIST_QUEUE_DEPTH, d as f64);
                                } else {
                                    depth.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    block_start = block_end;
                }
                drop(tx);
                // Satellite fix: no `expect` — a worker panic becomes a
                // typed error handled by the degradation path.
                let joined: WorkerJoin = match worker.join() {
                    Ok(result) => result,
                    Err(payload) => {
                        let detail = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "host worker panicked".into());
                        Err(CoreError::HostWorker(detail))
                    }
                };
                Ok((stage, backpressure_events, joined))
            },
        )?;
        let mut stats = DegradationStats {
            backpressure_events,
            ..DegradationStats::default()
        };
        let outcomes = match worker_out {
            Ok(out) => {
                stats.retries = out.retries;
                stats.host_attempts = out.attempts;
                stats.breaker_trips = out.breaker_trips;
                stats.virtual_backoff_s = out.virtual_backoff_s;
                stats.fault_log = out.log;
                out.outcomes
            }
            // Worker death is recoverable: degrade every flagged image.
            Err(CoreError::HostWorker(detail)) => {
                stats.fault_log.push(FaultEvent::WorkerDied { detail });
                Vec::new()
            }
            // Real host inference errors keep their zero-fault contract.
            Err(other) => return Err(other),
        };
        // Reconcile: flagged images with a successful host prediction
        // are reruns; everything else flagged degrades to its BNN
        // prediction.
        let mut delivered: Vec<Option<Result<usize, FaultKind>>> = vec![None; n];
        for (i, outcome) in outcomes {
            delivered[i] = Some(outcome);
        }
        let mut rerun_indices = Vec::new();
        let mut host_preds = Vec::new();
        for i in stage.flagged_indices() {
            match delivered[i] {
                Some(Ok(p)) => {
                    rerun_indices.push(i);
                    host_preds.push(p);
                }
                Some(Err(_)) => stats.degraded_count += 1,
                None => {
                    stats.degraded_count += 1;
                    stats.fault_log.push(FaultEvent::Fallback {
                        image: i,
                        kind: FaultKind::HostWorkerDeath,
                    });
                }
            }
        }
        let wall = start.elapsed().as_secs_f64();
        self.finish(
            data,
            timing,
            opts.host_accuracy(),
            opts.precision().label(),
            stage,
            rerun_indices,
            host_preds,
            Some(wall),
            stats,
        )
    }

    fn classify_and_flag(
        &self,
        data: &Dataset,
        threshold: f32,
        par: Parallelism,
        rec: &dyn Recorder,
    ) -> Result<StageOutput, CoreError> {
        let t0 = rec.enabled().then(now_ns);
        let scores = self
            .hw
            .infer_batch_obs(data.images(), par, rec)
            .map_err(CoreError::fpga)?;
        let preds = Network::argmax_rows(&scores)?;
        let keep_flags = self.dmu.estimate_batch(&scores, threshold)?;
        if let Some(start) = t0 {
            rec.record_span(schema::SPAN_PIPELINE_BNN_STAGE, start, now_ns());
        }
        let mut stage = StageOutput::with_capacity(data.len());
        for (p, k) in preds.into_iter().zip(keep_flags) {
            stage.push(p, k);
        }
        Ok(stage)
    }

    /// [`classify_and_flag`](Self::classify_and_flag) with the
    /// multi-precision integer path in place of the 1-bit engine: the
    /// [`QuantBnn`] scores every image (normalised to the 1-bit scale,
    /// so the DMU's confidence estimate transfers) and the DMU flags on
    /// those scores.
    fn classify_and_flag_quant(
        &self,
        quant: &QuantBnn,
        data: &Dataset,
        threshold: f32,
        par: Parallelism,
        rec: &dyn Recorder,
    ) -> Result<StageOutput, CoreError> {
        let t0 = rec.enabled().then(now_ns);
        let scores = quant
            .infer_batch_obs(data.images(), par, rec)
            .map_err(CoreError::fpga)?;
        let preds = Network::argmax_rows(&scores)?;
        let keep_flags = self.dmu.estimate_batch(&scores, threshold)?;
        if let Some(start) = t0 {
            rec.record_span(schema::SPAN_PIPELINE_BNN_STAGE, start, now_ns());
        }
        let mut stage = StageOutput::with_capacity(data.len());
        for (p, k) in preds.into_iter().zip(keep_flags) {
            stage.push(p, k);
        }
        Ok(stage)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        data: &Dataset,
        timing: &PipelineTiming,
        host_global_accuracy: f64,
        stage0_label: String,
        stage: StageOutput,
        rerun_indices: Vec<usize>,
        host_preds: Vec<usize>,
        wall_seconds: Option<f64>,
        stats: DegradationStats,
    ) -> Result<PipelineResult, CoreError> {
        let n = data.len();
        let labels = data.labels();
        let bnn_correct: Vec<bool> = stage
            .bnn_preds
            .iter()
            .zip(labels)
            .map(|(p, l)| p == l)
            .collect();
        let quadrants = ConfusionQuadrants::tally(&bnn_correct, &stage.kept);
        // Merge host predictions over BNN predictions; degraded images
        // keep their BNN prediction.
        let mut final_preds = stage.bnn_preds.clone();
        let mut host_hits = 0usize;
        for (&idx, &pred) in rerun_indices.iter().zip(&host_preds) {
            final_preds[idx] = pred;
            if pred == labels[idx] {
                host_hits += 1;
            }
        }
        let accuracy = final_preds
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / n.max(1) as f64;
        let bnn_accuracy = bnn_correct.iter().filter(|&&c| c).count() as f64 / n.max(1) as f64;
        // Satellite fix: `None` instead of a misleading `0.0` when
        // nothing reran.
        let host_subset_accuracy = if rerun_indices.is_empty() {
            None
        } else {
            Some(host_hits as f64 / rerun_indices.len() as f64)
        };
        let modeled_time_s = modeled_batch_time(&stage.kept, timing);
        let rerun_ratio = quadrants.rerun_ratio();
        let flagged: Vec<bool> = stage.kept.iter().map(|&k| !k).collect();
        // The legacy path's implicit 2-stage cascade, in the shared
        // naming scheme. `timing` is already cost-factor scaled, so the
        // stage-0 unit cost is simply its BNN time. Traffic counts gate
        // decisions: degraded images still *entered* the host stage.
        let flagged_count = flagged.iter().filter(|&&f| f).count();
        let denom = n.max(1) as f64;
        let stage_traffic = vec![
            StageTraffic {
                label: stage0_label,
                entered: n,
                accepted: n - flagged_count,
                entered_frac: if n == 0 { 0.0 } else { 1.0 },
                accepted_frac: (n - flagged_count) as f64 / denom,
                unit_cost_s: timing.t_bnn_img_s,
            },
            StageTraffic {
                label: Precision::Float32.label(),
                entered: flagged_count,
                accepted: flagged_count,
                entered_frac: flagged_count as f64 / denom,
                accepted_frac: flagged_count as f64 / denom,
                unit_cost_s: timing.t_fp_img_s,
            },
        ];
        Ok(PipelineResult {
            total_images: n,
            accuracy,
            bnn_accuracy,
            host_subset_accuracy,
            quadrants,
            rerun_count: rerun_indices.len(),
            modeled_time_s,
            modeled_images_per_sec: n as f64 / modeled_time_s.max(f64::MIN_POSITIVE),
            analytic_images_per_sec: model::images_per_sec(
                timing.t_fp_img_s,
                timing.t_bnn_img_s,
                rerun_ratio,
            ),
            analytic_accuracy_eq2: model::accuracy_eq2(
                bnn_accuracy,
                host_global_accuracy,
                rerun_ratio,
                quadrants.rerun_err_ratio(),
            ),
            predictions: final_preds,
            flagged,
            stage_traffic,
            wall_seconds,
            degraded_count: stats.degraded_count,
            retries: stats.retries,
            breaker_trips: stats.breaker_trips,
            host_attempts: stats.host_attempts,
            backpressure_events: stats.backpressure_events,
            virtual_backoff_s: stats.virtual_backoff_s,
            fault_log: stats.fault_log,
        })
    }
}

/// What the host worker thread hands back at join time.
#[derive(Debug, Default)]
struct HostWorkerOutput {
    /// Per flagged image (in arrival order): the host prediction, or the
    /// fault that exhausted the degradation policy.
    outcomes: Vec<(usize, Result<usize, FaultKind>)>,
    log: Vec<FaultEvent>,
    retries: usize,
    attempts: usize,
    breaker_trips: usize,
    virtual_backoff_s: f64,
}

/// Images accumulated by the host worker before a batched flush (and the
/// chunk size of [`infer_host_subset`], so both executors build identical
/// batches).
const HOST_BATCH: usize = 32;

/// The host worker: drains the channel, applying fault injection, the
/// retry/backoff budget, the per-image deadline, and the circuit
/// breaker. Injected worker death panics (deliberately — the producer
/// side must survive a genuinely dead thread, not a polite error).
///
/// Fault decisions depend only on arrival order, `(image, attempt)` and
/// breaker state — never on inference results — so images that survive
/// the policy are *deferred* into a pending batch and re-inferred through
/// the data-parallel engine. The fault log stays byte-identical to the
/// per-image path for every `par` setting; each prediction is
/// bit-identical because every layer treats batch rows independently.
fn host_worker_loop(
    host: &Network,
    rx: channel::Receiver<(usize, Tensor)>,
    injector: &FaultInjector,
    policy: &DegradationPolicy,
    par: Parallelism,
    obs: Option<(&dyn Recorder, &AtomicUsize)>,
) -> Result<HostWorkerOutput, CoreError> {
    let rec = obs.map(|(r, _)| r);
    let mut out = HostWorkerOutput::default();
    let mut breaker = CircuitBreaker::new(policy);
    // Outcome slots awaiting a prediction, and their images.
    let mut pending_slots: Vec<usize> = Vec::new();
    let mut pending_images: Vec<Tensor> = Vec::new();
    for (processed, (index, image)) in rx.into_iter().enumerate() {
        if let Some((_, depth)) = obs {
            depth.fetch_sub(1, Ordering::Relaxed);
        }
        if injector.host_death_after() == Some(processed) {
            std::panic::panic_any(INJECTED_DEATH_MSG);
        }
        if !breaker.should_attempt() {
            out.outcomes.push((index, Err(FaultKind::BreakerOpen)));
            out.log.push(FaultEvent::Fallback {
                image: index,
                kind: FaultKind::BreakerOpen,
            });
            continue;
        }
        let mut attempt: u32 = 0;
        let mut backoff_spent = 0.0f64;
        let survived = loop {
            out.attempts += 1;
            let fault = match injector.host_fault(index, attempt) {
                Some(HostFault::Transient) => Some(FaultKind::HostTransient),
                Some(HostFault::Spike { latency_s }) if latency_s > policy.host_deadline_s => {
                    Some(FaultKind::HostTimeout)
                }
                // A spike under the deadline completes normally.
                Some(HostFault::Spike { .. }) | None => None,
            };
            match fault {
                None => {
                    if attempt > 0 {
                        out.log.push(FaultEvent::Recovered {
                            image: index,
                            retries: attempt,
                        });
                    }
                    if breaker.record_success() {
                        out.log.push(FaultEvent::BreakerClosed { image: index });
                    }
                    break None;
                }
                Some(kind) => {
                    out.log.push(FaultEvent::HostFault {
                        image: index,
                        attempt,
                        kind,
                    });
                    let next_backoff = policy.backoff_base_s * f64::from(1u32 << attempt.min(20));
                    if attempt < policy.max_retries
                        && backoff_spent + next_backoff <= policy.backoff_budget_s
                    {
                        backoff_spent += next_backoff;
                        out.retries += 1;
                        attempt += 1;
                        continue;
                    }
                    if breaker.record_failure() {
                        out.log.push(FaultEvent::BreakerOpened {
                            image: index,
                            consecutive_failures: breaker.consecutive_failures(),
                        });
                    }
                    out.log.push(FaultEvent::Fallback { image: index, kind });
                    break Some(kind);
                }
            }
        };
        out.virtual_backoff_s += backoff_spent;
        if backoff_spent > 0.0 {
            if let Some(rec) = rec {
                rec.observe(schema::HIST_BACKOFF_S, backoff_spent);
            }
        }
        match survived {
            None => {
                pending_slots.push(out.outcomes.len());
                // Placeholder prediction, overwritten by the next flush.
                out.outcomes.push((index, Ok(usize::MAX)));
                if pending_images.len() + 1 >= HOST_BATCH {
                    pending_images.push(image);
                    flush_pending(
                        host,
                        &mut pending_slots,
                        &mut pending_images,
                        &mut out.outcomes,
                        par,
                        rec,
                    )?;
                } else {
                    pending_images.push(image);
                }
            }
            Some(kind) => out.outcomes.push((index, Err(kind))),
        }
    }
    flush_pending(
        host,
        &mut pending_slots,
        &mut pending_images,
        &mut out.outcomes,
        par,
        rec,
    )?;
    out.breaker_trips = breaker.trips();
    Ok(out)
}

/// Re-infers the worker's pending images as one sharded batch and writes
/// each prediction into its reserved outcome slot.
fn flush_pending(
    host: &Network,
    slots: &mut Vec<usize>,
    images: &mut Vec<Tensor>,
    outcomes: &mut [(usize, Result<usize, FaultKind>)],
    par: Parallelism,
    rec: Option<&dyn Recorder>,
) -> Result<(), CoreError> {
    if images.is_empty() {
        return Ok(());
    }
    let batch = Tensor::stack_batch(images)?;
    let t0 = rec.map(|_| now_ns());
    let scores = host
        .infer_batch_obs(&batch, par, rec.unwrap_or(&mp_obs::NULL_RECORDER))
        .map_err(CoreError::host)?;
    if let (Some(rec), Some(start)) = (rec, t0) {
        let end = now_ns();
        rec.record_span(schema::SPAN_PIPELINE_HOST_RERUN, start, end);
        rec.observe(
            schema::HIST_HOST_BATCH_S,
            end.saturating_sub(start) as f64 * 1e-9,
        );
    }
    let preds = Network::argmax_rows(&scores)?;
    for (&slot, pred) in slots.iter().zip(preds) {
        outcomes[slot].1 = Ok(pred);
    }
    slots.clear();
    images.clear();
    Ok(())
}

/// Writes a finished run's outcome counters and typed event log into
/// `rec`. Centralising this after the result is assembled keeps the
/// modelled and threaded paths (and every parallelism setting)
/// observationally consistent without touching worker control flow.
fn record_result(rec: &dyn Recorder, r: &PipelineResult) {
    rec.add(schema::CTR_IMAGES, r.total_images as u64);
    rec.add(
        schema::CTR_FLAGGED,
        (r.rerun_count + r.degraded_count) as u64,
    );
    rec.add(schema::CTR_RERUN_OK, r.rerun_count as u64);
    rec.add(schema::CTR_DEGRADED, r.degraded_count as u64);
    rec.add(schema::CTR_RETRIES, r.retries as u64);
    rec.add(schema::CTR_BREAKER_TRIPS, r.breaker_trips as u64);
    rec.add(schema::CTR_BACKPRESSURE, r.backpressure_events as u64);
    rec.add(schema::CTR_HOST_ATTEMPTS, r.host_attempts as u64);
    for (s, t) in r.stage_traffic.iter().enumerate() {
        rec.add(&schema::cascade_entered_counter(s), t.entered as u64);
        rec.add(&schema::cascade_accepted_counter(s), t.accepted as u64);
    }
    for event in &r.fault_log {
        let obs_event = match event {
            FaultEvent::HostFault {
                image,
                attempt,
                kind,
            } => ObsEvent::Fault {
                image: *image,
                attempt: *attempt,
                kind: format!("{kind:?}"),
            },
            FaultEvent::Recovered { image, .. } => ObsEvent::Rerun { image: *image },
            FaultEvent::Fallback { image, kind } => ObsEvent::Degraded {
                image: *image,
                kind: format!("{kind:?}"),
            },
            FaultEvent::BreakerOpened { image, .. } => ObsEvent::BreakerTrip { image: *image },
            FaultEvent::BreakerClosed { image } => ObsEvent::BreakerClose { image: *image },
            FaultEvent::WorkerDied { detail } => ObsEvent::WorkerDeath {
                detail: detail.clone(),
            },
        };
        rec.record_event(obs_event);
    }
}

/// Per-image outputs of the BNN + DMU stage.
#[derive(Debug)]
struct StageOutput {
    bnn_preds: Vec<usize>,
    kept: Vec<bool>,
}

impl StageOutput {
    fn with_capacity(n: usize) -> Self {
        Self {
            bnn_preds: Vec::with_capacity(n),
            kept: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, pred: usize, keep: bool) {
        self.bnn_preds.push(pred);
        self.kept.push(keep);
    }

    /// Flags every image for host re-inference (the float32 corner).
    fn flag_all(&mut self) {
        self.kept.iter_mut().for_each(|k| *k = false);
    }

    fn flagged_indices(&self) -> Vec<usize> {
        self.kept
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| (!k).then_some(i))
            .collect()
    }
}

/// Replays the paper's `async(1)`/`wait(1)` loop: iteration `i` runs
/// FPGA batch `i` concurrently with host re-inference of the images
/// flagged in batch `i−1`; a final host pass drains the last batch.
///
/// `kept[i]` is `true` where image `i` keeps its BNN prediction and
/// `false` where it is flagged for host re-inference (the complement of
/// [`PipelineResult::flagged`]). Public so virtual-time servers
/// (`mp-serve` comparisons, `mp-fleet` replicas) can price a batch with
/// the same model the pipeline reports.
pub fn modeled_batch_time(kept: &[bool], timing: &PipelineTiming) -> f64 {
    let n = kept.len();
    if n == 0 {
        return 0.0;
    }
    let batch = timing.batch_size;
    let flagged_per_batch: Vec<usize> = kept
        .chunks(batch)
        .map(|c| c.iter().filter(|&&k| !k).count())
        .collect();
    let fpga_time = |count: usize| count as f64 * timing.t_bnn_img_s;
    let host_time = |flagged: usize| flagged as f64 * timing.t_fp_img_s;
    let mut total = 0.0;
    for (i, chunk) in kept.chunks(batch).enumerate() {
        let host_side = if i > 0 {
            host_time(flagged_per_batch[i - 1])
        } else {
            0.0
        };
        total += fpga_time(chunk.len()).max(host_side);
    }
    total += host_time(*flagged_per_batch.last().expect("non-empty"));
    total
}

/// [`modeled_batch_time`] generalised to an N-stage cascade: the image
/// stream is cut into windows of `batch_size`, and while stage `s`
/// processes its share of window `w`, stage `s+1` processes its share
/// of window `w−1` — the paper's `async(1)`/`wait(1)` overlap extended
/// down the chain. Virtual tick `v` therefore costs
/// `max_s(count_s[v−s] · unit_costs[s])`, and the total is the sum over
/// the `W + S − 1` ticks of the software pipeline.
///
/// `entered[s][i]` is `true` where image `i` enters stage `s` (stage 0
/// is all-true on a full run). Bit-identical to [`modeled_batch_time`]
/// for the 2-stage `[all, flagged]` instance.
///
/// # Panics
///
/// Panics on mismatched mask/cost arities or a zero `batch_size`.
pub fn modeled_cascade_time(entered: &[Vec<bool>], unit_costs: &[f64], batch_size: usize) -> f64 {
    assert_eq!(
        entered.len(),
        unit_costs.len(),
        "one unit cost per cascade stage"
    );
    assert!(batch_size > 0, "batch size must be positive");
    let s_count = entered.len();
    if s_count == 0 {
        return 0.0;
    }
    let n = entered[0].len();
    if n == 0 {
        return 0.0;
    }
    let windows = n.div_ceil(batch_size);
    let counts: Vec<Vec<usize>> = entered
        .iter()
        .map(|mask| {
            assert_eq!(mask.len(), n, "stage mask length mismatch");
            mask.chunks(batch_size)
                .map(|c| c.iter().filter(|&&e| e).count())
                .collect()
        })
        .collect();
    let mut total = 0.0;
    for v in 0..(windows + s_count - 1) {
        let mut worst = 0.0f64;
        for (s, cost) in unit_costs.iter().enumerate() {
            if v >= s && v - s < windows {
                worst = worst.max(counts[s][v - s] as f64 * cost);
            }
        }
        total += worst;
    }
    total
}

/// Re-infers `indices` of `data` on the host network, batched and
/// sharded across `par` worker threads.
fn infer_host_subset(
    host: &Network,
    data: &Dataset,
    indices: &[usize],
    par: Parallelism,
    rec: &dyn Recorder,
) -> Result<Vec<usize>, CoreError> {
    let mut preds = Vec::with_capacity(indices.len());
    for chunk in indices.chunks(HOST_BATCH) {
        let images: Vec<Tensor> = chunk
            .iter()
            .map(|&i| data.images().batch_item(i))
            .collect::<Result<_, _>>()?;
        let batch = Tensor::stack_batch(&images)?;
        let t0 = rec.enabled().then(now_ns);
        let scores = host
            .infer_batch_obs(&batch, par, rec)
            .map_err(CoreError::host)?;
        if let Some(start) = t0 {
            let end = now_ns();
            rec.record_span(schema::SPAN_PIPELINE_HOST_RERUN, start, end);
            rec.observe(
                schema::HIST_HOST_BATCH_S,
                end.saturating_sub(start) as f64 * 1e-9,
            );
        }
        preds.extend(Network::argmax_rows(&scores)?);
    }
    Ok(preds)
}

/// Convenience: the per-image shape a dataset's host network expects.
pub fn host_input_shape(data: &Dataset) -> Shape {
    data.image_shape()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::silence_injected_panics;
    use mp_bnn::{BnnClassifier, FinnTopology};
    use mp_nn::train::Model;
    use mp_nn::Mode;
    use mp_tensor::init::TensorRng;

    fn tiny_system() -> (HardwareBnn, Dmu, Dataset, Network) {
        let (_, hw, dmu, data, host) = tiny_system_full();
        (hw, dmu, data, host)
    }

    fn tiny_system_full() -> (BnnClassifier, HardwareBnn, Dmu, Dataset, Network) {
        let mut rng = TensorRng::seed_from(100);
        let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
        // Populate batch-norm stats.
        for _ in 0..3 {
            let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let dmu = Dmu::with_weights(vec![0.1; 10], 0.0);
        let spec = mp_dataset::SynthSpec::tiny();
        let data = spec.generate(40).unwrap();
        let host = Network::builder(Shape::nchw(1, 3, 8, 8))
            .conv2d(8, 3, 1, 1, &mut rng)
            .unwrap()
            .relu()
            .global_avg_pool()
            .linear(10, &mut rng)
            .unwrap()
            .build();
        (bnn, hw, dmu, data, host)
    }

    fn timing() -> PipelineTiming {
        PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 10)
    }

    fn modeled_opts() -> RunOptions<'static> {
        RunOptions::new(timing()).with_host_accuracy(0.5)
    }

    fn threaded_opts() -> RunOptions<'static> {
        modeled_opts().threaded()
    }

    fn chaos_opts(plan: &FaultPlan, policy: &DegradationPolicy) -> RunOptions<'static> {
        modeled_opts()
            .with_faults(plan.clone())
            .with_degradation(*policy)
    }

    #[test]
    fn run_produces_consistent_accounting() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        let r = pipeline.execute(&host, &data, &modeled_opts()).unwrap();
        assert_eq!(r.total_images, 40);
        assert_eq!(r.predictions.len(), 40);
        // Quadrants sum to 1.
        let q = r.quadrants;
        assert!((q.fs + q.fbar_sbar + q.fbar_s + q.fs_bar - 1.0).abs() < 1e-9);
        // Rerun count matches the quadrants.
        assert_eq!(r.rerun_count, (q.rerun_ratio() * 40.0).round() as usize);
        // Accuracy bounded by the DMU cap.
        assert!(r.accuracy <= q.max_achievable_accuracy() + 1e-9);
        assert!(r.modeled_time_s > 0.0);
        assert!(r.wall_seconds.is_none());
        // No degradation on the sequential path.
        assert_eq!(r.degraded_count, 0);
        assert!(r.fault_log.is_empty());
    }

    #[test]
    fn threshold_extremes() {
        let (hw, dmu, data, host) = tiny_system();
        // Threshold 0: nothing reruns — accuracy equals the BNN's.
        let none = MultiPrecisionPipeline::new(&hw, &dmu, 0.0)
            .execute(&host, &data, &modeled_opts())
            .unwrap();
        assert_eq!(none.rerun_count, 0);
        assert!(none.host_subset_accuracy.is_none());
        assert!((none.accuracy - none.bnn_accuracy).abs() < 1e-9);
        // Threshold 1: everything reruns — accuracy equals the host's.
        let all = MultiPrecisionPipeline::new(&hw, &dmu, 1.0)
            .execute(&host, &data, &modeled_opts())
            .unwrap();
        assert_eq!(all.rerun_count, 40);
        let subset = all.host_subset_accuracy.expect("everything reran");
        assert!((all.accuracy - subset).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_yields_well_formed_zero_result() {
        let (hw, dmu, data, host) = tiny_system();
        let empty = data.take(0).unwrap();
        assert!(empty.is_empty());
        for opts in [modeled_opts(), threaded_opts()] {
            let r = MultiPrecisionPipeline::new(&hw, &dmu, 0.5)
                .execute(&host, &empty, &opts)
                .unwrap();
            assert_eq!(r.total_images, 0);
            assert!(r.predictions.is_empty());
            assert_eq!(r.rerun_count, 0);
            assert_eq!(r.degraded_count, 0);
            assert_eq!(r.modeled_time_s, 0.0);
            assert_eq!(r.modeled_images_per_sec, 0.0);
            assert!(r.host_subset_accuracy.is_none());
            assert!(r.fault_log.is_empty());
        }
    }

    #[test]
    fn rerun_ratio_boundaries_are_exact() {
        let (hw, dmu, data, host) = tiny_system();
        // Threshold 0 ⇒ R_rerun == 0 exactly; threshold 1 ⇒ 1 exactly.
        let none = MultiPrecisionPipeline::new(&hw, &dmu, 0.0)
            .execute(&host, &data, &modeled_opts())
            .unwrap();
        assert_eq!(none.quadrants.rerun_ratio(), 0.0);
        let all = MultiPrecisionPipeline::new(&hw, &dmu, 1.0)
            .execute(&host, &data, &threaded_opts())
            .unwrap();
        assert!((all.quadrants.rerun_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(all.rerun_count, data.len());
    }

    #[test]
    fn parallel_matches_sequential_functionally() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.6);
        let seq = pipeline.execute(&host, &data, &modeled_opts()).unwrap();
        let par = pipeline.execute(&host, &data, &threaded_opts()).unwrap();
        assert_eq!(seq.predictions, par.predictions);
        assert_eq!(seq.rerun_count, par.rerun_count);
        assert!((seq.accuracy - par.accuracy).abs() < 1e-12);
        assert!(par.wall_seconds.is_some());
        // Zero-fault plan degrades nothing and logs nothing.
        assert_eq!(par.degraded_count, 0);
        assert_eq!(par.breaker_trips, 0);
        assert!(par.fault_log.is_empty());
        assert_eq!(seq.host_subset_accuracy, par.host_subset_accuracy);
    }

    #[test]
    fn quantized_one_bit_corner_matches_default_path() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let layers = bnn.export_latent().len();
        let precision = mp_int::NetworkPrecision::one_bit(layers).unwrap();
        let quant = QuantBnn::from_classifier(&bnn, precision).unwrap();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.6);
        let base = pipeline.execute(&host, &data, &modeled_opts()).unwrap();
        let corner = pipeline
            .execute(
                &host,
                &data,
                &modeled_opts().with_precision(Precision::Quantized(std::sync::Arc::new(quant))),
            )
            .unwrap();
        // The 1-bit quantized corner is bit-identical: same predictions,
        // same flags, same modeled time (network factor is exactly 1).
        assert_eq!(base.predictions, corner.predictions);
        assert_eq!(base.flagged, corner.flagged);
        assert_eq!(base.rerun_count, corner.rerun_count);
        assert_eq!(base.modeled_time_s, corner.modeled_time_s);
    }

    #[test]
    fn quantized_precision_scales_modeled_time_by_cost_factor() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let layers = bnn.export_latent().len();
        let precision = mp_int::NetworkPrecision::uniform(layers, 8, 8).unwrap();
        let quant = QuantBnn::from_classifier(&bnn, precision).unwrap();
        let factor = quant.network_cost_factor(&CostLut::mpic());
        assert!(factor > 1.0);
        // Threshold 0 keeps everything on the low-precision side, so the
        // modeled time is exactly n · t_bnn · factor.
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.0);
        let base = pipeline.execute(&host, &data, &modeled_opts()).unwrap();
        let quantized = pipeline
            .execute(
                &host,
                &data,
                &modeled_opts().with_precision(Precision::Quantized(std::sync::Arc::new(quant))),
            )
            .unwrap();
        assert_eq!(quantized.rerun_count, 0);
        assert!((quantized.modeled_time_s / base.modeled_time_s - factor).abs() < 1e-9);
    }

    #[test]
    fn float32_corner_reruns_everything_on_host() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        let float = pipeline
            .execute(
                &host,
                &data,
                &modeled_opts().with_precision(Precision::Float32),
            )
            .unwrap();
        assert_eq!(float.rerun_count, data.len());
        assert!(float.flagged.iter().all(|&f| f));
        // All predictions come from the host: identical to forcing every
        // image through re-inference with threshold 1.
        let all_host = MultiPrecisionPipeline::new(&hw, &dmu, 1.0)
            .execute(&host, &data, &modeled_opts())
            .unwrap();
        assert_eq!(float.predictions, all_host.predictions);
        assert_eq!(
            float.host_subset_accuracy.unwrap(),
            float.accuracy,
            "float corner accuracy is the host model's"
        );
    }

    #[test]
    fn non_one_bit_precision_requires_modeled_executor() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let layers = bnn.export_latent().len();
        let quant = QuantBnn::from_classifier(
            &bnn,
            mp_int::NetworkPrecision::uniform(layers, 4, 4).unwrap(),
        )
        .unwrap();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        for precision in [
            Precision::Quantized(std::sync::Arc::new(quant)),
            Precision::Float32,
        ] {
            let err = pipeline
                .execute(&host, &data, &threaded_opts().with_precision(precision))
                .unwrap_err();
            assert!(matches!(err, CoreError::InvalidConfig(_)), "{err:?}");
        }
    }

    #[test]
    fn worker_death_degrades_instead_of_aborting() {
        silence_injected_panics();
        let (hw, dmu, data, host) = tiny_system();
        // Threshold 1: every image is flagged for the host.
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 1.0);
        let plan = FaultPlan::seeded(1).with_host_death_after(3);
        let r = pipeline
            .execute(
                &host,
                &data,
                &chaos_opts(&plan, &DegradationPolicy::default()),
            )
            .expect("worker death must be recoverable");
        assert_eq!(r.predictions.len(), 40);
        // The panic loses every host result: all flagged images degrade
        // to their BNN predictions.
        assert_eq!(r.degraded_count, 40);
        assert_eq!(r.rerun_count, 0);
        assert!((r.accuracy - r.bnn_accuracy).abs() < 1e-12);
        assert!(r
            .fault_log
            .iter()
            .any(|e| matches!(e, FaultEvent::WorkerDied { .. })));
    }

    #[test]
    fn total_host_failure_trips_breaker_and_falls_back() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 1.0);
        let plan = FaultPlan::seeded(2).with_host_error_rate(1.0);
        let policy = DegradationPolicy {
            max_retries: 1,
            breaker_threshold: 3,
            ..DegradationPolicy::default()
        };
        let r = pipeline
            .execute(&host, &data, &chaos_opts(&plan, &policy))
            .unwrap();
        assert_eq!(r.degraded_count, 40);
        assert_eq!(r.rerun_count, 0);
        assert!(r.breaker_trips >= 1);
        // BNN-only mode: output equals the standalone BNN.
        assert!((r.accuracy - r.bnn_accuracy).abs() < 1e-12);
        assert!(r
            .fault_log
            .iter()
            .any(|e| matches!(e, FaultEvent::BreakerOpened { .. })));
    }

    #[test]
    fn latency_spikes_beyond_deadline_degrade() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 1.0);
        // Every attempt spikes to 2 s against a 0.25 s deadline.
        let plan = FaultPlan::seeded(3).with_host_spikes(1.0, 2.0);
        let r = pipeline
            .execute(
                &host,
                &data,
                &chaos_opts(&plan, &DegradationPolicy::default()),
            )
            .unwrap();
        assert_eq!(r.degraded_count, 40);
        assert!(r.fault_log.iter().any(|e| matches!(
            e,
            FaultEvent::HostFault {
                kind: FaultKind::HostTimeout,
                ..
            }
        )));
    }

    #[test]
    fn spikes_under_deadline_are_harmless() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.6);
        let plan = FaultPlan::seeded(4).with_host_spikes(1.0, 0.01);
        let faulty = pipeline
            .execute(
                &host,
                &data,
                &chaos_opts(&plan, &DegradationPolicy::default()),
            )
            .unwrap();
        let clean = pipeline.execute(&host, &data, &modeled_opts()).unwrap();
        assert_eq!(faulty.predictions, clean.predictions);
        assert_eq!(faulty.degraded_count, 0);
    }

    #[test]
    fn transient_faults_recover_with_retries() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 1.0);
        let plan = FaultPlan::seeded(5).with_host_error_rate(0.4);
        let policy = DegradationPolicy {
            max_retries: 6,
            backoff_base_s: 1e-4,
            backoff_budget_s: 10.0,
            ..DegradationPolicy::default()
        };
        let r = pipeline
            .execute(&host, &data, &chaos_opts(&plan, &policy))
            .unwrap();
        // With a generous retry budget most images recover.
        assert!(r.retries > 0);
        assert!(r.rerun_count + r.degraded_count == 40);
        assert!(r.rerun_count > 0, "some image should survive retries");
        assert!(r.host_attempts >= 40);
        assert!(r.virtual_backoff_s > 0.0);
    }

    #[test]
    fn parallel_host_inference_is_bit_identical_to_sequential() {
        let (hw, dmu, data, host) = tiny_system();
        let base = MultiPrecisionPipeline::new(&hw, &dmu, 0.6)
            .execute(&host, &data, &modeled_opts())
            .unwrap();
        for threads in [2usize, 3, 5] {
            let par = MultiPrecisionPipeline::new(&hw, &dmu, 0.6)
                .with_parallelism(Parallelism::new(threads))
                .execute(&host, &data, &modeled_opts())
                .unwrap();
            assert_eq!(base.predictions, par.predictions, "threads={threads}");
            assert_eq!(base.rerun_count, par.rerun_count);
            assert_eq!(base.host_subset_accuracy, par.host_subset_accuracy);
        }
    }

    #[test]
    fn fault_accounting_is_invariant_under_parallelism() {
        let (hw, dmu, data, host) = tiny_system();
        let plan = FaultPlan::seeded(7)
            .with_host_error_rate(0.3)
            .with_host_spikes(0.2, 2.0);
        let policy = DegradationPolicy::default();
        let run_at = |threads: usize| {
            MultiPrecisionPipeline::new(&hw, &dmu, 0.9)
                .with_parallelism(Parallelism::new(threads))
                .execute(&host, &data, &chaos_opts(&plan, &policy))
                .unwrap()
        };
        let seq = run_at(1);
        for threads in [2usize, 4] {
            let par = run_at(threads);
            assert_eq!(seq.fault_log, par.fault_log, "threads={threads}");
            assert_eq!(seq.predictions, par.predictions);
            assert_eq!(seq.degraded_count, par.degraded_count);
            assert_eq!(seq.retries, par.retries);
            assert_eq!(seq.breaker_trips, par.breaker_trips);
            assert_eq!(seq.host_attempts, par.host_attempts);
        }
    }

    #[test]
    fn same_plan_is_byte_identical() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.9);
        let plan = FaultPlan::seeded(6)
            .with_host_error_rate(0.3)
            .with_host_spikes(0.2, 2.0);
        let policy = DegradationPolicy::default();
        let a = pipeline
            .execute(&host, &data, &chaos_opts(&plan, &policy))
            .unwrap();
        let b = pipeline
            .execute(&host, &data, &chaos_opts(&plan, &policy))
            .unwrap();
        assert_eq!(a.fault_log, b.fault_log);
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.degraded_count, b.degraded_count);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.breaker_trips, b.breaker_trips);
    }

    #[test]
    fn modeled_time_overlaps_host_and_fpga() {
        // 20 images, batch 10, flag everything: host work (20·t_fp)
        // dominates; with overlap the first batch's FPGA time is the
        // only non-overlapped FPGA contribution.
        let t = PipelineTiming::new(0.001, 0.01, 10);
        let kept = vec![false; 20];
        let total = modeled_batch_time(&kept, &t);
        // Iter 0: fpga(10) = 0.01. Iter 1: max(fpga 0.01, host 10·0.01) =
        // 0.1. Drain: 0.1. Total 0.21.
        assert!((total - 0.21).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn modeled_time_single_oversized_batch() {
        // Batch larger than the set: one FPGA pass, then the host drain.
        let t = PipelineTiming::new(0.001, 0.01, 100);
        let kept = vec![false, true, false, true];
        let total = modeled_batch_time(&kept, &t);
        assert!((total - (4.0 * 0.001 + 2.0 * 0.01)).abs() < 1e-12);
    }

    #[test]
    fn modeled_time_empty_set_is_zero() {
        let t = PipelineTiming::new(0.001, 0.01, 10);
        assert_eq!(modeled_batch_time(&[], &t), 0.0);
    }

    #[test]
    fn modeled_time_bnn_bound_when_no_reruns() {
        let t = PipelineTiming::new(0.002, 0.01, 10);
        let kept = vec![true; 30];
        let total = modeled_batch_time(&kept, &t);
        assert!((total - 0.06).abs() < 1e-12);
    }

    #[test]
    fn modeled_with_faults_is_invalid_config() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        let opts = modeled_opts()
            .with_faults(FaultPlan::seeded(1).with_host_error_rate(0.5))
            .modeled();
        let err = pipeline.execute(&host, &data, &opts).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    #[allow(deprecated)]
    fn execute_threshold_override_beats_constructor() {
        // Pins the deprecated shim's contract: the raw value is stored
        // and validated by `execute`, exactly as before 0.6.0.
        let (hw, dmu, data, host) = tiny_system();
        let at = |t: f32| {
            MultiPrecisionPipeline::new(&hw, &dmu, t)
                .execute(&host, &data, &modeled_opts())
                .unwrap()
        };
        let base = at(1.0);
        let overridden = MultiPrecisionPipeline::new(&hw, &dmu, 0.0)
            .execute(&host, &data, &modeled_opts().with_threshold(1.0))
            .unwrap();
        assert_eq!(base.rerun_count, overridden.rerun_count);
        assert_eq!(base.predictions, overridden.predictions);
        let bad = MultiPrecisionPipeline::new(&hw, &dmu, 0.5)
            .execute(&host, &data, &modeled_opts().with_threshold(3.0))
            .unwrap_err();
        assert!(matches!(bad, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn dmu_cascade_is_bit_identical_to_threshold_path() {
        let (hw, dmu, data, host) = tiny_system();
        for t in [0.0f32, 0.4, 0.6, 1.0] {
            let legacy = MultiPrecisionPipeline::new(&hw, &dmu, t)
                .execute(&host, &data, &modeled_opts())
                .unwrap();
            // A different constructor threshold proves the policy wins.
            let cascade = MultiPrecisionPipeline::new(&hw, &dmu, 0.5)
                .execute(
                    &host,
                    &data,
                    &modeled_opts().with_cascade(CascadePolicy::dmu(t)),
                )
                .unwrap();
            assert_eq!(legacy, cascade, "threshold {t}");
        }
    }

    #[test]
    fn dmu_cascade_runs_threaded_and_matches_legacy() {
        let (hw, dmu, data, host) = tiny_system();
        let legacy = MultiPrecisionPipeline::new(&hw, &dmu, 0.6)
            .execute(&host, &data, &threaded_opts())
            .unwrap();
        let cascade = MultiPrecisionPipeline::new(&hw, &dmu, 0.6)
            .execute(
                &host,
                &data,
                &threaded_opts().with_cascade(CascadePolicy::dmu(0.6)),
            )
            .unwrap();
        assert_eq!(legacy.predictions, cascade.predictions);
        assert_eq!(legacy.flagged, cascade.flagged);
        assert_eq!(legacy.degraded_count, cascade.degraded_count);
        assert_eq!(legacy.fault_log, cascade.fault_log);
    }

    #[test]
    fn cascade_and_threshold_are_mutually_exclusive() {
        #![allow(deprecated)]
        let (hw, dmu, data, host) = tiny_system();
        let opts = modeled_opts()
            .with_threshold(0.5)
            .with_cascade(CascadePolicy::dmu(0.5));
        let err = MultiPrecisionPipeline::new(&hw, &dmu, 0.5)
            .execute(&host, &data, &opts)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    fn three_stage_policy(bnn: &BnnClassifier, g0: f32, g1: f32) -> CascadePolicy {
        let layers = bnn.export_latent().len();
        let quant = QuantBnn::from_classifier(
            bnn,
            mp_int::NetworkPrecision::uniform(layers, 4, 4).unwrap(),
        )
        .unwrap();
        CascadePolicy::try_new(vec![
            crate::cascade::CascadeStage::gated(StageClassifier::Primary, g0),
            crate::cascade::CascadeStage::gated(
                StageClassifier::Quantized(std::sync::Arc::new(quant)),
                g1,
            ),
            crate::cascade::CascadeStage::terminal(StageClassifier::HostFloat),
        ])
        .unwrap()
    }

    #[test]
    fn three_stage_cascade_accounts_traffic_and_cost() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let policy = three_stage_policy(&bnn, 0.6, 0.4);
        let r = MultiPrecisionPipeline::new(&hw, &dmu, 0.5)
            .execute(&host, &data, &modeled_opts().with_cascade(policy.clone()))
            .unwrap();
        assert_eq!(r.stage_traffic.len(), 3);
        let n = data.len();
        // Stage 0 sees everything; traffic is monotone down the chain;
        // accepted counts partition the set.
        assert_eq!(r.stage_traffic[0].entered, n);
        assert!(r.stage_traffic[1].entered <= n);
        assert!(r.stage_traffic[2].entered <= r.stage_traffic[1].entered);
        let accepted: usize = r.stage_traffic.iter().map(|t| t.accepted).sum();
        assert_eq!(accepted, n);
        // Escalation chain: entered[s+1] == entered[s] - accepted[s].
        for w in r.stage_traffic.windows(2) {
            assert_eq!(w[1].entered, w[0].entered - w[0].accepted);
        }
        // Labels share the Precision naming scheme.
        assert_eq!(
            r.stage_traffic
                .iter()
                .map(|t| t.label.clone())
                .collect::<Vec<_>>(),
            policy.labels(&Precision::OneBit)
        );
        // Modeled time matches the exported window model.
        let masks: Vec<Vec<bool>> = {
            let mut masks = vec![vec![true; n], vec![false; n], vec![false; n]];
            // Reconstruct entering sets from flags: stage1 = flagged,
            // stage2 = flagged minus stage1-accepted.
            let mut entered1 = 0;
            for (slot, &flag) in masks[1].iter_mut().zip(&r.flagged) {
                if flag {
                    *slot = true;
                    entered1 += 1;
                }
            }
            assert_eq!(entered1, r.stage_traffic[1].entered);
            masks
        };
        let _ = masks; // stage-2 membership isn't recoverable from flags alone
        assert!(r.modeled_time_s > 0.0);
        assert!(r.wall_seconds.is_none());
        // Host traffic is the rerun count.
        assert_eq!(r.stage_traffic[2].accepted, r.rerun_count);
        // Flags mark exactly the images that escalated past stage 0.
        assert_eq!(
            r.flagged.iter().filter(|&&f| f).count(),
            r.stage_traffic[1].entered
        );
    }

    #[test]
    fn three_stage_gate_extremes_degenerate_sensibly() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        // Gate 0.0 everywhere: stage 0 keeps everything.
        let keep_all = pipeline
            .execute(
                &host,
                &data,
                &modeled_opts().with_cascade(three_stage_policy(&bnn, 0.0, 0.0)),
            )
            .unwrap();
        assert_eq!(keep_all.stage_traffic[0].accepted, data.len());
        assert_eq!(keep_all.rerun_count, 0);
        assert!((keep_all.accuracy - keep_all.bnn_accuracy).abs() < 1e-12);
        // Gate 1.0 everywhere (confidences < 1): everything reaches the
        // host, so predictions equal the legacy threshold-1.0 run.
        let escalate_all = pipeline
            .execute(
                &host,
                &data,
                &modeled_opts().with_cascade(three_stage_policy(&bnn, 1.0, 1.0)),
            )
            .unwrap();
        let legacy_all = MultiPrecisionPipeline::new(&hw, &dmu, 1.0)
            .execute(&host, &data, &modeled_opts())
            .unwrap();
        if escalate_all.rerun_count == data.len() {
            assert_eq!(escalate_all.predictions, legacy_all.predictions);
        }
    }

    #[test]
    fn multi_stage_cascade_rejects_threaded_faults_and_float_primary() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        let policy = three_stage_policy(&bnn, 0.5, 0.5);
        for opts in [
            threaded_opts().with_cascade(policy.clone()),
            chaos_opts(
                &FaultPlan::seeded(1).with_host_error_rate(0.5),
                &DegradationPolicy::default(),
            )
            .with_cascade(policy.clone()),
            modeled_opts()
                .with_cascade(policy.clone())
                .with_precision(Precision::Float32),
        ] {
            let err = pipeline.execute(&host, &data, &opts).unwrap_err();
            assert!(matches!(err, CoreError::InvalidConfig(_)), "{err:?}");
        }
    }

    #[test]
    fn cascade_empty_dataset_is_well_formed() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let empty = data.take(0).unwrap();
        let r = MultiPrecisionPipeline::new(&hw, &dmu, 0.5)
            .execute(
                &host,
                &empty,
                &modeled_opts().with_cascade(three_stage_policy(&bnn, 0.5, 0.5)),
            )
            .unwrap();
        assert_eq!(r.total_images, 0);
        assert_eq!(r.modeled_time_s, 0.0);
        assert_eq!(r.stage_traffic.len(), 3);
        assert!(r.stage_traffic.iter().all(|t| t.entered == 0));
    }

    #[test]
    fn legacy_paths_report_two_stage_traffic() {
        let (hw, dmu, data, host) = tiny_system();
        let r = MultiPrecisionPipeline::new(&hw, &dmu, 0.6)
            .execute(&host, &data, &modeled_opts())
            .unwrap();
        assert_eq!(r.stage_traffic.len(), 2);
        assert_eq!(r.stage_traffic[0].label, "1bit");
        assert_eq!(r.stage_traffic[1].label, "float32");
        assert_eq!(r.stage_traffic[0].entered, 40);
        assert_eq!(r.stage_traffic[1].entered, r.rerun_count);
        assert_eq!(r.stage_traffic[0].accepted + r.stage_traffic[1].entered, 40);
        let t = timing();
        assert_eq!(r.stage_traffic[0].unit_cost_s, t.t_bnn_img_s);
        assert_eq!(r.stage_traffic[1].unit_cost_s, t.t_fp_img_s);
    }

    #[test]
    fn modeled_cascade_time_matches_two_stage_model() {
        let t = PipelineTiming::new(0.001, 0.01, 10);
        // A few representative flag patterns.
        for (n, stride) in [(20usize, 2usize), (35, 3), (7, 1), (40, 5)] {
            let kept: Vec<bool> = (0..n).map(|i| i % stride != 0).collect();
            let entered0 = vec![true; n];
            let entered1: Vec<bool> = kept.iter().map(|&k| !k).collect();
            let two = modeled_batch_time(&kept, &t);
            let cascade = modeled_cascade_time(
                &[entered0, entered1],
                &[t.t_bnn_img_s, t.t_fp_img_s],
                t.batch_size,
            );
            assert!(
                (two - cascade).abs() < 1e-15,
                "n={n} stride={stride}: {two} vs {cascade}"
            );
        }
    }

    #[test]
    fn cascade_recording_emits_stage_spans_and_counters() {
        let (bnn, hw, dmu, data, host) = tiny_system_full();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
        let policy = three_stage_policy(&bnn, 0.6, 0.4);
        let plain = pipeline
            .execute(&host, &data, &modeled_opts().with_cascade(policy.clone()))
            .unwrap();
        let rec = mp_obs::SharedRecorder::new();
        let obs = pipeline
            .execute(
                &host,
                &data,
                &modeled_opts().with_cascade(policy).with_recorder(&rec),
            )
            .unwrap();
        assert_eq!(plain.predictions, obs.predictions, "recording is passive");
        let report = rec.report();
        mp_obs::schema::validate_report(&report).unwrap();
        for (s, t) in obs.stage_traffic.iter().enumerate() {
            assert_eq!(
                report.counter(&schema::cascade_entered_counter(s)),
                t.entered as u64
            );
            assert_eq!(
                report.counter(&schema::cascade_accepted_counter(s)),
                t.accepted as u64
            );
            if t.entered > 0 {
                assert!(
                    report.span(&schema::cascade_stage_span(s)).is_some(),
                    "missing span for stage {s}"
                );
            }
        }
    }

    #[test]
    fn recording_is_passive_and_counts_match_result() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.6);
        let plain = pipeline.execute(&host, &data, &modeled_opts()).unwrap();
        let rec = mp_obs::SharedRecorder::new();
        let obs = pipeline
            .execute(&host, &data, &modeled_opts().with_recorder(&rec))
            .unwrap();
        assert_eq!(plain.predictions, obs.predictions);
        assert_eq!(plain.rerun_count, obs.rerun_count);
        assert_eq!(plain.fault_log, obs.fault_log);
        let report = rec.report();
        mp_obs::schema::validate_report(&report).unwrap();
        assert_eq!(report.counter(schema::CTR_IMAGES), 40);
        assert_eq!(report.counter(schema::CTR_RERUN_OK), obs.rerun_count as u64);
        assert_eq!(report.counter(schema::CTR_DEGRADED), 0);
        assert_eq!(report.span(schema::SPAN_PIPELINE_EXECUTE).unwrap().count, 1);
        assert_eq!(
            report.span(schema::SPAN_PIPELINE_BNN_STAGE).unwrap().count,
            1
        );
        if obs.rerun_count > 0 {
            assert!(report.span(schema::SPAN_PIPELINE_HOST_RERUN).is_some());
            assert!(report
                .spans
                .iter()
                .any(|s| s.name.starts_with(schema::SPAN_HOST_LAYER_PREFIX)));
        }
        assert!(report
            .spans
            .iter()
            .any(|s| s.name.starts_with(schema::SPAN_BNN_STAGE_PREFIX)));
    }

    #[test]
    fn threaded_recording_logs_faults_and_queue_depth() {
        let (hw, dmu, data, host) = tiny_system();
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 1.0);
        let plan = FaultPlan::seeded(5).with_host_error_rate(0.4);
        let policy = DegradationPolicy {
            max_retries: 6,
            backoff_base_s: 1e-4,
            backoff_budget_s: 10.0,
            ..DegradationPolicy::default()
        };
        let plain = pipeline
            .execute(&host, &data, &chaos_opts(&plan, &policy))
            .unwrap();
        let rec = mp_obs::SharedRecorder::new();
        let obs = pipeline
            .execute(
                &host,
                &data,
                &chaos_opts(&plan, &policy).with_recorder(&rec),
            )
            .unwrap();
        assert_eq!(plain.predictions, obs.predictions);
        assert_eq!(plain.fault_log, obs.fault_log);
        let report = rec.report();
        mp_obs::schema::validate_report(&report).unwrap();
        assert_eq!(report.counter(schema::CTR_IMAGES), 40);
        assert_eq!(
            report.counter(schema::CTR_RETRIES),
            obs.retries as u64,
            "retry counter mirrors the result"
        );
        assert_eq!(
            report.counter(schema::CTR_RERUN_OK) + report.counter(schema::CTR_DEGRADED),
            40
        );
        assert_eq!(
            report.histogram(schema::HIST_BNN_IMAGE_S).unwrap().count,
            40
        );
        // Overlapped executor: one pure-compute span per BNN block
        // (40 images / batch_size 10).
        assert_eq!(
            report.span(schema::SPAN_PIPELINE_BNN_BLOCK).unwrap().count,
            4
        );
        // Backpressure stalls are charged to their own histogram, one
        // entry per counted event — never folded into BNN span time.
        assert_eq!(
            report
                .histogram(schema::HIST_BACKPRESSURE_WAIT_S)
                .map_or(0, |h| h.count),
            report.counter(schema::CTR_BACKPRESSURE),
        );
        assert_eq!(
            report.counter(schema::CTR_BACKPRESSURE),
            obs.backpressure_events as u64
        );
        assert!(report.histogram(schema::HIST_QUEUE_DEPTH).is_some());
        assert!(report.histogram(schema::HIST_BACKOFF_S).is_some());
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, ObsEvent::Fault { .. })));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let (hw, dmu, _, _) = tiny_system();
        let _ = MultiPrecisionPipeline::new(&hw, &dmu, 1.5);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn bad_timing_rejected() {
        let _ = PipelineTiming::new(1.0, 1.0, 0);
    }
}
