//! Shared statistics helpers for the serving/fleet report types.
//!
//! The nearest-rank percentile used to live as two separately-maintained
//! copies in `mp-serve` and `mp-fleet`, with drifting edge behavior (one
//! asserted on `p = 0`, the other returned `None`). This is now the
//! single implementation both re-use, with every edge pinned by tests in
//! one place.

/// Nearest-rank percentile of `values` (unsorted; `p` in `(0, 100]`).
///
/// Edge behavior, pinned by the tests below so the serve and fleet
/// reports cannot drift apart again:
///
/// - empty input → `None`
/// - `p ≤ 0`, `p > 100`, or NaN `p` → `None` (no panic)
/// - any NaN value → `None` (NaN admits no rank)
/// - single element → that element for every valid `p`
/// - `p = 100` → the maximum
pub fn nearest_rank_percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(p > 0.0 && p <= 100.0) {
        return None;
    }
    if values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_on_known_data() {
        let v = [0.4, 0.1, 0.3, 0.2];
        assert_eq!(nearest_rank_percentile(&v, 25.0), Some(0.1));
        assert_eq!(nearest_rank_percentile(&v, 50.0), Some(0.2));
        assert_eq!(nearest_rank_percentile(&v, 75.0), Some(0.3));
        assert_eq!(nearest_rank_percentile(&v, 99.0), Some(0.4));
    }

    #[test]
    fn p_zero_and_out_of_range_are_none_not_panic() {
        let v = [1.0, 2.0];
        assert_eq!(nearest_rank_percentile(&v, 0.0), None);
        assert_eq!(nearest_rank_percentile(&v, -5.0), None);
        assert_eq!(nearest_rank_percentile(&v, 100.1), None);
        assert_eq!(nearest_rank_percentile(&v, f64::NAN), None);
    }

    #[test]
    fn p_hundred_is_the_maximum() {
        assert_eq!(nearest_rank_percentile(&[0.3, 0.9, 0.1], 100.0), Some(0.9));
    }

    #[test]
    fn single_element_for_every_valid_p() {
        for p in [0.001, 1.0, 50.0, 99.9, 100.0] {
            assert_eq!(nearest_rank_percentile(&[7.5], p), Some(7.5), "p = {p}");
        }
    }

    #[test]
    fn nan_values_yield_none() {
        assert_eq!(nearest_rank_percentile(&[0.1, f64::NAN], 50.0), None);
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(nearest_rank_percentile(&[], 50.0), None);
    }
}
