use std::error::Error;
use std::fmt;

use mp_dataset::DatasetError;
use mp_tensor::ShapeError;

/// A boxed error source that can cross thread boundaries (the pipeline
/// joins errors produced on the host worker thread).
pub type ErrorSource = Box<dyn Error + Send + Sync + 'static>;

/// Errors raised by the multi-precision experiments.
#[derive(Debug)]
pub enum CoreError {
    /// A tensor shape inconsistency bubbled up from a substrate crate.
    Shape(ShapeError),
    /// The dataset could not be generated or loaded.
    Dataset(DatasetError),
    /// Experiment configuration was invalid.
    InvalidConfig(String),
    /// The host (high-precision) side failed; the source is preserved.
    Host(ErrorSource),
    /// The FPGA (low-precision) side failed; the source is preserved.
    Fpga(ErrorSource),
    /// A per-image host deadline expired.
    Timeout {
        /// Index of the image whose re-inference timed out.
        image: usize,
        /// The deadline that was exceeded, in seconds.
        deadline_s: f64,
    },
    /// The host worker thread died (panicked or was killed). Recoverable
    /// faults never surface this to `execute` callers — the
    /// pipeline degrades to BNN-only mode instead — but it is the typed
    /// form recorded in the fault log and returned by lower-level
    /// helpers.
    HostWorker(String),
}

impl CoreError {
    /// Wraps a host-side failure, preserving the source.
    pub fn host(source: impl Error + Send + Sync + 'static) -> Self {
        CoreError::Host(Box::new(source))
    }

    /// Wraps an FPGA-side failure, preserving the source.
    pub fn fpga(source: impl Error + Send + Sync + 'static) -> Self {
        CoreError::Fpga(Box::new(source))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Shape(e) => write!(f, "{e}"),
            CoreError::Dataset(e) => write!(f, "{e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
            CoreError::Host(e) => write!(f, "host inference failed: {e}"),
            CoreError::Fpga(e) => write!(f, "fpga inference failed: {e}"),
            CoreError::Timeout { image, deadline_s } => {
                write!(
                    f,
                    "host re-inference of image {image} exceeded {deadline_s}s deadline"
                )
            }
            CoreError::HostWorker(detail) => write!(f, "host worker died: {detail}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Shape(e) => Some(e),
            CoreError::Dataset(e) => Some(e),
            CoreError::Host(e) | CoreError::Fpga(e) => Some(e.as_ref()),
            CoreError::InvalidConfig(_) | CoreError::Timeout { .. } | CoreError::HostWorker(_) => {
                None
            }
        }
    }
}

impl From<ShapeError> for CoreError {
    fn from(e: ShapeError) -> Self {
        CoreError::Shape(e)
    }
}

impl From<DatasetError> for CoreError {
    fn from(e: DatasetError) -> Self {
        CoreError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let s: CoreError = ShapeError::new("op", "detail").into();
        assert!(s.to_string().contains("op"));
        assert!(s.source().is_some());
        let c = CoreError::InvalidConfig("bad".into());
        assert!(c.to_string().contains("bad"));
        assert!(c.source().is_none());
    }

    #[test]
    fn fault_variants_display_and_preserve_sources() {
        let h = CoreError::host(ShapeError::new("forward", "bad shape"));
        assert!(h.to_string().contains("host inference failed"));
        assert!(h.source().expect("source").to_string().contains("forward"));
        let g = CoreError::fpga(ShapeError::new("infer_image", "bad shape"));
        assert!(g.to_string().contains("fpga inference failed"));
        assert!(g.source().is_some());
        let t = CoreError::Timeout {
            image: 17,
            deadline_s: 0.25,
        };
        assert!(t.to_string().contains("image 17"));
        assert!(t.source().is_none());
        let w = CoreError::HostWorker("panicked".into());
        assert!(w.to_string().contains("host worker died"));
        assert!(w.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
