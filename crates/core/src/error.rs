use std::error::Error;
use std::fmt;

use mp_dataset::DatasetError;
use mp_tensor::ShapeError;

/// Errors raised by the multi-precision experiments.
#[derive(Debug)]
pub enum CoreError {
    /// A tensor shape inconsistency bubbled up from a substrate crate.
    Shape(ShapeError),
    /// The dataset could not be generated or loaded.
    Dataset(DatasetError),
    /// Experiment configuration was invalid.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Shape(e) => write!(f, "{e}"),
            CoreError::Dataset(e) => write!(f, "{e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Shape(e) => Some(e),
            CoreError::Dataset(e) => Some(e),
            CoreError::InvalidConfig(_) => None,
        }
    }
}

impl From<ShapeError> for CoreError {
    fn from(e: ShapeError) -> Self {
        CoreError::Shape(e)
    }
}

impl From<DatasetError> for CoreError {
    fn from(e: DatasetError) -> Self {
        CoreError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let s: CoreError = ShapeError::new("op", "detail").into();
        assert!(s.to_string().contains("op"));
        assert!(s.source().is_some());
        let c = CoreError::InvalidConfig("bad".into());
        assert!(c.to_string().contains("bad"));
        assert!(c.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
