//! End-to-end experiment orchestration.
//!
//! [`TrainedSystem::prepare`] reproduces the paper's workflow on the
//! synthetic dataset: train the binarised FINN network, fold it into its
//! hardware form, classify the training set to build the DMU's
//! (scores → correct) dataset, train the DMU, train the three host
//! models, and evaluate everything — producing the ingredients of
//! Tables II, IV and V and Fig. 5.

use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use mp_dataset::{Dataset, SynthSpec};
use mp_host::zoo::{self, ModelId};
use mp_host::ArmHost;
use mp_nn::train::{Adam, Optimizer, Trainer};
use mp_nn::Network;
use mp_tensor::init::TensorRng;
use mp_tensor::{Parallelism, Shape, Tensor};

use crate::dmu::Dmu;
use crate::fault::{DegradationPolicy, FaultPlan};
use crate::pipeline::{MultiPrecisionPipeline, PipelineResult, PipelineTiming};
use crate::run::RunOptions;
use crate::CoreError;

/// Configuration of a full multi-precision experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Root seed; every stochastic component derives from it.
    pub seed: u64,
    /// Synthetic dataset specification.
    pub synth: SynthSpec,
    /// Training images.
    pub train_images: usize,
    /// Test images.
    pub test_images: usize,
    /// BNN training epochs.
    pub bnn_epochs: usize,
    /// Host model training epochs.
    pub host_epochs: usize,
    /// DMU training epochs.
    pub dmu_epochs: usize,
    /// DMU operating threshold. The paper selects 0.84 for its score
    /// distribution; profiles pick the balanced point for *their* BNN by
    /// the same eq. (6)/(7) procedure (see `mp_core::dmu::selection`).
    pub threshold: f32,
    /// FPGA batch size in the pipelined loop.
    pub batch_size: usize,
}

impl ExperimentConfig {
    /// The `Fast` profile: 16×16 synthetic images, reduced topologies,
    /// a few thousand images — the whole suite runs in minutes while
    /// exercising exactly the paper's code path.
    pub fn fast_profile(seed: u64) -> Self {
        Self {
            seed,
            synth: SynthSpec::fast(),
            train_images: 2500,
            test_images: 1000,
            bnn_epochs: 20,
            host_epochs: 12,
            dmu_epochs: 30,
            threshold: 0.55,
            batch_size: 100,
        }
    }

    /// A minimal smoke profile for tests: 8×8 images, tiny budgets.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            synth: SynthSpec::tiny(),
            train_images: 120,
            test_images: 60,
            bnn_epochs: 2,
            host_epochs: 2,
            dmu_epochs: 5,
            threshold: 0.55,
            batch_size: 20,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for empty datasets, a bad
    /// threshold, or an image size without a matching topology.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.train_images == 0 || self.test_images == 0 {
            return Err(CoreError::InvalidConfig(
                "datasets must be non-empty".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(CoreError::InvalidConfig(format!(
                "threshold {} outside [0,1]",
                self.threshold
            )));
        }
        if self.synth.height < 8 || self.synth.width < 8 {
            return Err(CoreError::InvalidConfig(
                "images must be at least 8x8 for the scaled FINN topology".into(),
            ));
        }
        Ok(())
    }
}

/// Everything the evaluation section needs, trained and ready.
#[derive(Debug)]
pub struct TrainedSystem {
    /// The configuration used.
    pub config: ExperimentConfig,
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// The trained binarised classifier (float/STE view).
    pub bnn: BnnClassifier,
    /// The folded hardware network.
    pub hw: HardwareBnn,
    /// The trained decision-making unit.
    pub dmu: Dmu,
    /// Host networks with their measured standalone test accuracies.
    pub hosts: Vec<(ModelId, Network, f64)>,
    /// Hardware BNN accuracy on the test set.
    pub bnn_test_accuracy: f64,
    /// Hardware BNN scores on the training set (the DMU's dataset).
    pub bnn_train_scores: Tensor,
    /// Per-training-image correctness of the hardware BNN.
    pub bnn_train_correct: Vec<bool>,
    /// Hardware BNN scores on the test set.
    pub bnn_test_scores: Tensor,
    /// Per-test-image correctness of the hardware BNN.
    pub bnn_test_correct: Vec<bool>,
}

impl TrainedSystem {
    /// Trains the whole system per `config`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on invalid configuration or internal shape
    /// errors.
    pub fn prepare(config: &ExperimentConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let mut rng = TensorRng::seed_from(config.seed);
        // Data.
        let mut spec = config.synth.clone();
        spec.seed = config.seed ^ 0xDA7A;
        let mut gen = spec.build()?;
        let train = gen.generate(config.train_images)?;
        let test = gen.generate(config.test_images)?;
        // Binarised network.
        let topology = FinnTopology::scaled(spec.height, spec.width, scale_divisor(spec.height));
        let mut bnn = BnnClassifier::new(topology, &mut rng.fork())?;
        // BinaryNet trains with Adam: plain SGD's updates are too small
        // to flip latent-weight signs (see mp_nn::train::Adam).
        let mut bnn_trainer = Trainer::new(Adam::new(0.003), 32);
        let mut train_rng = rng.fork();
        for epoch in 0..config.bnn_epochs {
            if epoch == config.bnn_epochs * 3 / 4 {
                bnn_trainer.optimizer_mut().set_learning_rate(0.001);
            }
            bnn_trainer.train_epoch(&mut bnn, train.images(), train.labels(), &mut train_rng)?;
        }
        // Fold to hardware and score both splits.
        let hw = HardwareBnn::from_classifier(&bnn)?;
        let bnn_train_scores = hw.infer_batch(train.images())?;
        let bnn_train_correct = correctness(&bnn_train_scores, train.labels())?;
        let bnn_test_scores = hw.infer_batch(test.images())?;
        let bnn_test_correct = correctness(&bnn_test_scores, test.labels())?;
        let bnn_test_accuracy = fraction(&bnn_test_correct);
        // DMU, trained on the training-set scores (paper §III-B).
        let mut dmu = Dmu::new(test.num_classes());
        dmu.train(
            &bnn_train_scores,
            &bnn_train_correct,
            config.dmu_epochs,
            0.05,
            &mut rng.fork(),
        )?;
        // Host models. Deeper networks get proportionally more epochs,
        // mirroring how the paper's Caffe recipes train B and C far
        // longer than the shallow Model A.
        let mut hosts = Vec::new();
        for id in ModelId::ALL {
            let mut net = build_host(id, &spec, &mut rng.fork())?;
            let mut trainer = Trainer::new(Adam::new(host_lr(id)), 32);
            let mut host_rng = rng.fork();
            let epochs = config.host_epochs * host_epoch_factor(id);
            for epoch in 0..epochs {
                if epoch == epochs * 3 / 4 {
                    trainer.optimizer_mut().set_learning_rate(host_lr(id) * 0.3);
                }
                trainer.train_epoch(&mut net, train.images(), train.labels(), &mut host_rng)?;
            }
            let acc = trainer.evaluate(&mut net, test.images(), test.labels())? as f64;
            hosts.push((id, net, acc));
        }
        Ok(Self {
            config: config.clone(),
            train,
            test,
            bnn,
            hw,
            dmu,
            hosts,
            bnn_test_accuracy,
            bnn_train_scores,
            bnn_train_correct,
            bnn_test_scores,
            bnn_test_correct,
        })
    }

    /// The measured standalone test accuracy of a host model.
    ///
    /// # Panics
    ///
    /// Panics if `id` is missing (cannot happen for systems produced by
    /// [`prepare`](Self::prepare)).
    pub fn host_accuracy(&self, id: ModelId) -> f64 {
        self.hosts
            .iter()
            .find(|(h, _, _)| *h == id)
            .map(|(_, _, acc)| *acc)
            .expect("host model present")
    }

    /// Ready-to-run [`RunOptions`] for host model `id`: the paper-scale
    /// [`paper_timing`](Self::paper_timing) and the model's measured
    /// standalone accuracy prefilled, everything else at its default
    /// (modelled concurrency, no faults, null recorder). Chain builder
    /// calls — `.threaded()`, `.with_faults(..)`, `.with_recorder(..)` —
    /// before passing it to [`execute`](Self::execute).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the full-size host model behind the
    /// timing cannot be built.
    pub fn run_options(&self, id: ModelId) -> Result<RunOptions<'static>, CoreError> {
        Ok(RunOptions::new(self.paper_timing(id)?).with_host_accuracy(self.host_accuracy(id)))
    }

    /// Runs the multi-precision pipeline with host model `id` at the
    /// configured threshold, as configured by `opts`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies, invalid options,
    /// or real (non-injected) host errors.
    pub fn execute(&self, id: ModelId, opts: &RunOptions<'_>) -> Result<PipelineResult, CoreError> {
        MultiPrecisionPipeline::new(&self.hw, &self.dmu, self.config.threshold).execute(
            self.host(id),
            &self.test,
            opts,
        )
    }

    /// Runs the multi-precision pipeline with host model `id` at the
    /// configured threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies.
    #[deprecated(since = "0.2.0", note = "use `execute` with `run_options`")]
    pub fn run_pipeline(
        &self,
        id: ModelId,
        timing: &PipelineTiming,
    ) -> Result<PipelineResult, CoreError> {
        self.execute(
            id,
            &RunOptions::new(*timing).with_host_accuracy(self.host_accuracy(id)),
        )
    }

    /// Like [`run_pipeline`](Self::run_pipeline), sharding host
    /// re-inference across `parallelism` worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies.
    #[deprecated(since = "0.2.0", note = "use `execute` with `run_options`")]
    pub fn run_pipeline_with(
        &self,
        id: ModelId,
        timing: &PipelineTiming,
        parallelism: Parallelism,
    ) -> Result<PipelineResult, CoreError> {
        self.execute(
            id,
            &RunOptions::new(*timing)
                .with_host_accuracy(self.host_accuracy(id))
                .with_parallelism(parallelism),
        )
    }

    /// The trained host network for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is missing (cannot happen for systems produced by
    /// [`prepare`](Self::prepare)).
    pub fn host(&self, id: ModelId) -> &Network {
        self.hosts
            .iter()
            .find(|(h, _, _)| *h == id)
            .map(|(_, net, _)| net)
            .expect("host model present")
    }

    /// Runs the *parallel* multi-precision pipeline with host model `id`
    /// under an injected fault plan and degradation policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape inconsistencies, invalid
    /// plan/policy, or real (non-injected) host errors — never for
    /// recoverable injected faults.
    #[deprecated(
        since = "0.2.0",
        note = "use `execute` with `run_options(..)?.with_faults(..)`"
    )]
    pub fn run_pipeline_chaos(
        &self,
        id: ModelId,
        timing: &PipelineTiming,
        plan: &FaultPlan,
        policy: &DegradationPolicy,
    ) -> Result<PipelineResult, CoreError> {
        self.execute(
            id,
            &RunOptions::new(*timing)
                .with_host_accuracy(self.host_accuracy(id))
                .with_faults(plan.clone())
                .with_degradation(*policy),
        )
    }

    /// Paper-scale timing for host model `id`: the ZC702's measured
    /// Table IV host rate (via the calibrated ARM cost model on the
    /// full-size topology) against the selected 430 img/s FINN design.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the full-size host model cannot be
    /// built.
    pub fn paper_timing(&self, id: ModelId) -> Result<PipelineTiming, CoreError> {
        let host = ArmHost::calibrated_zc702()?;
        let mut rng = TensorRng::seed_from(0);
        let cost = zoo::build_paper(id, &mut rng)?.total_cost()?;
        Ok(PipelineTiming::new(
            1.0 / 430.15,
            host.seconds_per_image(&cost),
            self.config.batch_size,
        ))
    }
}

/// Scaled-topology channel divisor for a given image edge.
fn scale_divisor(edge: usize) -> usize {
    if edge >= 32 {
        1
    } else if edge >= 16 {
        2
    } else {
        4
    }
}

/// Builds the host model appropriate to the image geometry: the paper
/// topologies at 32 px, the `fast` variants at 16 px, and bespoke tiny
/// networks (with the same A < B < C depth ordering) at 8 px.
fn build_host(id: ModelId, spec: &SynthSpec, rng: &mut TensorRng) -> Result<Network, CoreError> {
    let edge = spec.height.min(spec.width);
    if edge >= 32 {
        return Ok(zoo::build_paper(id, rng)?);
    }
    if edge >= 16 {
        return Ok(zoo::build_fast(id, rng)?);
    }
    // 8×8 smoke hosts.
    let input = Shape::nchw(1, spec.channels, spec.height, spec.width);
    let net = match id {
        ModelId::A => Network::builder(input)
            .conv2d(8, 3, 1, 1, rng)?
            .relu()
            .global_avg_pool()
            .linear(10, rng)?
            .build(),
        ModelId::B => Network::builder(input)
            .conv2d(12, 3, 1, 1, rng)?
            .relu()
            .conv2d(12, 1, 1, 0, rng)?
            .relu()
            .global_avg_pool()
            .linear(10, rng)?
            .build(),
        ModelId::C => Network::builder(input)
            .conv2d(12, 3, 1, 1, rng)?
            .relu()
            .conv2d(12, 3, 1, 1, rng)?
            .relu()
            .conv2d(10, 1, 1, 0, rng)?
            .global_avg_pool()
            .build(),
    };
    Ok(net)
}

/// Epoch multiplier per host model (deeper nets train longer).
fn host_epoch_factor(id: ModelId) -> usize {
    match id {
        ModelId::A => 1,
        ModelId::B | ModelId::C => 2,
    }
}

/// Learning rate per host model (deeper nets need gentler steps).
fn host_lr(id: ModelId) -> f32 {
    match id {
        ModelId::A => 0.003,
        ModelId::B => 0.002,
        ModelId::C => 0.002,
    }
}

fn correctness(scores: &Tensor, labels: &[usize]) -> Result<Vec<bool>, CoreError> {
    let preds = Network::argmax_rows(scores)?;
    Ok(preds.iter().zip(labels).map(|(p, l)| p == l).collect())
}

fn fraction(flags: &[bool]) -> f64 {
    flags.iter().filter(|&&f| f).count() as f64 / flags.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_trains_end_to_end() {
        let system = TrainedSystem::prepare(&ExperimentConfig::smoke(7)).unwrap();
        assert_eq!(system.train.len(), 120);
        assert_eq!(system.test.len(), 60);
        assert_eq!(system.hosts.len(), 3);
        assert!(system.bnn_test_accuracy >= 0.0 && system.bnn_test_accuracy <= 1.0);
        // Pipeline runs through the unified options API.
        let opts = system.run_options(ModelId::A).unwrap();
        let r = system.execute(ModelId::A, &opts).unwrap();
        assert_eq!(r.total_images, 60);
        assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0);
    }

    #[test]
    fn paper_timing_uses_table4_rates() {
        let system = TrainedSystem::prepare(&ExperimentConfig::smoke(8)).unwrap();
        let a = system.paper_timing(ModelId::A).unwrap();
        assert!((1.0 / a.t_fp_img_s - 29.68).abs() < 0.1);
        assert!((1.0 / a.t_bnn_img_s - 430.15).abs() < 0.1);
        let b = system.paper_timing(ModelId::B).unwrap();
        assert!(b.t_fp_img_s > a.t_fp_img_s);
    }

    #[test]
    fn config_validation() {
        let mut c = ExperimentConfig::smoke(0);
        c.train_images = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::smoke(0);
        c.threshold = 1.5;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::smoke(0);
        c.synth.height = 4;
        assert!(c.validate().is_err());
        assert!(ExperimentConfig::fast_profile(0).validate().is_ok());
    }

    #[test]
    fn same_seed_reproduces_bnn_accuracy() {
        let a = TrainedSystem::prepare(&ExperimentConfig::smoke(9)).unwrap();
        let b = TrainedSystem::prepare(&ExperimentConfig::smoke(9)).unwrap();
        assert_eq!(a.bnn_test_accuracy, b.bnn_test_accuracy);
        assert_eq!(a.bnn_test_correct, b.bnn_test_correct);
    }

    #[test]
    fn host_accuracy_lookup() {
        let system = TrainedSystem::prepare(&ExperimentConfig::smoke(10)).unwrap();
        for id in ModelId::ALL {
            let acc = system.host_accuracy(id);
            assert!((0.0..=1.0).contains(&acc));
        }
    }
}
