//! Precision profiles: the named per-layer width assignments the
//! autotuner explores.
//!
//! The folding axis is searched exhaustively (per-engine frontiers);
//! the precision axis is explored over a small set of named profiles —
//! the paper's uniform corners plus tapered mixed assignments — because
//! accuracy at a precision can only be *measured* (by quantizing the
//! trained classifier), not derived from the cost model, and each
//! measurement costs a full test-set evaluation.

use mp_int::{NetworkPrecision, PrecisionError, PrecisionSpec, FIRST_LAYER_A_BITS};

/// One named point on the precision axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Stable label (`1bit`, `a4w4`, `taper-842`, …) used in reports.
    pub label: String,
    /// The per-layer widths; `None` is the shipped 1-bit chain.
    pub precision: Option<NetworkPrecision>,
}

impl Profile {
    /// The plain 1-bit chain (no declared precision).
    pub fn one_bit() -> Self {
        Self {
            label: "1bit".to_owned(),
            precision: None,
        }
    }

    /// Uniform `(a, w)` at every layer (first layer pinned to 8-bit
    /// pixel activations, as [`NetworkPrecision::uniform`] enforces).
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError`] for unsupported widths or a zero
    /// layer count.
    pub fn uniform(
        layer_count: usize,
        a_bits: usize,
        w_bits: usize,
    ) -> Result<Self, PrecisionError> {
        Ok(Self {
            label: format!("a{a_bits}w{w_bits}"),
            precision: Some(NetworkPrecision::uniform(layer_count, a_bits, w_bits)?),
        })
    }

    /// Descending taper: the 8-bit pixel first layer runs `(8, 8)`,
    /// the first half of the remaining layers `(4, 4)`, the rest
    /// `(2, 2)` — high precision where features are raw, low precision
    /// where they are abstract.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError`] for a zero layer count.
    pub fn taper_descending(layer_count: usize) -> Result<Self, PrecisionError> {
        let mut layers = Vec::with_capacity(layer_count);
        for i in 0..layer_count {
            let spec = if i == 0 {
                PrecisionSpec::try_new(FIRST_LAYER_A_BITS, 8)?
            } else if i <= layer_count / 2 {
                PrecisionSpec::try_new(4, 4)?
            } else {
                PrecisionSpec::try_new(2, 2)?
            };
            layers.push(spec);
        }
        Ok(Self {
            label: "taper-842".to_owned(),
            precision: Some(NetworkPrecision::try_new(layers)?),
        })
    }

    /// Weight-light mixed profile: binary weights everywhere (1-bit
    /// planes, cheapest storage) but 4-bit activations on the inner
    /// layers — the "multi-precision activations over binary weights"
    /// half of the design space.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError`] for a zero layer count.
    pub fn activations_only(layer_count: usize) -> Result<Self, PrecisionError> {
        let mut layers = Vec::with_capacity(layer_count);
        for i in 0..layer_count {
            let spec = if i == 0 {
                PrecisionSpec::try_new(FIRST_LAYER_A_BITS, 1)?
            } else {
                PrecisionSpec::try_new(4, 1)?
            };
            layers.push(spec);
        }
        Ok(Self {
            label: "a4w1".to_owned(),
            precision: Some(NetworkPrecision::try_new(layers)?),
        })
    }

    /// The standard exploration set: the 1-bit chain, the uniform
    /// {2, 4, 8}² diagonal, and the two mixed tapers.
    ///
    /// # Panics
    ///
    /// Panics if `layer_count` is zero (every constructor rejects it).
    pub fn standard(layer_count: usize) -> Vec<Self> {
        vec![
            Self::one_bit(),
            Self::uniform(layer_count, 2, 2).expect("supported widths"),
            Self::uniform(layer_count, 4, 4).expect("supported widths"),
            Self::uniform(layer_count, 8, 8).expect("supported widths"),
            Self::taper_descending(layer_count).expect("supported widths"),
            Self::activations_only(layer_count).expect("supported widths"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_has_unique_labels_and_valid_precisions() {
        let profiles = Profile::standard(9);
        assert_eq!(profiles.len(), 6);
        let mut labels: Vec<&str> = profiles.iter().map(|p| p.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), profiles.len(), "duplicate profile labels");
        for p in &profiles {
            if let Some(net) = &p.precision {
                assert_eq!(net.len(), 9, "{}", p.label);
                assert_eq!(net.layers()[0].a_bits(), FIRST_LAYER_A_BITS, "{}", p.label);
            }
        }
    }

    #[test]
    fn taper_descends_and_activations_only_keeps_binary_weights() {
        let taper = Profile::taper_descending(9).unwrap();
        let layers = taper.precision.unwrap();
        let widths: Vec<usize> = layers.layers().iter().map(|s| s.a_bits()).collect();
        for pair in widths.windows(2).skip(1) {
            assert!(pair[0] >= pair[1], "taper not monotone: {widths:?}");
        }
        let act = Profile::activations_only(9).unwrap();
        for spec in act.precision.unwrap().layers() {
            assert_eq!(spec.w_bits(), 1);
        }
    }
}
