//! Beam search over per-engine folding frontiers, one precision
//! profile at a time, with the oracle as the single source of truth
//! for legality and cost.

use serde::Serialize;

use mp_bnn::EngineSpec;
use mp_fpga::folding::{EngineFolding, Folding, FoldingSearch};
use mp_int::NetworkPrecision;
use mp_verify::{Candidate, CandidateCost, Feasibility, Oracle, Stage};

use crate::profile::Profile;

/// The shipped Fig. 3/4 sweep's latency-target grid, reused verbatim as
/// search seeds so the tuned front always contains (or dominates) every
/// hand-picked configuration.
const SEED_MIN_CYCLES: u64 = 25_000;
const SEED_MAX_CYCLES: u64 = 1_000_000;
const SEED_STEPS: usize = 16;

/// One feasible point the search found.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedPoint {
    /// The precision profile's label.
    pub profile: String,
    /// The chosen per-engine folding.
    pub folding: Folding,
    /// The declared precision (`None` for the 1-bit chain).
    pub precision: Option<NetworkPrecision>,
    /// The oracle's cost verdict.
    pub cost: CandidateCost,
    /// Measured accuracy of the profile, when the caller evaluated it
    /// (the cost model cannot derive accuracy; `pareto_front` treats
    /// missing accuracy as 0).
    pub accuracy: Option<f64>,
}

/// Outcome counters of one [`Autotuner::search`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct SearchStats {
    /// Complete candidates submitted to the oracle.
    pub candidates_checked: usize,
    /// Candidates the oracle rejected.
    pub infeasible: usize,
    /// Partial states discarded by dominance pruning.
    pub pruned_dominated: usize,
    /// Partial states discarded by the beam cap.
    pub pruned_beam: usize,
    /// Profiles skipped because their width proofs block every folding.
    pub profiles_blocked: usize,
}

/// One pre-priced frontier option of one engine.
#[derive(Debug, Clone, Copy)]
struct EngineOption {
    folding: EngineFolding,
    /// Quantized cycles: eq. (3)/(4) × the layer's MPIC factor.
    qcycles: f64,
    bram: u64,
    luts: u64,
}

/// A partial assignment: engines `0..choices.len()` chosen.
#[derive(Debug, Clone)]
struct State {
    choices: Vec<usize>,
    qmax: f64,
    bram: u64,
    luts: u64,
}

/// Joint folding × precision searcher over a fixed engine chain.
///
/// Construct the [`Oracle`] with an *exploratory* target
/// (`VerifyTarget::exploratory()`) to let the search report
/// over-budget points (`cost.fits == false`) alongside fitting ones —
/// the shipped Fig. 3/4 sweeps contain such points, and the front is
/// only comparable if the search may keep them too. A strict oracle
/// simply rejects them.
#[derive(Debug)]
pub struct Autotuner {
    oracle: Oracle,
    engines: Vec<EngineSpec>,
    beam_width: usize,
    stats: SearchStats,
}

impl Autotuner {
    /// Wraps `oracle` with the default beam width (64).
    pub fn new(oracle: Oracle) -> Self {
        let engines = oracle.engines().to_vec();
        Self {
            oracle,
            engines,
            beam_width: 64,
            stats: SearchStats::default(),
        }
    }

    /// Sets the beam width (minimum 2; wider explores more).
    pub fn with_beam_width(mut self, beam_width: usize) -> Self {
        self.beam_width = beam_width.max(2);
        self
    }

    /// The rate-balanced seed foldings: the exact grid the shipped
    /// Fig. 3/4 sweep evaluates.
    pub fn seeds(&self) -> Vec<Folding> {
        FoldingSearch::new(&self.engines).sweep(SEED_MIN_CYCLES, SEED_MAX_CYCLES, SEED_STEPS)
    }

    /// Counters accumulated across searches.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// The wrapped oracle (e.g. to read its memo statistics).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Searches every profile and returns all feasible points found
    /// (deduplicated per profile). Feed the result to [`pareto_front`].
    pub fn search(&mut self, profiles: &[Profile]) -> Vec<TunedPoint> {
        let mut out = Vec::new();
        for profile in profiles {
            out.extend(self.search_profile(profile));
        }
        out
    }

    /// Searches one profile: beam over the per-engine frontiers plus
    /// the rate-balanced seeds, every complete candidate validated by
    /// the oracle.
    pub fn search_profile(&mut self, profile: &Profile) -> Vec<TunedPoint> {
        if self.engines.is_empty() {
            return Vec::new();
        }
        // Width proofs are folding-independent: if the profile's widths
        // block any engine, every candidate fails, so probe once with
        // the cheapest folding and skip the whole profile on a width
        // (or structure) block.
        let minimal = Folding::new(vec![EngineFolding::new(1, 1); self.engines.len()]);
        let probe = self.oracle.check(&Candidate {
            folding: minimal,
            precision: profile.precision.clone(),
        });
        if let Feasibility::Infeasible(block) = probe {
            if matches!(block.stage, Stage::Width | Stage::Structure) {
                self.stats.profiles_blocked += 1;
                return Vec::new();
            }
        }

        let options = self.price_frontiers(profile);
        let mut states = vec![State {
            choices: Vec::new(),
            qmax: 0.0,
            bram: 0,
            luts: 0,
        }];
        for engine_options in &options {
            let mut next = Vec::with_capacity(states.len() * engine_options.len());
            for state in &states {
                for (j, opt) in engine_options.iter().enumerate() {
                    let mut choices = state.choices.clone();
                    choices.push(j);
                    next.push(State {
                        choices,
                        qmax: state.qmax.max(opt.qcycles),
                        bram: state.bram + opt.bram,
                        luts: state.luts + opt.luts,
                    });
                }
            }
            states = self.prune(next);
        }

        let mut foldings: Vec<Folding> = states
            .into_iter()
            .map(|state| {
                Folding::new(
                    state
                        .choices
                        .iter()
                        .zip(&options)
                        .map(|(&j, opts)| opts[j].folding)
                        .collect(),
                )
            })
            .collect();
        for seed in self.seeds() {
            if !foldings.contains(&seed) {
                foldings.push(seed);
            }
        }

        let mut points = Vec::new();
        for folding in foldings {
            let candidate = Candidate {
                folding,
                precision: profile.precision.clone(),
            };
            self.stats.candidates_checked += 1;
            match self.oracle.check(&candidate) {
                Feasibility::Feasible(cost) => points.push(TunedPoint {
                    profile: profile.label.clone(),
                    folding: candidate.folding,
                    precision: candidate.precision,
                    cost,
                    accuracy: None,
                }),
                Feasibility::Infeasible(_) => self.stats.infeasible += 1,
            }
        }
        points
    }

    /// Prices every engine's folding frontier under the profile with
    /// the oracle's own factors and memoised demand.
    fn price_frontiers(&mut self, profile: &Profile) -> Vec<Vec<EngineOption>> {
        let specs = profile.precision.as_ref().map(|p| p.layers().to_vec());
        (0..self.engines.len())
            .map(|i| {
                let factor = match &specs {
                    Some(layers) => self.oracle.layer_factor(i, layers[i]),
                    None => 1.0,
                };
                FoldingSearch::engine_frontier(&self.engines[i])
                    .into_iter()
                    .map(|(folding, cycles)| {
                        let (bram, luts) =
                            self.oracle
                                .quant_engine_demand(i, folding, profile.precision.as_ref());
                        EngineOption {
                            folding,
                            qcycles: cycles as f64 * factor,
                            bram,
                            luts,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Dominance pruning then a spread-preserving beam cap. All three
    /// accumulators are monotone under extension, so a dominated
    /// partial state cannot finish ahead of its dominator.
    fn prune(&mut self, mut states: Vec<State>) -> Vec<State> {
        // Sort by (qmax, bram, luts); a state can only be dominated by
        // an earlier one, so one backward-looking scan suffices.
        states.sort_by(|a, b| {
            a.qmax
                .total_cmp(&b.qmax)
                .then(a.bram.cmp(&b.bram))
                .then(a.luts.cmp(&b.luts))
        });
        let mut kept: Vec<State> = Vec::with_capacity(states.len());
        for state in states {
            let dominated = kept
                .iter()
                .any(|k| k.qmax <= state.qmax && k.bram <= state.bram && k.luts <= state.luts);
            if dominated {
                self.stats.pruned_dominated += 1;
            } else {
                kept.push(state);
            }
        }
        if kept.len() > self.beam_width {
            // Evenly spaced along the qmax axis, keeping both extremes:
            // the fastest and cheapest corners survive every cap.
            let len = kept.len();
            let picked: Vec<State> = (0..self.beam_width)
                .map(|i| kept[i * (len - 1) / (self.beam_width - 1)].clone())
                .collect();
            self.stats.pruned_beam += len - picked.len();
            kept = picked;
        }
        kept
    }
}

/// The 4-objective non-dominated subset: throughput ↑, accuracy ↑,
/// BRAM ↓, LUTs ↓. Missing accuracy compares as 0. Exact duplicates
/// keep their first occurrence.
pub fn pareto_front(points: &[TunedPoint]) -> Vec<TunedPoint> {
    fn key(p: &TunedPoint) -> (f64, f64, u64, u64) {
        (
            p.cost.modeled_fps,
            p.accuracy.unwrap_or(0.0),
            p.cost.bram_18k,
            p.cost.luts,
        )
    }
    fn dominates(a: (f64, f64, u64, u64), b: (f64, f64, u64, u64)) -> bool {
        a.0 >= b.0 && a.1 >= b.1 && a.2 <= b.2 && a.3 <= b.3 && a != b
    }
    let mut front: Vec<TunedPoint> = Vec::new();
    for p in points {
        let kp = key(p);
        if front.iter().any(|q| dominates(key(q), kp) || key(q) == kp) {
            continue;
        }
        front.retain(|q| !dominates(kp, key(q)));
        front.push(p.clone());
    }
    front.sort_by(|a, b| a.cost.modeled_fps.total_cmp(&b.cost.modeled_fps));
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_bnn::FinnTopology;
    use mp_fpga::device::Device;
    use mp_verify::VerifyTarget;

    fn tuner(beam: usize) -> Autotuner {
        let topo = FinnTopology::paper();
        let target = VerifyTarget::from_topology("autotune", &topo, Device::zc702()).exploratory();
        Autotuner::new(Oracle::new(&target)).with_beam_width(beam)
    }

    #[test]
    fn one_bit_search_covers_every_seed() {
        let mut t = tuner(8);
        let seeds = t.seeds();
        let engines = t.oracle().engines().to_vec();
        let points = t.search_profile(&Profile::one_bit());
        assert!(points.len() >= seeds.len());
        // Every seed folding appears verbatim with its eq. (3)–(5)
        // throughput: the front can't lose to the shipped sweep.
        for seed in &seeds {
            let bottleneck = seed.bottleneck_cycles(&engines);
            let hit = points
                .iter()
                .find(|p| &p.folding == seed)
                .unwrap_or_else(|| panic!("seed missing: {seed:?}"));
            assert_eq!(hit.cost.bottleneck_cycles, bottleneck);
        }
    }

    #[test]
    fn beam_finds_points_beyond_the_seeds() {
        let mut t = tuner(16);
        let seeds = t.seeds();
        let points = t.search_profile(&Profile::one_bit());
        assert!(
            points.iter().any(|p| !seeds.contains(&p.folding)),
            "beam search added nothing beyond the seed grid"
        );
        let stats = t.stats();
        assert!(stats.pruned_dominated > 0);
        assert!(stats.candidates_checked >= points.len());
    }

    #[test]
    fn quantized_profiles_price_higher_cycles() {
        let mut t = tuner(6);
        let n = t.oracle().engines().len();
        let one = t.search_profile(&Profile::one_bit());
        let quant = t.search_profile(&Profile::uniform(n, 4, 4).unwrap());
        assert!(!quant.is_empty());
        // Compare the shared seed folding: same cycles, bigger price.
        let seed = &one[0].folding;
        let base = one.iter().find(|p| &p.folding == seed).unwrap();
        if let Some(q) = quant.iter().find(|p| &p.folding == seed) {
            assert!(q.cost.quant_bottleneck_cycles > base.cost.quant_bottleneck_cycles);
            assert!(q.cost.bram_18k > base.cost.bram_18k);
        }
    }

    #[test]
    fn pareto_front_is_non_dominated_and_sorted() {
        let mut t = tuner(8);
        let n = t.oracle().engines().len();
        let mut points = t.search(&[Profile::one_bit(), Profile::uniform(n, 2, 2).unwrap()]);
        // Give the quantized profile an accuracy edge so both profiles
        // can survive on the front.
        for p in &mut points {
            p.accuracy = Some(if p.profile == "1bit" { 0.80 } else { 0.84 });
        }
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i == j {
                    continue;
                }
                let ka = (
                    a.cost.modeled_fps,
                    a.accuracy.unwrap(),
                    a.cost.bram_18k,
                    a.cost.luts,
                );
                let kb = (
                    b.cost.modeled_fps,
                    b.accuracy.unwrap(),
                    b.cost.bram_18k,
                    b.cost.luts,
                );
                assert!(
                    !(ka.0 >= kb.0 && ka.1 >= kb.1 && ka.2 <= kb.2 && ka.3 <= kb.3 && ka != kb),
                    "front point {j} dominated by {i}"
                );
            }
        }
        for pair in front.windows(2) {
            assert!(pair[0].cost.modeled_fps <= pair[1].cost.modeled_fps);
        }
    }

    #[test]
    fn blocked_profile_is_skipped_not_searched() {
        // A wrong-length precision blocks at the structure stage.
        let mut t = tuner(4);
        let profile = Profile {
            label: "wrong-len".to_owned(),
            precision: Some(NetworkPrecision::uniform(3, 4, 4).unwrap()),
        };
        let points = t.search_profile(&profile);
        assert!(points.is_empty());
        assert_eq!(t.stats().profiles_blocked, 1);
    }
}
