//! # mp-autotune
//!
//! Joint folding × precision design-space autotuner for the FINN-style
//! engine chain, driven by the mp-verify feasibility oracle.
//!
//! The paper hand-picks its operating points (the Fig. 3/4 folding
//! sweep, the fixed precision corners of the MPIC sweep). This crate
//! searches the joint space instead:
//!
//! - **per-engine move set**: [`FoldingSearch::engine_frontier`] — only
//!   the non-dominated `(lanes, cycles)` divisor foldings of each
//!   engine enter the search, since anything off that frontier is
//!   dominated for every monotone objective;
//! - **legality & pricing**: every complete candidate is validated by
//!   [`Oracle::check`], and partial assignments are priced with exactly
//!   the oracle's memoised per-engine demand
//!   ([`Oracle::quant_engine_demand`]) and MPIC cycle factors, so the
//!   search never disagrees with the verifier;
//! - **search**: per precision [`Profile`], a beam search over engines
//!   with dominance pruning on the accumulated
//!   `(max quantized cycles, ΣBRAM, ΣLUT)` triple — all three
//!   accumulate monotonically, so pruning dominated partial states is
//!   sound — and a spread-preserving beam cap;
//! - **seeding**: the exact rate-balanced foldings of the shipped
//!   Fig. 3/4 sweep are always evaluated as complete candidates, so the
//!   searched front can never do worse than the hand-picked
//!   configurations (the CI gate in the `autotune` bench bin);
//! - **output**: the 4-objective Pareto front (throughput ↑, accuracy ↑,
//!   BRAM ↓, LUTs ↓) over every feasible point found
//!   ([`pareto_front`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod profile;
pub mod search;

pub use profile::Profile;
pub use search::{pareto_front, Autotuner, TunedPoint};

// Re-exported so bench bins can name the search inputs/outputs without
// depending on mp-verify directly.
pub use mp_verify::{Candidate, CandidateCost, Feasibility, Oracle};

#[cfg(doc)]
use mp_fpga::folding::FoldingSearch;
