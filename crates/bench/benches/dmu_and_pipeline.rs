//! Micro-benchmark: the DMU's per-image cost — the paper stresses it is
//! "light-weight" (ten multiplications, a sum, a bias, a sigmoid) — and
//! the analytic pipeline models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mp_core::model;
use mp_core::Dmu;
use mp_tensor::Tensor;

fn bench_dmu(c: &mut Criterion) {
    let dmu = Dmu::with_weights(vec![0.3; 10], -0.5);
    let scores = [3.0f32, -1.0, 0.5, 7.0, -2.0, 0.0, 1.5, -4.0, 2.0, -0.5];
    c.bench_function("dmu_predict_single", |b| {
        b.iter(|| dmu.predict(black_box(&scores)))
    });
    let batch = Tensor::from_fn([1000, 10], |i| ((i * 37) % 19) as f32 - 9.0);
    c.bench_function("dmu_predict_1000", |b| {
        b.iter(|| dmu.predict_batch(black_box(&batch)).unwrap())
    });
    c.bench_function("dmu_threshold_1000", |b| {
        b.iter(|| dmu.estimate_batch(black_box(&batch), 0.84).unwrap())
    });
}

fn bench_analytic_models(c: &mut Criterion) {
    c.bench_function("eq1_interval", |b| {
        b.iter(|| {
            model::interval_per_image(
                black_box(1.0 / 29.68),
                black_box(1.0 / 430.15),
                black_box(0.251),
            )
        })
    });
    c.bench_function("eq2_accuracy", |b| {
        b.iter(|| {
            model::accuracy_eq2(
                black_box(0.785),
                black_box(0.814),
                black_box(0.251),
                black_box(0.123),
            )
        })
    });
}

criterion_group!(benches, bench_dmu, bench_analytic_models);
criterion_main!(benches);
