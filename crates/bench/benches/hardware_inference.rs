//! Micro-benchmark: one image through the folded XNOR-popcount hardware
//! model (the functional FPGA path) at the scaled topology the `Fast`
//! experiments use.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use mp_nn::train::Model;
use mp_nn::Mode;
use mp_tensor::init::TensorRng;
use mp_tensor::Shape;

fn bench_hardware(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(3);
    for (edge, div) in [(8usize, 8usize), (16, 2)] {
        let mut bnn = BnnClassifier::new(FinnTopology::scaled(edge, edge, div), &mut rng).unwrap();
        // Populate batch-norm statistics so the thresholds are realistic.
        for _ in 0..2 {
            let x = rng.normal(Shape::nchw(4, 3, edge, edge), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let img = rng.normal(Shape::nchw(1, 3, edge, edge), 0.0, 1.0);
        c.bench_function(format!("hw_infer_{edge}px_div{div}"), |b| {
            b.iter(|| hw.infer_image(black_box(&img)).unwrap())
        });
        let mut float_view = bnn;
        c.bench_function(format!("float_infer_{edge}px_div{div}"), |b| {
            b.iter(|| float_view.infer(black_box(&img)).unwrap())
        });
    }
}

criterion_group!(benches, bench_hardware);
criterion_main!(benches);
