//! Micro-benchmark: the im2col + GEMM convolution forward pass at the
//! host models' layer geometries (Model A's 5×5 stages).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mp_nn::layers::Conv2d;
use mp_nn::{Layer, Mode};
use mp_tensor::init::TensorRng;
use mp_tensor::{Shape, Tensor};

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(0);
    let mut group = c.benchmark_group("conv2d_forward");
    // (in_ch, out_ch, k, size): Model A's three conv stages.
    for (ic, oc, k, size) in [
        (3usize, 32usize, 5usize, 32usize),
        (32, 32, 5, 15),
        (32, 64, 5, 7),
    ] {
        let mut conv = Conv2d::new(ic, oc, k, 1, 2, &mut rng).unwrap();
        let x = rng.normal(Shape::nchw(1, ic, size, size), 0.0, 1.0);
        group.bench_function(format!("{ic}->{oc}@{size}x{size}"), |b| {
            b.iter(|| conv.forward(black_box(&x), Mode::Infer).unwrap())
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    use mp_tensor::conv::{im2col, ConvGeometry};
    let img = Tensor::from_fn(Shape::nchw(1, 64, 30, 30), |i| i as f32 * 1e-3);
    c.bench_function("im2col_64ch_30x30_3x3", |b| {
        b.iter(|| im2col(black_box(&img), ConvGeometry::new(3, 1, 0)).unwrap())
    });
}

criterion_group!(benches, bench_conv_forward, bench_im2col);
criterion_main!(benches);
