//! Micro-benchmark: the discrete-event streaming pipeline simulator at
//! the paper's 9-engine FINN configuration across batch sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mp_bnn::FinnTopology;
use mp_fpga::{device::Device, folding::FoldingSearch, stream_sim::StreamSim};

fn bench_stream_sim(c: &mut Criterion) {
    let engines = FinnTopology::paper().engines();
    let device = Device::zc702();
    let folding = FoldingSearch::new(&engines).balanced(232_558);
    let cycles = folding.cycles(&engines);
    let sim = StreamSim::from_cycles(&cycles, device.clock_hz, 2)
        .with_source_interval(device.io_overhead_s);
    for batch in [16usize, 256, 4096] {
        c.bench_function(format!("stream_sim_batch_{batch}"), |b| {
            b.iter(|| black_box(&sim).run(black_box(batch)))
        });
    }
}

fn bench_folding_search(c: &mut Criterion) {
    let engines = FinnTopology::paper().engines();
    c.bench_function("folding_balanced_430fps", |b| {
        b.iter(|| FoldingSearch::new(black_box(&engines)).balanced(black_box(232_558)))
    });
    c.bench_function("folding_sweep_16pts", |b| {
        b.iter(|| FoldingSearch::new(black_box(&engines)).sweep(25_000, 1_000_000, 16))
    });
}

criterion_group!(benches, bench_stream_sim, bench_folding_search);
criterion_main!(benches);
