//! Micro-benchmark: the XNOR–popcount matrix–vector kernel against the
//! float GEMV it replaces, at the paper's FINN layer sizes. The ~2
//! orders of magnitude between them is the entire premise of putting
//! the binarised network on the throughput side of the system.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mp_bnn::bits::{BitMatrix, BitVec};
use mp_tensor::{linalg, Tensor};

/// FC-64 over 256 inputs (engine 7 of Table I) and one conv tile.
const SIZES: [(usize, usize); 3] = [(64, 256), (64, 576), (128, 1152)];

fn bench_xnor_vs_float(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    for (rows, cols) in SIZES {
        let float_w = Tensor::from_fn([rows, cols], |i| if i % 3 == 0 { 1.0 } else { -1.0 });
        let float_x = Tensor::from_fn([cols], |i| if i % 5 == 0 { 1.0 } else { -1.0 });
        let bit_w = BitMatrix::from_signs(rows, cols, float_w.as_slice());
        let bit_x = BitVec::from_signs(float_x.as_slice());
        group.bench_function(format!("f32_{rows}x{cols}"), |b| {
            b.iter(|| linalg::matvec(black_box(&float_w), black_box(&float_x)).unwrap())
        });
        group.bench_function(format!("xnor_{rows}x{cols}"), |b| {
            b.iter(|| black_box(&bit_w).xnor_matvec(black_box(&bit_x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xnor_vs_float);
criterion_main!(benches);
