//! Regenerates **Fig. 4**: the Fig. 3 sweep with block `array_partition`
//! applied to the parameter memories. BRAM utilisation drops 10–18 %;
//! low-parallelism configurations slow down slightly while
//! high-parallelism ones retain their obtained performance (paper
//! §III-A).

use mp_bench::figures::{print_figure, sweep, FigRecord};
use mp_bench::TextTable;

fn main() {
    let naive = sweep(false);
    let part = sweep(true);
    print_figure(
        "Fig. 4: performance and area vs total PE count (block array partitioning)",
        &part,
    );
    // The headline delta the paper reports.
    let mut delta = TextTable::new(&["total PE", "BRAM % (fig3)", "BRAM % (fig4)", "drop %"]);
    for ((_, n), (_, p)) in naive.iter().zip(&part) {
        let drop = 100.0 * (n.bram_pct - p.bram_pct) / n.bram_pct.max(1e-9);
        delta.row(&[
            p.total_pe.to_string(),
            format!("{:.0}", n.bram_pct),
            format!("{:.0}", p.bram_pct),
            format!("{:.1}", drop),
        ]);
    }
    delta.print("BRAM reduction from block array partitioning");
    let records: Vec<&FigRecord> = part.iter().map(|(_, r)| r).collect();
    mp_bench::write_record("fig4", &records);
}
