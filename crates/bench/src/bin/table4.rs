//! Regenerates **Table IV**: standalone accuracy and images/second of
//! Models A, B, C on the ARM host and FINN on the FPGA.
//!
//! Accuracy comes from networks trained on the synthetic dataset (the
//! `Fast` profile topologies); images/second comes from the calibrated
//! ARM cost model over the *paper-size* topologies and the FPGA cycle
//! model's selected ~430 img/s design — see DESIGN.md §2 for the
//! substitution rationale.

use mp_bench::{CliOptions, TextTable};
use mp_bnn::FinnTopology;
use mp_core::experiment::TrainedSystem;
use mp_fpga::{design::DesignPoint, device::Device, folding::FoldingSearch};
use mp_host::zoo::{self, ModelId};
use mp_host::ArmHost;
use mp_tensor::init::TensorRng;
use serde::Serialize;

#[derive(Serialize)]
struct Table4Row {
    system: String,
    measured_accuracy: f64,
    paper_accuracy: f64,
    images_per_sec: f64,
    paper_images_per_sec: f64,
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let arm = ArmHost::calibrated_zc702().expect("calibration");
    let mut rng = TensorRng::seed_from(0);

    // FINN: the selected 430 img/s partitioned design on the ZC702.
    let engines = FinnTopology::paper().engines();
    let device = Device::zc702();
    let folding = FoldingSearch::new(&engines).balanced((device.clock_hz / 430.0) as u64);
    let finn = DesignPoint::evaluate(&engines, &folding, &device, true);

    let mut table = TextTable::new(&[
        "system",
        "accuracy (measured)",
        "accuracy (paper)",
        "img/s (model)",
        "img/s (paper)",
    ]);
    let mut rows = Vec::new();
    for id in ModelId::ALL {
        let cost = zoo::build_paper(id, &mut rng)
            .expect("zoo model builds")
            .total_cost()
            .expect("costs computable");
        let fps = arm.images_per_sec(&cost);
        let row = Table4Row {
            system: id.name().to_string(),
            measured_accuracy: system.host_accuracy(id),
            paper_accuracy: id.paper_accuracy() as f64,
            images_per_sec: fps,
            paper_images_per_sec: id.paper_images_per_sec(),
        };
        table.row(&[
            row.system.clone(),
            format!("{:.1}%", 100.0 * row.measured_accuracy),
            format!("{:.1}%", 100.0 * row.paper_accuracy),
            format!("{:.2}", row.images_per_sec),
            format!("{:.2}", row.paper_images_per_sec),
        ]);
        rows.push(row);
    }
    let finn_row = Table4Row {
        system: "FINN (FPGA)".into(),
        measured_accuracy: system.bnn_test_accuracy,
        paper_accuracy: 0.785,
        images_per_sec: finn.obtained_fps,
        paper_images_per_sec: 430.15,
    };
    table.row(&[
        finn_row.system.clone(),
        format!("{:.1}%", 100.0 * finn_row.measured_accuracy),
        "78.5%".into(),
        format!("{:.2}", finn_row.images_per_sec),
        "430.15".into(),
    ]);
    rows.push(finn_row);
    table.print("Table IV: non-heterogeneous classification (host models vs FINN)");
    println!("\nshape check: FINN ≫ A ≫ B ≈ C in throughput; BNN < A < B ≤ C in accuracy");
    mp_bench::write_record("table4", &rows);
}
