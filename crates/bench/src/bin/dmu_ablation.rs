//! Ablation: is the paper's *trained* Softmax DMU worth it over
//! training-free confidence rules (max-softmax, margin, entropy)?
//!
//! For each rule we sweep its threshold and report the best operating
//! point under the multi-precision objective: the highest achievable
//! accuracy cap (1 − F̄S) at a rerun budget ≤ 30 % (roughly the paper's
//! 25.1 % operating load), plus the rule's raw estimator accuracy.

use mp_bench::{pct, CliOptions, TextTable};
use mp_core::dmu::{baselines, ConfusionQuadrants};
use mp_core::experiment::TrainedSystem;
use mp_tensor::Tensor;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    rule: String,
    best_threshold: f32,
    estimator_accuracy: f64,
    rerun_ratio: f64,
    accuracy_cap: f64,
}

fn best_point(confidences: &[f32], correct: &[bool], budget: f64) -> (f32, ConfusionQuadrants) {
    let mut best: Option<(f32, ConfusionQuadrants)> = None;
    for i in 0..=100 {
        let t = i as f32 / 100.0;
        let est: Vec<bool> = confidences.iter().map(|&c| c >= t).collect();
        let q = ConfusionQuadrants::tally(correct, &est);
        if q.rerun_ratio() <= budget {
            let better = match &best {
                None => true,
                Some((_, b)) => q.max_achievable_accuracy() > b.max_achievable_accuracy(),
            };
            if better {
                best = Some((t, q));
            }
        }
    }
    best.unwrap_or((
        1.0,
        ConfusionQuadrants::tally(correct, &vec![false; correct.len()]),
    ))
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let scores: &Tensor = &system.bnn_test_scores;
    let correct = &system.bnn_test_correct;
    let budget = 0.30;

    let mut table = TextTable::new(&[
        "confidence rule",
        "best thr",
        "estimator acc",
        "rerun %",
        "accuracy cap (1−F̄S)",
    ]);
    let mut rows = Vec::new();
    let add =
        |name: &str, confidences: Vec<f32>, table: &mut TextTable, rows: &mut Vec<AblationRow>| {
            let (t, q) = best_point(&confidences, correct, budget);
            table.row(&[
                name.into(),
                format!("{t:.2}"),
                pct(q.softmax_accuracy()),
                pct(q.rerun_ratio()),
                pct(q.max_achievable_accuracy()),
            ]);
            rows.push(AblationRow {
                rule: name.into(),
                best_threshold: t,
                estimator_accuracy: q.softmax_accuracy(),
                rerun_ratio: q.rerun_ratio(),
                accuracy_cap: q.max_achievable_accuracy(),
            });
        };

    let trained = system.dmu.predict_batch(scores).expect("dmu predicts");
    add(
        "trained Softmax DMU (paper)",
        trained,
        &mut table,
        &mut rows,
    );
    for (name, rule) in [
        (
            "max-softmax (untrained)",
            baselines::max_softmax as fn(&[f32]) -> f32,
        ),
        ("margin top1−top2", baselines::margin),
        ("1 − entropy", baselines::negative_entropy),
    ] {
        let conf = baselines::confidence_batch(scores, rule).expect("confidence");
        add(name, conf, &mut table, &mut rows);
    }
    table.print(&format!(
        "DMU ablation: best accuracy cap at rerun ≤ {} (test set, BNN acc {})",
        pct(budget),
        pct(system.bnn_test_accuracy),
    ));
    mp_bench::write_record("dmu_ablation", &rows);
}
