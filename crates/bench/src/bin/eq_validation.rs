//! Validates the paper's analytic models: eq. (1) (pipelined interval)
//! against the batch-overlap time model across a grid of rerun ratios,
//! and eq. (2) (accuracy) in both its published (global host accuracy)
//! and exact (subset accuracy) forms against the measured pipeline.

use mp_bench::{CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use mp_core::{model, PipelineTiming};
use mp_host::zoo::ModelId;
use serde::Serialize;

#[derive(Serialize)]
struct Eq1Point {
    rerun_ratio: f64,
    eq1_images_per_sec: f64,
    simulated_images_per_sec: f64,
    relative_error: f64,
}

#[derive(Serialize)]
struct Eq2Point {
    model: String,
    measured_accuracy: f64,
    eq2_global: f64,
    /// `null` when the host was never consulted: with no rerun subset
    /// the exact form has no subset-accuracy term to evaluate.
    eq2_exact: Option<f64>,
}

#[derive(Serialize)]
struct Record {
    eq1: Vec<Eq1Point>,
    eq2: Vec<Eq2Point>,
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();

    // Eq. (1) vs the batch-overlap time model, synthetic rerun grid.
    // Build artificial keep/rerun patterns at exact ratios and compare.
    let timing = PipelineTiming::new(1.0 / 430.15, 1.0 / 29.68, 100);
    let mut eq1_table =
        TextTable::new(&["R_rerun", "eq.(1) img/s", "batch-model img/s", "rel err %"]);
    let mut eq1_points = Vec::new();
    let n = 10_000usize;
    for ratio in [0.0, 0.05, 0.1, 0.2, 0.251, 0.4, 0.6, 0.8, 1.0] {
        let analytic = model::images_per_sec(timing.t_fp_img_s, timing.t_bnn_img_s, ratio);
        // Spread reruns evenly so every batch carries ~ratio flagged.
        let kept: Vec<bool> = (0..n)
            .map(|i| ((i as f64 * ratio) % 1.0) + ratio <= 1.0)
            .collect();
        let simulated = simulate(&kept, &timing);
        let rel = (simulated - analytic).abs() / analytic.max(1e-12);
        eq1_table.row(&[
            format!("{ratio:.3}"),
            format!("{analytic:.2}"),
            format!("{simulated:.2}"),
            format!("{:.1}", 100.0 * rel),
        ]);
        eq1_points.push(Eq1Point {
            rerun_ratio: ratio,
            eq1_images_per_sec: analytic,
            simulated_images_per_sec: simulated,
            relative_error: rel,
        });
    }
    eq1_table.print("Eq. (1) vs batch-overlap execution model (Model A timing)");

    // Eq. (2) vs the measured pipeline.
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let mut eq2_table = TextTable::new(&[
        "system",
        "measured acc",
        "eq.(2) global (optimistic)",
        "eq.(2) exact (subset)",
    ]);
    let mut eq2_points = Vec::new();
    for id in ModelId::ALL {
        let run_opts = system.run_options(id).expect("run options");
        let r = system.execute(id, &run_opts).expect("pipeline runs");
        // With nothing rerun the subset accuracy is undefined
        // (`host_subset_accuracy` is `None`, serialised as `null`) and
        // the exact form has nothing to evaluate — don't fake it with 0.
        let exact = r.host_subset_accuracy.map(|subset| {
            model::accuracy_exact(
                r.bnn_accuracy,
                subset,
                r.quadrants.rerun_ratio(),
                r.quadrants.rerun_err_ratio(),
            )
        });
        eq2_table.row(&[
            format!("{:?}+FINN", id),
            format!("{:.3}", r.accuracy),
            format!("{:.3}", r.analytic_accuracy_eq2),
            exact.map_or_else(|| "n/a".to_string(), |e| format!("{e:.3}")),
        ]);
        eq2_points.push(Eq2Point {
            model: format!("{id:?}"),
            measured_accuracy: r.accuracy,
            eq2_global: r.analytic_accuracy_eq2,
            eq2_exact: exact,
        });
    }
    eq2_table.print("Eq. (2) vs measured multi-precision accuracy");
    println!(
        "\nexpected: the exact (subset) form matches the measurement to float \
         precision; the global form overestimates, as the paper notes"
    );
    mp_bench::write_record(
        "eq_validation",
        &Record {
            eq1: eq1_points,
            eq2: eq2_points,
        },
    );
}

/// The same batch-overlap recurrence the pipeline uses (re-derived here
/// so the validation is independent of `mp-core`'s internal helper).
fn simulate(kept: &[bool], timing: &PipelineTiming) -> f64 {
    let batch = timing.batch_size;
    let flagged: Vec<usize> = kept
        .chunks(batch)
        .map(|c| c.iter().filter(|&&k| !k).count())
        .collect();
    let mut total = 0.0;
    for (i, chunk) in kept.chunks(batch).enumerate() {
        let host = if i > 0 {
            flagged[i - 1] as f64 * timing.t_fp_img_s
        } else {
            0.0
        };
        total += (chunk.len() as f64 * timing.t_bnn_img_s).max(host);
    }
    total += *flagged.last().expect("non-empty") as f64 * timing.t_fp_img_s;
    kept.len() as f64 / total
}
