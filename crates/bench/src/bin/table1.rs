//! Regenerates **Table I**: the FINN engines of the CIFAR-10 network,
//! extended with the §III-A feature sizes (total weight size, threshold
//! memory width, per-image binary MACs).

use mp_bench::TextTable;
use mp_bnn::FinnTopology;
use serde::Serialize;

#[derive(Serialize)]
struct EngineRecord {
    name: String,
    input: String,
    output: String,
    weight_rows: usize,
    weight_cols: usize,
    total_weight_bits: u64,
    threshold_bits: usize,
    macs_per_image: u64,
    pool_after: bool,
}

fn main() {
    let topology = FinnTopology::paper();
    let engines = topology.engines();
    let mut table = TextTable::new(&[
        "engine",
        "input (ID×IH×IW)",
        "output (OD×OH×OW)",
        "weight size (OD×K·K·ID)",
        "thr bits",
        "MACs/image",
        "pool",
    ]);
    let mut records = Vec::new();
    for e in &engines {
        let input = format!("{}×{}×{}", e.in_channels, e.in_height, e.in_width);
        let output = format!("{}×{}×{}", e.out_channels, e.out_height, e.out_width);
        table.row(&[
            e.name.clone(),
            input.clone(),
            output.clone(),
            format!(
                "{}×{} = {}",
                e.weight_rows(),
                e.weight_cols(),
                e.total_weight_bits()
            ),
            e.threshold_bits.to_string(),
            e.macs_per_image().to_string(),
            if e.pool_after {
                "2×2".into()
            } else {
                "-".into()
            },
        ]);
        records.push(EngineRecord {
            name: e.name.clone(),
            input,
            output,
            weight_rows: e.weight_rows(),
            weight_cols: e.weight_cols(),
            total_weight_bits: e.total_weight_bits(),
            threshold_bits: e.threshold_bits,
            macs_per_image: e.macs_per_image(),
            pool_after: e.pool_after,
        });
    }
    table.print("Table I: FINN engines for CIFAR-10 (32×32 RGB input, no zero padding)");
    println!(
        "\ntotal single-bit weights: {} bits ({:.2} Mbit)",
        topology.total_weight_bits(),
        topology.total_weight_bits() as f64 / 1e6
    );
    println!(
        "total binary MACs per image: {}",
        engines.iter().map(|e| e.macs_per_image()).sum::<u64>()
    );
    mp_bench::write_record("table1", &records);
}
