//! The paper's future-work projection, quantified with the same models:
//! "higher-end heterogeneous devices that incorporate ARMv8 processors
//! with active NEON engines". Re-evaluates Table V's throughput with an
//! ARMv8+NEON host model and a larger, faster FPGA (XCZU3EG at 300 MHz),
//! at the paper's Table II rerun ratio.

use mp_bench::TextTable;
use mp_bnn::FinnTopology;
use mp_core::model;
use mp_fpga::{design::DesignPoint, device::Device, folding::FoldingSearch};
use mp_host::zoo::{self, ModelId};
use mp_host::ArmHost;
use mp_tensor::init::TensorRng;
use serde::Serialize;

#[derive(Serialize)]
struct FutureRow {
    system: String,
    host_images_per_sec: f64,
    finn_images_per_sec: f64,
    multi_precision_images_per_sec: f64,
    paper_generation_images_per_sec: f64,
    speedup: f64,
}

fn main() {
    let rerun = 0.251; // the paper's Table II operating load
    let engines = FinnTopology::paper().engines();
    let mut rng = TensorRng::seed_from(0);

    // Current generation (paper): ZC702 + Cortex-A9.
    let a9 = ArmHost::calibrated_zc702().expect("calibration");
    let zc702 = Device::zc702();
    let f_now = FoldingSearch::new(&engines).balanced((zc702.clock_hz / 430.0) as u64);
    let finn_now = DesignPoint::evaluate(&engines, &f_now, &zc702, true);

    // Next generation: Ultra96-class device + ARMv8 with NEON.
    let v8 = ArmHost::armv8_neon().expect("calibration");
    let zu3 = Device::zu3eg();
    // Re-fold for the faster clock at the same target latency budget.
    let f_next = FoldingSearch::new(&engines).balanced((zu3.clock_hz / 1500.0) as u64);
    let finn_next = DesignPoint::evaluate(&engines, &f_next, &zu3, true);

    let mut table = TextTable::new(&[
        "system",
        "host img/s",
        "FINN img/s",
        "multi-precision img/s",
        "vs ZC702",
    ]);
    let mut rows = Vec::new();
    for id in ModelId::ALL {
        let cost = zoo::build_paper(id, &mut rng)
            .expect("model builds")
            .total_cost()
            .expect("cost");
        let now_host = a9.images_per_sec(&cost);
        let now_multi = model::images_per_sec(1.0 / now_host, 1.0 / finn_now.obtained_fps, rerun);
        let next_host = v8.images_per_sec(&cost);
        let next_multi =
            model::images_per_sec(1.0 / next_host, 1.0 / finn_next.obtained_fps, rerun);
        table.row(&[
            format!("{} + FINN (ARMv8/ZU3EG)", id.name()),
            format!("{next_host:.1}"),
            format!("{:.0}", finn_next.obtained_fps),
            format!("{next_multi:.1}"),
            format!("{:.1}x", next_multi / now_multi),
        ]);
        rows.push(FutureRow {
            system: id.name().to_string(),
            host_images_per_sec: next_host,
            finn_images_per_sec: finn_next.obtained_fps,
            multi_precision_images_per_sec: next_multi,
            paper_generation_images_per_sec: now_multi,
            speedup: next_multi / now_multi,
        });
    }
    table.print("Future work: the paper's ARMv8+NEON projection (eq. 1 at R_rerun = 0.251)");
    println!(
        "\nZC702 baseline FINN: {:.0} img/s obtained; ZU3EG design fits: {} \
         ({} BRAM of {})",
        finn_now.obtained_fps,
        finn_next.fits(&zu3),
        finn_next.bram_18k,
        zu3.bram_18k,
    );
    println!(
        "headline: with deep hosts (B, C) the host remains the bottleneck, so the \
         ~4x NEON host speedup translates almost 1:1 into system throughput — \
         matching the paper's closing argument."
    );
    mp_bench::write_record("future_work", &rows);
}
