//! Open-loop serving load generator: sweeps deterministic Poisson
//! arrival rates from well under to well over the pipeline's capacity
//! through the `mp-serve` front-end, reporting per-rate p50/p95/p99
//! latency, throughput, shed rate and mean batch size.
//!
//! Everything is virtual-time: arrivals come from a seeded SplitMix64
//! hash, batch service time is the pipeline's modelled `async`/`wait`
//! batch time, and the same `--seed` reproduces the output byte for
//! byte. The sweep doubles as a regression gate:
//!
//! - p99 latency must be monotone non-decreasing in the arrival rate
//!   until shedding engages, and saturated (above every no-shed
//!   point's p99) thereafter — the bounded queue caps tail latency
//!   under overload instead of letting it diverge;
//! - no request may be shed below capacity (backpressure is an
//!   overload mechanism, not a steady-state one);
//! - at the highest rate, dynamic batching must beat a forced
//!   batch-of-1 server on throughput (the whole point of coalescing).

use mp_bench::{CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use mp_core::{MultiPrecisionPipeline, PipelineTiming, RunOptions};
use mp_host::zoo::ModelId;
use mp_serve::{BatchServer, BatcherConfig, Request, ServeReport};
use serde::Serialize;

/// One arrival-rate point of the sweep.
#[derive(Serialize)]
struct RatePoint {
    rate_multiplier: f64,
    rate_rps: f64,
    offered: usize,
    served: usize,
    shed: usize,
    shed_rate: f64,
    p50_s: f64,
    p95_s: f64,
    p99_s: f64,
    mean_queue_wait_s: f64,
    throughput_rps: f64,
    mean_batch_size: f64,
}

#[derive(Serialize)]
struct Record {
    seed: u64,
    model: String,
    capacity_ips: f64,
    max_batch: usize,
    max_delay_s: f64,
    queue_capacity: usize,
    requests_per_point: usize,
    points: Vec<RatePoint>,
    batch1_highest_rate_throughput_rps: f64,
    dynamic_highest_rate_throughput_rps: f64,
    dynamic_over_batch1: f64,
}

/// SplitMix64-style hash of `(seed, index)` to a unit float — the same
/// construction `StreamFaults` uses for its deterministic draws.
fn unit_hash(seed: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic open-loop Poisson trace: exponential inter-arrival
/// gaps at `rate_rps`, images cycling through the store.
fn poisson_trace(seed: u64, n: usize, rate_rps: f64, store_len: usize) -> Vec<Request> {
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            let u = unit_hash(seed, i as u64);
            t += -(1.0 - u).max(1e-12).ln() / rate_rps;
            Request::new(i as u64, i % store_len, t)
        })
        .collect()
}

fn point_from(mult: f64, rate_rps: f64, report: &ServeReport) -> RatePoint {
    let wait: f64 = report.completions.iter().map(|c| c.queue_wait_s()).sum();
    RatePoint {
        rate_multiplier: mult,
        rate_rps,
        offered: report.offered(),
        served: report.served(),
        shed: report.shed.len(),
        shed_rate: report.shed_rate(),
        p50_s: report.percentile_latency_s(50.0).unwrap_or(0.0),
        p95_s: report.percentile_latency_s(95.0).unwrap_or(0.0),
        p99_s: report.percentile_latency_s(99.0).unwrap_or(0.0),
        mean_queue_wait_s: wait / report.served().max(1) as f64,
        throughput_rps: report.throughput_rps(),
        mean_batch_size: report.mean_batch_size(),
    }
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let id = ModelId::A;
    let paper = system.paper_timing(id).expect("paper timing");
    // A small pipeline chunk keeps the `async`/`wait` overlap busy
    // inside a single serving batch: a full 16-request batch spans four
    // overlapped chunks, which is where coalescing beats batch-of-1.
    let timing = PipelineTiming::new(paper.t_bnn_img_s, paper.t_fp_img_s, 4);
    let run_opts = RunOptions::new(timing).with_host_accuracy(system.host_accuracy(id));
    let pipeline = MultiPrecisionPipeline::new(&system.hw, &system.dmu, system.config.threshold);
    let store = &system.test;
    let host = system.host(id);

    // Capacity estimate: the modelled steady-state throughput of one
    // whole-store run. Serving capacity is a little lower (per-batch
    // pipeline ramp), so the 0.9× point still counts as "below".
    let capacity = pipeline
        .execute(host, store, &run_opts)
        .expect("capacity probe")
        .modeled_images_per_sec;
    let max_batch = 16usize;
    let max_delay_s = 2.0 / capacity;
    let queue_capacity = 64usize;
    let cfg = BatcherConfig::try_new(max_batch, max_delay_s, queue_capacity).expect("valid config");
    let server = BatchServer::new(&pipeline, host, store, cfg);
    let n_req = if opts.smoke { 120 } else { 600 };

    let mults = [0.25, 0.5, 0.75, 0.9, 1.5, 3.0];
    let mut table = TextTable::new(&[
        "rate ×cap",
        "req/s",
        "served",
        "shed",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "thru req/s",
        "mean batch",
    ]);
    let mut points = Vec::new();
    for &mult in &mults {
        let rate = mult * capacity;
        let trace = poisson_trace(opts.seed, n_req, rate, store.len());
        let report = server.serve(&trace, &run_opts).expect("serve run");
        // Same trace, same seed ⇒ byte-identical replay.
        let replay = server.serve(&trace, &run_opts).expect("serve replay");
        assert_eq!(report, replay, "serve run must be deterministic");
        let p = point_from(mult, rate, &report);
        table.row(&[
            format!("{mult:.2}"),
            format!("{rate:.1}"),
            format!("{}", p.served),
            format!("{}", p.shed),
            format!("{:.3}", 1e3 * p.p50_s),
            format!("{:.3}", 1e3 * p.p95_s),
            format!("{:.3}", 1e3 * p.p99_s),
            format!("{:.1}", p.throughput_rps),
            format!("{:.2}", p.mean_batch_size),
        ]);
        points.push(p);
    }
    table.print(&format!(
        "Serving latency sweep (Model A + FINN, capacity {capacity:.1} img/s, \
         max_batch {max_batch}, max_delay {:.2} ms, queue {queue_capacity})",
        1e3 * max_delay_s
    ));

    // Gates. While the queue accepts every request, p99 must be
    // monotone non-decreasing in the arrival rate. Once shedding
    // engages, the bounded queue *saturates* the tail instead — wait is
    // capped by the backlog the queue can hold, so p99 plateaus (and
    // may wiggle slightly between over-capacity points); there we
    // require saturation: at least as high as every no-shed point.
    let first_shed = points
        .iter()
        .position(|p| p.shed > 0)
        .unwrap_or(points.len());
    for w in points[..first_shed].windows(2) {
        assert!(
            w[1].p99_s >= w[0].p99_s - 1e-12,
            "p99 must be monotone non-decreasing below saturation: \
             {:.6}s at {:.2}x then {:.6}s at {:.2}x",
            w[0].p99_s,
            w[0].rate_multiplier,
            w[1].p99_s,
            w[1].rate_multiplier,
        );
    }
    let max_noshed_p99 = points[..first_shed]
        .iter()
        .fold(0.0f64, |m, p| m.max(p.p99_s));
    for p in &points[first_shed..] {
        assert!(
            p.p99_s >= max_noshed_p99 - 1e-12,
            "p99 under shedding must saturate above every no-shed point: \
             {:.6}s at {:.2}x vs {max_noshed_p99:.6}s",
            p.p99_s,
            p.rate_multiplier,
        );
    }
    for p in points.iter().filter(|p| p.rate_multiplier < 1.0) {
        assert_eq!(
            p.shed, 0,
            "no shedding below capacity (rate {:.2}x shed {})",
            p.rate_multiplier, p.shed
        );
    }
    let over = points
        .iter()
        .find(|p| p.rate_multiplier > 1.0)
        .expect("over-capacity point present");
    assert!(
        over.shed > 0 || points.last().unwrap().shed > 0,
        "over-capacity load must engage shedding"
    );

    // Dynamic batching vs forced batch-of-1 at the highest rate.
    let highest = *mults.last().unwrap() * capacity;
    let trace = poisson_trace(opts.seed, n_req, highest, store.len());
    let batch1_cfg = BatcherConfig::try_new(1, max_delay_s, queue_capacity).expect("valid config");
    let batch1 = BatchServer::new(&pipeline, host, store, batch1_cfg)
        .serve(&trace, &run_opts)
        .expect("batch-of-1 run");
    let dynamic_thru = points.last().unwrap().throughput_rps;
    let batch1_thru = batch1.throughput_rps();
    println!(
        "\nhighest rate ({:.1} req/s): dynamic batching {:.1} req/s vs \
         batch-of-1 {:.1} req/s ({:.2}x)",
        highest,
        dynamic_thru,
        batch1_thru,
        dynamic_thru / batch1_thru
    );
    assert!(
        dynamic_thru > batch1_thru,
        "dynamic batching must beat batch-of-1 at the highest rate \
         ({dynamic_thru:.2} vs {batch1_thru:.2} req/s)"
    );

    mp_bench::write_record(
        "serve_latency",
        &Record {
            seed: opts.seed,
            model: format!("{id:?}"),
            capacity_ips: capacity,
            max_batch,
            max_delay_s,
            queue_capacity,
            requests_per_point: n_req,
            points,
            batch1_highest_rate_throughput_rps: batch1_thru,
            dynamic_highest_rate_throughput_rps: dynamic_thru,
            dynamic_over_batch1: dynamic_thru / batch1_thru,
        },
    );
}
