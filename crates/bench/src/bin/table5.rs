//! Regenerates **Table V**: the heterogeneous multi-precision systems —
//! Models A, B, C each paired with FINN through the DMU at the selected
//! threshold. Reports measured accuracy, the modelled pipelined
//! throughput (paper-scale ZC702 timing), and the host's accuracy on the
//! hard rerun subset (the paper's 65/79/83 % observation).

use mp_bench::{CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use mp_host::zoo::ModelId;
use serde::Serialize;

#[derive(Serialize)]
struct Table5Row {
    system: String,
    accuracy: f64,
    bnn_accuracy: f64,
    images_per_sec: f64,
    analytic_images_per_sec: f64,
    rerun_ratio: f64,
    host_subset_accuracy: Option<f64>,
    host_global_accuracy: f64,
    paper_accuracy: f64,
    paper_images_per_sec: f64,
}

fn paper_table5(id: ModelId) -> (f64, f64) {
    match id {
        ModelId::A => (0.825, 90.82),
        ModelId::B => (0.86, 14.00),
        ModelId::C => (0.87, 11.98),
    }
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let mut table = TextTable::new(&[
        "system",
        "accuracy",
        "acc (paper)",
        "img/s (modelled)",
        "img/s (paper)",
        "rerun %",
        "subset acc",
        "global acc",
    ]);
    let mut rows = Vec::new();
    for id in ModelId::ALL {
        let run_opts = system.run_options(id).expect("run options");
        let r = system.execute(id, &run_opts).expect("pipeline runs");
        let (paper_acc, paper_fps) = paper_table5(id);
        let row = Table5Row {
            system: format!("{} & FINN", id.name()),
            accuracy: r.accuracy,
            bnn_accuracy: r.bnn_accuracy,
            images_per_sec: r.modeled_images_per_sec,
            analytic_images_per_sec: r.analytic_images_per_sec,
            rerun_ratio: r.quadrants.rerun_ratio(),
            host_subset_accuracy: r.host_subset_accuracy,
            host_global_accuracy: system.host_accuracy(id),
            paper_accuracy: paper_acc,
            paper_images_per_sec: paper_fps,
        };
        table.row(&[
            row.system.clone(),
            format!("{:.1}%", 100.0 * row.accuracy),
            format!("{:.1}%", 100.0 * row.paper_accuracy),
            format!("{:.2}", row.images_per_sec),
            format!("{:.2}", row.paper_images_per_sec),
            format!("{:.1}", 100.0 * row.rerun_ratio),
            match row.host_subset_accuracy {
                Some(acc) => format!("{:.1}%", 100.0 * acc),
                None => "n/a".to_string(),
            },
            format!("{:.1}%", 100.0 * row.host_global_accuracy),
        ]);
        rows.push(row);
    }
    table.print("Table V: heterogeneous multi-precision classification");
    println!(
        "\nBNN standalone: {:.1}% — every combined system must beat it; \
         subset accuracy < global accuracy shows the DMU routes the hard images \
         (paper §III-D)",
        100.0 * system.bnn_test_accuracy
    );
    mp_bench::write_record("table5", &rows);
}
