//! `quant_sweep`: accuracy and modeled throughput of the multi-precision
//! integer path across the `(a_bits, w_bits) ∈ {2, 4, 8}²` sweep, with
//! both end-points of the precision axis pinned against the shipped
//! implementations:
//!
//! - the **1-bit corner** (`NetworkPrecision::one_bit`) must be
//!   bit-identical to the shipped `HardwareBnn` pipeline — same
//!   predictions, same DMU flags, same modeled batch time (the MPIC
//!   network cost factor is exactly 1 there);
//! - the **float32 corner** (`Precision::Float32`) must reproduce the
//!   host model's standalone predictions exactly (every image reruns on
//!   the host).
//!
//! Both gates are asserted on every run (the CI smoke step runs this
//! binary with `--smoke`); a violation exits non-zero. Writes
//! `results/quant_lut.json` with the MPIC MACs/cycle table and one
//! record per corner (accuracy, modeled throughput, rerun count, and an
//! FNV-1a checksum of the predictions so regressions are detectable
//! without storing every label).

use std::sync::Arc;

use serde::Serialize;

use mp_bench::{pct, write_record, CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use mp_core::Precision;
use mp_host::zoo::ModelId;
use mp_int::{CostLut, NetworkPrecision, QuantBnn};
use mp_nn::Network;
use mp_tensor::Parallelism;

/// One precision corner of the sweep.
#[derive(Debug, Serialize)]
struct CornerRecord {
    /// `1bit`, `float32`, or the per-layer precision string.
    label: String,
    a_bits: usize,
    w_bits: usize,
    /// MAC-weighted MPIC multiplier on the 1-bit modeled batch time.
    network_cost_factor: f64,
    /// Final pipeline accuracy at this precision.
    accuracy: f64,
    /// Accuracy of the low-precision stage alone.
    stage_accuracy: f64,
    rerun_count: usize,
    modeled_time_s: f64,
    modeled_images_per_sec: f64,
    /// FNV-1a over the final predictions.
    prediction_checksum: u64,
}

#[derive(Debug, Serialize)]
struct QuantSweepRecord {
    seed: u64,
    smoke: bool,
    test_images: usize,
    threshold: f32,
    host_model: String,
    /// `(a_bits, w_bits, macs_per_cycle)` — the MPIC cost LUT.
    lut_macs_per_cycle: Vec<(usize, usize, f64)>,
    /// Gate: the quantized 1-bit corner reproduced the shipped pipeline
    /// bit-for-bit.
    one_bit_corner_identical: bool,
    /// Gate: the float corner reproduced the host model's standalone
    /// predictions bit-for-bit.
    float_corner_matches_host: bool,
    corners: Vec<CornerRecord>,
}

/// FNV-1a over the predictions, so the JSON pins exact outputs compactly.
fn checksum(preds: &[usize]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &p in preds {
        for byte in (p as u64).to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn corner_record(
    label: String,
    a_bits: usize,
    w_bits: usize,
    factor: f64,
    stage_accuracy: f64,
    result: &mp_core::PipelineResult,
) -> CornerRecord {
    CornerRecord {
        label,
        a_bits,
        w_bits,
        network_cost_factor: factor,
        accuracy: result.accuracy,
        stage_accuracy,
        rerun_count: result.rerun_count,
        modeled_time_s: result.modeled_time_s,
        modeled_images_per_sec: result.modeled_images_per_sec,
        prediction_checksum: checksum(&result.predictions),
    }
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    println!(
        "quant_sweep: training system (seed {}, smoke {})",
        opts.seed, opts.smoke
    );
    let sys = TrainedSystem::prepare(&config).expect("system preparation");
    let id = ModelId::ALL[0];
    let run_opts = sys.run_options(id).expect("run options");
    let layers = sys.bnn.export_latent().len();
    let lut = CostLut::mpic();
    let mut corners = Vec::new();

    // Shipped 1-bit baseline.
    let base = sys.execute(id, &run_opts).expect("1-bit baseline");

    // Gate 1: the quantized path at the 1-bit corner is bit-identical.
    let one_bit = QuantBnn::from_classifier(
        &sys.bnn,
        NetworkPrecision::one_bit(layers).expect("1-bit precision"),
    )
    .expect("1-bit quantisation");
    let one_factor = one_bit.network_cost_factor(&lut);
    let one = sys
        .execute(
            id,
            &run_opts
                .clone()
                .with_precision(Precision::Quantized(Arc::new(one_bit))),
        )
        .expect("1-bit corner");
    let one_bit_identical = one.predictions == base.predictions
        && one.flagged == base.flagged
        && one.modeled_time_s == base.modeled_time_s
        && one_factor == 1.0;
    corners.push(corner_record(
        "1bit".to_owned(),
        1,
        1,
        one_factor,
        one.bnn_accuracy,
        &one,
    ));

    // Gate 2: the float corner reruns everything and reproduces the host
    // model's standalone predictions.
    let float = sys
        .execute(id, &run_opts.clone().with_precision(Precision::Float32))
        .expect("float corner");
    let host_scores = sys
        .host(id)
        .infer_batch_with(sys.test.images(), Parallelism::sequential())
        .expect("host batch");
    let host_preds = Network::argmax_rows(&host_scores).expect("host argmax");
    let float_matches_host = float.predictions == host_preds && float.rerun_count == sys.test.len();
    corners.push(corner_record(
        "float32".to_owned(),
        32,
        32,
        1.0,
        float.host_subset_accuracy.unwrap_or(0.0),
        &float,
    ));

    // The quantized {2,4,8}² sweep (the first layer stays on its 8-bit
    // pixels, as NetworkPrecision::uniform pins it).
    for a in [2usize, 4, 8] {
        for w in [2usize, 4, 8] {
            let precision = NetworkPrecision::uniform(layers, a, w).expect("supported widths");
            let label = format!("a{a}w{w}");
            let quant = QuantBnn::from_classifier(&sys.bnn, precision).expect("quantisation");
            let factor = quant.network_cost_factor(&lut);
            let result = sys
                .execute(
                    id,
                    &run_opts
                        .clone()
                        .with_precision(Precision::Quantized(Arc::new(quant))),
                )
                .expect("quantized corner");
            corners.push(corner_record(
                label,
                a,
                w,
                factor,
                result.bnn_accuracy,
                &result,
            ));
        }
    }

    let mut table = TextTable::new(&[
        "corner",
        "cost x",
        "stage acc",
        "final acc",
        "reruns",
        "modeled img/s",
    ]);
    for c in &corners {
        table.row(&[
            c.label.clone(),
            format!("{:.3}", c.network_cost_factor),
            pct(c.stage_accuracy),
            pct(c.accuracy),
            format!("{}", c.rerun_count),
            format!("{:.1}", c.modeled_images_per_sec),
        ]);
    }
    table.print("multi-precision sweep (MPIC-priced)");
    println!(
        "1-bit corner bit-identical: {one_bit_identical}; float corner matches host: \
         {float_matches_host}"
    );

    let record = QuantSweepRecord {
        seed: opts.seed,
        smoke: opts.smoke,
        test_images: sys.test.len(),
        threshold: sys.config.threshold,
        host_model: id.name().to_owned(),
        lut_macs_per_cycle: lut.entries(),
        one_bit_corner_identical: one_bit_identical,
        float_corner_matches_host: float_matches_host,
        corners,
    };
    write_record("quant_lut", &record);

    if !one_bit_identical || !float_matches_host {
        eprintln!("quant_sweep: corner gate failed");
        std::process::exit(1);
    }
}
