//! Regenerates **Table III**: the three host networks (Model A =
//! cuda-convnet, Model B = Network in Network, Model C = All-CNN),
//! extended with parameter and multiply–accumulate counts per layer.

use mp_bench::TextTable;
use mp_host::zoo::{self, ModelId};
use mp_tensor::init::TensorRng;
use serde::Serialize;

#[derive(Serialize)]
struct ModelRecord {
    model: String,
    layers: Vec<(String, u64, u64)>,
    total_macs: u64,
    total_params: u64,
}

fn main() {
    let mut rng = TensorRng::seed_from(0);
    let mut records = Vec::new();
    for id in ModelId::ALL {
        let net = zoo::build_paper(id, &mut rng).expect("zoo model builds");
        let costs = net.layer_costs().expect("costs computable");
        let mut table = TextTable::new(&["layer", "MACs", "params"]);
        let mut layers = Vec::new();
        for (name, cost) in &costs {
            table.row(&[name.clone(), cost.macs.to_string(), cost.params.to_string()]);
            layers.push((name.clone(), cost.macs, cost.params));
        }
        let total = net.total_cost().expect("costs computable");
        table.row(&[
            "TOTAL".into(),
            total.macs.to_string(),
            total.params.to_string(),
        ]);
        table.print(&format!("Table III: {}", id.name()));
        records.push(ModelRecord {
            model: id.name().to_string(),
            layers,
            total_macs: total.macs,
            total_params: total.params,
        });
    }
    mp_bench::write_record("table3", &records);
}
