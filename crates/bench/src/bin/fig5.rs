//! Regenerates **Fig. 5**: the trained DMU's accuracy and the F̄S / FS̄
//! quadrant fractions across Softmax thresholds 0.5–1.0, evaluated (as
//! in the paper) on the *training* dataset the DMU was fitted to.

use mp_bench::{CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    threshold: f32,
    softmax_accuracy: f64,
    fbar_s: f64,
    fs_bar: f64,
    rerun_ratio: f64,
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!(
        "training system ({:?} profile, seed {})…",
        if opts.smoke { "smoke" } else { "fast" },
        opts.seed
    );
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let thresholds: Vec<f32> = (0..=20).map(|i| 0.5 + 0.025 * i as f32).collect();
    let sweep = system
        .dmu
        .threshold_sweep(
            &system.bnn_train_scores,
            &system.bnn_train_correct,
            &thresholds,
        )
        .expect("sweep runs");
    let mut table = TextTable::new(&["threshold", "Softmax accuracy %", "F̄S %", "FS̄ %", "rerun %"]);
    let mut records = Vec::new();
    for (t, q) in &sweep {
        table.row(&[
            format!("{t:.3}"),
            format!("{:.1}", 100.0 * q.softmax_accuracy()),
            format!("{:.1}", 100.0 * q.fbar_s),
            format!("{:.1}", 100.0 * q.fs_bar),
            format!("{:.1}", 100.0 * q.rerun_ratio()),
        ]);
        records.push(SweepPoint {
            threshold: *t,
            softmax_accuracy: q.softmax_accuracy(),
            fbar_s: q.fbar_s,
            fs_bar: q.fs_bar,
            rerun_ratio: q.rerun_ratio(),
        });
    }
    table.print("Fig. 5: Softmax layer accuracy, F̄S and FS̄ vs threshold (training set)");
    println!(
        "\nshape check: F̄S decreases and FS̄ increases over the 0.5–1.0 range \
         (paper §III-B); BNN train accuracy {:.1}%",
        100.0 * system.bnn_train_correct.iter().filter(|&&c| c).count() as f64
            / system.bnn_train_correct.len() as f64
    );
    mp_bench::write_record("fig5", &records);
}
