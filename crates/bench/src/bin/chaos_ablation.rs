//! Chaos ablation: sweeps injected fault intensity against delivered
//! accuracy and modelled throughput for the heterogeneous pipeline.
//!
//! Three sweeps, all fully deterministic per `--seed`:
//!
//! 1. **Host transient faults** — the host worker's inference fails with
//!    probability `rate`; the degradation policy retries with an
//!    exponential-backoff budget, then falls back to the BNN prediction.
//!    A circuit breaker trips the pipeline into BNN-only mode under
//!    sustained failure.
//! 2. **Latency spikes and worker death** — spikes beyond the per-image
//!    deadline degrade individual images; killing the host worker thread
//!    mid-batch must degrade the remaining flagged images without
//!    panicking or losing predictions.
//! 3. **FPGA stream stalls** — the discrete-event `StreamSim` replays the
//!    FINN feed with seeded source stalls, quantifying throughput loss.
//!
//! The graceful-degradation contract checked here: **every image always
//! gets a prediction**, and accuracy cannot fall below the standalone-BNN
//! floor minus the (reported) degraded fraction.

// The deprecated `run_parallel*` entry points must not creep back in:
// every run goes through `execute` + `RunOptions`.
#![deny(deprecated)]

use mp_bench::{CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use mp_core::model;
use mp_core::{DegradationPolicy, FaultPlan};
use mp_fpga::{StreamFaults, StreamSim};
use mp_host::zoo::ModelId;
use serde::Serialize;

/// One point of the host-fault-rate sweep.
#[derive(Serialize)]
struct HostFaultPoint {
    fault_rate: f64,
    accuracy: f64,
    bnn_accuracy: f64,
    degraded_count: usize,
    degraded_frac: f64,
    rerun_count: usize,
    retries: usize,
    breaker_trips: usize,
    host_attempts: usize,
    virtual_backoff_s: f64,
    modeled_images_per_sec: f64,
    retry_adjusted_images_per_sec: f64,
    fault_log_events: usize,
}

/// One scenario of the spike / worker-death table.
#[derive(Serialize)]
struct ScenarioPoint {
    scenario: String,
    accuracy: f64,
    degraded_count: usize,
    rerun_count: usize,
    retries: usize,
    breaker_trips: usize,
    predictions: usize,
}

/// One point of the FPGA stream-stall sweep.
#[derive(Serialize)]
struct StreamPoint {
    stall_rate: f64,
    throughput_fps: f64,
    clean_throughput_fps: f64,
    throughput_frac: f64,
    mean_latency_s: f64,
}

#[derive(Serialize)]
struct Record {
    seed: u64,
    model: String,
    host_fault_sweep: Vec<HostFaultPoint>,
    scenarios: Vec<ScenarioPoint>,
    stream_stall_sweep: Vec<StreamPoint>,
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let id = ModelId::A;
    let timing = system.paper_timing(id).expect("paper timing");
    let policy = DegradationPolicy::default();
    let base_opts = system.run_options(id).expect("run options");
    let n = {
        let clean = system.execute(id, &base_opts).expect("clean pipeline");
        clean.total_images
    };

    // ---- Sweep 1: host transient fault rate ----
    let mut table = TextTable::new(&[
        "fault rate",
        "accuracy",
        "degraded",
        "retries",
        "breaker trips",
        "img/s (retry-adj)",
    ]);
    let mut host_points = Vec::new();
    for rate in [0.0, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let plan = FaultPlan::seeded(opts.seed).with_host_error_rate(rate);
        let r = system
            .execute(
                id,
                &base_opts.clone().with_faults(plan).with_degradation(policy),
            )
            .expect("chaos pipeline degrades instead of failing");
        assert_eq!(
            r.predictions.len(),
            r.total_images,
            "every image must keep a prediction under faults"
        );
        // Retries multiply the host's service demand; eq. (1) with the
        // attempt ratio in place of the rerun ratio models the resulting
        // throughput under load.
        let attempt_ratio = (r.host_attempts as f64 / r.total_images as f64).min(1.0);
        let retry_adjusted =
            model::images_per_sec(timing.t_fp_img_s, timing.t_bnn_img_s, attempt_ratio);
        table.row(&[
            format!("{rate:.2}"),
            format!("{:.3}", r.accuracy),
            format!("{}", r.degraded_count),
            format!("{}", r.retries),
            format!("{}", r.breaker_trips),
            format!("{retry_adjusted:.2}"),
        ]);
        host_points.push(HostFaultPoint {
            fault_rate: rate,
            accuracy: r.accuracy,
            bnn_accuracy: r.bnn_accuracy,
            degraded_count: r.degraded_count,
            degraded_frac: r.degraded_count as f64 / r.total_images as f64,
            rerun_count: r.rerun_count,
            retries: r.retries,
            breaker_trips: r.breaker_trips,
            host_attempts: r.host_attempts,
            virtual_backoff_s: r.virtual_backoff_s,
            modeled_images_per_sec: r.modeled_images_per_sec,
            retry_adjusted_images_per_sec: retry_adjusted,
            fault_log_events: r.fault_log.len(),
        });
    }
    table.print("Chaos sweep: host transient fault rate (Model A + FINN)");

    // ---- Sweep 2: spike and worker-death scenarios ----
    let mut table = TextTable::new(&["scenario", "accuracy", "degraded", "rerun", "retries"]);
    let mut scenarios = Vec::new();
    let spike = policy.host_deadline_s * 8.0;
    let cases: Vec<(String, FaultPlan)> = vec![
        (
            "spikes 20% over deadline".to_string(),
            FaultPlan::seeded(opts.seed).with_host_spikes(0.2, spike),
        ),
        (
            "spikes 100% under deadline".to_string(),
            FaultPlan::seeded(opts.seed).with_host_spikes(1.0, policy.host_deadline_s * 0.1),
        ),
        (
            "worker death at image 0".to_string(),
            FaultPlan::seeded(opts.seed).with_host_death_after(0),
        ),
        (
            format!("worker death mid-batch ({})", n / 2),
            FaultPlan::seeded(opts.seed).with_host_death_after(n / 2),
        ),
        (
            "errors 30% + spikes 10%".to_string(),
            FaultPlan::seeded(opts.seed)
                .with_host_error_rate(0.3)
                .with_host_spikes(0.1, spike),
        ),
    ];
    for (name, plan) in cases {
        let r = system
            .execute(
                id,
                &base_opts.clone().with_faults(plan).with_degradation(policy),
            )
            .expect("chaos pipeline degrades instead of failing");
        table.row(&[
            name.clone(),
            format!("{:.3}", r.accuracy),
            format!("{}", r.degraded_count),
            format!("{}", r.rerun_count),
            format!("{}", r.retries),
        ]);
        scenarios.push(ScenarioPoint {
            scenario: name,
            accuracy: r.accuracy,
            degraded_count: r.degraded_count,
            rerun_count: r.rerun_count,
            retries: r.retries,
            breaker_trips: r.breaker_trips,
            predictions: r.predictions.len(),
        });
    }
    table.print("Chaos scenarios: latency spikes and host-worker death");

    // ---- Sweep 3: FPGA stream stalls ----
    // FINN's modelled per-image interval feeds a 3-stage pipeline; stalls
    // freeze the source for 10 intervals with the given probability.
    let interval = timing.t_bnn_img_s;
    let sim = StreamSim::new(vec![interval, interval * 0.6, interval * 0.3], 4, interval);
    let batch = 512;
    let clean = sim.run(batch);
    let mut table = TextTable::new(&["stall rate", "img/s", "of clean", "mean latency (ms)"]);
    let mut stream_points = Vec::new();
    for rate in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let faults = StreamFaults::seeded(opts.seed).with_stalls(rate, 10.0 * interval);
        let r = sim.run_with_faults(batch, &faults);
        table.row(&[
            format!("{rate:.2}"),
            format!("{:.2}", r.throughput_fps),
            format!("{:.1}%", 100.0 * r.throughput_fps / clean.throughput_fps),
            format!("{:.3}", 1e3 * r.mean_latency_s),
        ]);
        stream_points.push(StreamPoint {
            stall_rate: rate,
            throughput_fps: r.throughput_fps,
            clean_throughput_fps: clean.throughput_fps,
            throughput_frac: r.throughput_fps / clean.throughput_fps,
            mean_latency_s: r.mean_latency_s,
        });
    }
    table.print("Chaos sweep: FINN stream source stalls (StreamSim)");

    println!(
        "\nexpected: accuracy decays from the multi-precision level toward the \
         BNN floor as faults force fallbacks, never below it minus the degraded \
         fraction; throughput degrades smoothly with stall rate"
    );
    mp_bench::write_record(
        "chaos_ablation",
        &Record {
            seed: opts.seed,
            model: format!("{id:?}"),
            host_fault_sweep: host_points,
            scenarios,
            stream_stall_sweep: stream_points,
        },
    );
}
