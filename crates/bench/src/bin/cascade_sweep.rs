//! `cascade_sweep`: the Pareto front of N-stage confidence cascades
//! against the paper's 2-stage DMU baseline.
//!
//! The paper's decision subsystem is one threshold between the BNN and
//! the float host. [`CascadePolicy`] generalises it to an N-stage chain;
//! this bench measures what that generality buys. Per target accuracy it
//! tunes, over the same gate grid:
//!
//! - the **2-stage baseline** — primary → host, the `dmu(t)` shape;
//! - the **3-stage cascade** — primary → 4-bit quantized → host.
//!
//! Because [`tune_gates`] searches every sub-chain, the 3-stage front
//! must *dominate or match* the 2-stage front at every swept target —
//! that is the CI gate (`--smoke` runs the same assertions on the tiny
//! profile). Two more gates pin the API contract itself:
//!
//! - `CascadePolicy::dmu(t)` executes **bit-identically** to the legacy
//!   constructor threshold (predictions, flags, modeled time);
//! - the executor's measured per-stage traffic and accuracy equal the
//!   tuner's calibration-set evaluation at the tuned gates.
//!
//! Writes `results/cascade_pareto.json`; any gate failure exits
//! non-zero.

use std::sync::Arc;

use serde::Serialize;

use mp_bench::{pct, write_record, CliOptions, TextTable};
use mp_core::cascade::{evaluate_chain, tune_gates, StageProfile, TunedCascade};
use mp_core::dmu::Dmu;
use mp_core::experiment::TrainedSystem;
use mp_core::{CascadePolicy, CascadeStage, PipelineTiming, Precision, StageClassifier};
use mp_host::zoo::ModelId;
use mp_int::{CostLut, NetworkPrecision, QuantBnn};
use mp_nn::Network;
use mp_tensor::Tensor;

/// One tuned operating point on a front.
#[derive(Debug, Serialize)]
struct PointRecord {
    /// Stage labels in escalation order.
    stages: Vec<String>,
    /// Gates on the non-terminal stages.
    gates: Vec<f32>,
    /// Calibration accuracy at those gates.
    accuracy: f64,
    /// Expected serial cost per image (seconds).
    expected_cost_s: f64,
    /// Images entering each stage.
    entered: Vec<usize>,
}

#[derive(Debug, Serialize)]
struct TargetRecord {
    target_accuracy: f64,
    two_stage: Option<PointRecord>,
    n_stage: Option<PointRecord>,
    /// The acceptance gate: the N-stage front reaches the target at a
    /// cost no worse than the 2-stage baseline (vacuously true when the
    /// target is infeasible for both).
    dominates_or_matches: bool,
}

#[derive(Debug, Serialize)]
struct CascadeParetoRecord {
    seed: u64,
    smoke: bool,
    test_images: usize,
    host_model: String,
    /// Stage labels of the full chain the sweep tunes over.
    stage_labels: Vec<String>,
    /// Modeled per-image cost of each stage (seconds).
    stage_unit_costs_s: Vec<f64>,
    gate_grid: Vec<f32>,
    /// Gate: `CascadePolicy::dmu(t)` ran bit-identically to the legacy
    /// constructor threshold.
    dmu_bit_identical: bool,
    /// Gate: the executor's traffic/accuracy matched the tuner's
    /// calibration evaluation at the tuned gates.
    executor_matches_evaluator: bool,
    /// Gate: the N-stage front dominated or matched the 2-stage
    /// baseline at every swept target.
    front_dominates: bool,
    targets: Vec<TargetRecord>,
}

fn point(profiles: &[&StageProfile], tuned: &TunedCascade) -> PointRecord {
    PointRecord {
        stages: tuned
            .stage_indices
            .iter()
            .map(|&i| profiles[i].label.clone())
            .collect(),
        gates: tuned.gates.clone(),
        accuracy: tuned.eval.accuracy,
        expected_cost_s: tuned.eval.expected_cost_s,
        entered: tuned.eval.entered.clone(),
    }
}

/// Measures one scored stage unconditionally over the test set.
fn profile_from_scores(
    label: String,
    scores: &Tensor,
    labels: &[usize],
    dmu: &Dmu,
    unit_cost_s: f64,
) -> StageProfile {
    let preds = Network::argmax_rows(scores).expect("argmax");
    StageProfile {
        label,
        confidence: dmu.predict_batch(scores).expect("dmu confidence"),
        correct: preds.iter().zip(labels).map(|(p, l)| p == l).collect(),
        unit_cost_s,
    }
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    println!(
        "cascade_sweep: training system (seed {}, smoke {})",
        opts.seed, opts.smoke
    );
    let sys = TrainedSystem::prepare(&config).expect("system preparation");
    let id = ModelId::ALL[0];
    let run_opts = sys.run_options(id).expect("run options");
    let timing: PipelineTiming = *run_opts.timing();
    let labels = sys.test.labels();
    let lut = CostLut::mpic();

    // Gate 1: dmu(t) is bit-identical to the legacy constructor threshold.
    let legacy = sys.execute(id, &run_opts).expect("legacy threshold run");
    let via_cascade = sys
        .execute(
            id,
            &run_opts
                .clone()
                .with_cascade(CascadePolicy::dmu(sys.config.threshold)),
        )
        .expect("dmu cascade run");
    let dmu_bit_identical = legacy.predictions == via_cascade.predictions
        && legacy.flagged == via_cascade.flagged
        && legacy.modeled_time_s == via_cascade.modeled_time_s
        && legacy.degraded_count == via_cascade.degraded_count;

    // Unconditional per-stage calibration profiles over the test set.
    let layers = sys.bnn.export_latent().len();
    let quant = Arc::new(
        QuantBnn::from_classifier(&sys.bnn, NetworkPrecision::uniform(layers, 4, 4).unwrap())
            .expect("4-bit quantisation"),
    );
    let quant_factor = quant.network_cost_factor(&lut);
    let primary = profile_from_scores(
        Precision::OneBit.label(),
        &sys.bnn_test_scores,
        labels,
        &sys.dmu,
        timing.t_bnn_img_s,
    );
    let quant_scores = quant.infer_batch(sys.test.images()).expect("quant batch");
    let mid = profile_from_scores(
        quant.precision().to_string(),
        &quant_scores,
        labels,
        &sys.dmu,
        timing.t_bnn_img_s * quant_factor,
    );
    let host_scores = sys
        .host(id)
        .infer_batch_with(sys.test.images(), mp_tensor::Parallelism::sequential())
        .expect("host batch");
    let host_preds = Network::argmax_rows(&host_scores).expect("host argmax");
    let terminal = StageProfile {
        label: Precision::Float32.label(),
        // Terminal confidence is never gated; NaN documents that.
        confidence: vec![f32::NAN; labels.len()],
        correct: host_preds.iter().zip(labels).map(|(p, l)| p == l).collect(),
        unit_cost_s: timing.t_fp_img_s,
    };

    let chain = [primary, mid, terminal];
    let stage_labels: Vec<String> = chain.iter().map(|p| p.label.clone()).collect();
    let stage_unit_costs_s: Vec<f64> = chain.iter().map(|p| p.unit_cost_s).collect();
    let two_stage_profiles = [chain[0].clone(), chain[2].clone()];
    let grid: Vec<f32> = (0..=10).map(|i| i as f32 / 10.0).collect();

    // Sweep targets from the primary stage's solo accuracy up to the
    // host ceiling.
    let acc0 = chain[0].correct.iter().filter(|&&c| c).count() as f64 / labels.len() as f64;
    let acc_host = chain[2].correct.iter().filter(|&&c| c).count() as f64 / labels.len() as f64;
    let steps = if opts.smoke { 2 } else { 4 };
    let mut targets = Vec::new();
    let mut front_dominates = true;
    for k in 0..=steps {
        let target = acc0 + (acc_host - acc0) * k as f64 / steps as f64;
        let two = tune_gates(&two_stage_profiles, target, &grid).expect("2-stage tuning");
        let n = tune_gates(&chain, target, &grid).expect("n-stage tuning");
        let dominates_or_matches = match (&two, &n) {
            (Some(t2), Some(tn)) => {
                tn.eval.expected_cost_s <= t2.eval.expected_cost_s + 1e-12
                    && tn.eval.accuracy + 1e-12 >= target
            }
            // A target the baseline reaches but the cascade cannot is a
            // regression; an infeasible target is vacuously fine.
            (Some(_), None) => false,
            (None, _) => true,
        };
        front_dominates &= dominates_or_matches;
        targets.push(TargetRecord {
            target_accuracy: target,
            two_stage: two
                .as_ref()
                .map(|t| point(&[&two_stage_profiles[0], &two_stage_profiles[1]], t)),
            n_stage: n
                .as_ref()
                .map(|t| point(&[&chain[0], &chain[1], &chain[2]], t)),
            dominates_or_matches,
        });
    }

    // Gate 3: executing the tuned chain reproduces the calibration
    // evaluation — per-stage traffic and accuracy — at the hardest
    // feasible target.
    let mut executor_matches_evaluator = true;
    if let Some(tuned) = targets
        .iter()
        .rev()
        .find_map(|t| t.n_stage.as_ref())
        .map(|p| (p.stages.clone(), p.gates.clone()))
    {
        let (tuned_labels, tuned_gates) = tuned;
        let mut stages = Vec::new();
        let mut gate_iter = tuned_gates.iter();
        for label in &tuned_labels {
            let classifier = if *label == chain[0].label {
                StageClassifier::Primary
            } else if *label == chain[1].label {
                StageClassifier::Quantized(Arc::clone(&quant))
            } else {
                StageClassifier::HostFloat
            };
            match gate_iter.next() {
                Some(&g) => stages.push(CascadeStage::gated(classifier, g)),
                None => stages.push(CascadeStage::terminal(classifier)),
            }
        }
        let policy = CascadePolicy::try_new(stages).expect("tuned policy");
        let run = sys
            .execute(id, &run_opts.clone().with_cascade(policy))
            .expect("tuned cascade run");
        let profile_refs: Vec<&StageProfile> = tuned_labels
            .iter()
            .map(|l| chain.iter().find(|p| p.label == *l).expect("known stage"))
            .collect();
        let eval = evaluate_chain(&profile_refs, &tuned_gates);
        let traffic_entered: Vec<usize> = run.stage_traffic.iter().map(|t| t.entered).collect();
        let traffic_accepted: Vec<usize> = run.stage_traffic.iter().map(|t| t.accepted).collect();
        executor_matches_evaluator = traffic_entered == eval.entered
            && traffic_accepted == eval.accepted
            && (run.accuracy - eval.accuracy).abs() < 1e-9;
        if !executor_matches_evaluator {
            eprintln!(
                "executor traffic {traffic_entered:?}/{traffic_accepted:?} acc {:.4} vs \
                 evaluator {:?}/{:?} acc {:.4}",
                run.accuracy, eval.entered, eval.accepted, eval.accuracy
            );
        }
    }

    let mut table = TextTable::new(&["target", "2-stage cost", "3-stage cost", "3-stage gates"]);
    for t in &targets {
        table.row(&[
            pct(t.target_accuracy),
            t.two_stage
                .as_ref()
                .map_or("—".into(), |p| format!("{:.6}s", p.expected_cost_s)),
            t.n_stage
                .as_ref()
                .map_or("—".into(), |p| format!("{:.6}s", p.expected_cost_s)),
            t.n_stage
                .as_ref()
                .map_or("—".into(), |p| format!("{:?}", p.gates)),
        ]);
    }
    table.print("cascade Pareto front (expected serial cost per image)");
    println!(
        "dmu bit-identical: {dmu_bit_identical}; executor matches evaluator: \
         {executor_matches_evaluator}; front dominates: {front_dominates}"
    );

    let record = CascadeParetoRecord {
        seed: opts.seed,
        smoke: opts.smoke,
        test_images: sys.test.len(),
        host_model: id.name().to_owned(),
        stage_labels,
        stage_unit_costs_s,
        gate_grid: grid,
        dmu_bit_identical,
        executor_matches_evaluator,
        front_dominates,
        targets,
    };
    write_record("cascade_pareto", &record);

    if !dmu_bit_identical || !executor_matches_evaluator || !front_dominates {
        eprintln!("cascade_sweep: acceptance gate failed");
        std::process::exit(1);
    }
}
