//! Trains the multi-precision system **once** and regenerates every
//! trained-system artefact in one pass: Fig. 5, Table II, Table IV,
//! Table V, the eq. (2) validation and the DMU ablation. The
//! single-artefact binaries (`fig5`, `table2`, …) remain available when
//! you want one table in isolation; this one exists because training is
//! the dominant cost.
//!
//! ```sh
//! cargo run --release -p mp-bench --bin eval_all            # fast profile
//! cargo run --release -p mp-bench --bin eval_all -- --smoke # seconds
//! ```

use mp_bench::{pct, CliOptions, TextTable};
use mp_core::dmu::{baselines, selection, ConfusionQuadrants};
use mp_core::experiment::TrainedSystem;
use mp_core::model;
use mp_host::zoo::ModelId;
use serde::Serialize;

#[derive(Serialize)]
struct EvalRecord {
    seed: u64,
    profile: String,
    threshold: f32,
    bnn_test_accuracy: f64,
    fig5: Vec<(f32, ConfusionQuadrants)>,
    table2: ConfusionQuadrants,
    table4: Vec<(String, f64, f64)>,
    table5: Vec<Table5Entry>,
    dmu_ablation: Vec<(String, f64, f64)>,
}

#[derive(Serialize)]
struct Table5Entry {
    system: String,
    accuracy: f64,
    images_per_sec: f64,
    analytic_images_per_sec: f64,
    rerun_ratio: f64,
    host_subset_accuracy: Option<f64>,
    host_global_accuracy: f64,
    eq2_global: f64,
    /// `null` when the host was never consulted (no rerun subset).
    eq2_exact: Option<f64>,
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    let profile = if opts.smoke { "smoke" } else { "fast" };
    eprintln!("training system ({profile} profile, seed {})…", opts.seed);
    let t0 = std::time::Instant::now();
    let mut system = TrainedSystem::prepare(&config).expect("system trains");
    eprintln!("trained in {:.0}s", t0.elapsed().as_secs_f64());

    // ---- Fig. 5: threshold sweep on the training set ----
    let thresholds: Vec<f32> = (0..=20).map(|i| 0.5 + 0.025 * i as f32).collect();
    let fig5 = system
        .dmu
        .threshold_sweep(
            &system.bnn_train_scores,
            &system.bnn_train_correct,
            &thresholds,
        )
        .expect("sweep");
    let mut t = TextTable::new(&["thr", "Softmax acc", "F̄S", "FS̄", "rerun"]);
    for (thr, q) in &fig5 {
        t.row(&[
            format!("{thr:.3}"),
            pct(q.softmax_accuracy()),
            pct(q.fbar_s),
            pct(q.fs_bar),
            pct(q.rerun_ratio()),
        ]);
    }
    t.print("Fig. 5: DMU threshold sweep (training set)");

    // ---- Table II: the operating point ----
    // The paper picks its threshold by eq. (6)/(7): with a slow host,
    // choose from the start of the range. We apply the same procedure
    // with an explicit rerun budget sized to our BNN's error rate.
    let budget = (1.2 * (1.0 - system.bnn_test_accuracy)).clamp(0.25, 0.7);
    let (op_thr, table2) = selection::select_threshold_for_rerun(&fig5, budget);
    system.config.threshold = op_thr;
    let mut t = TextTable::new(&["Threshold", "FS", "F̄S̄", "F̄S", "FS̄"]);
    t.row(&[
        format!("{op_thr:.2}"),
        pct(table2.fs),
        pct(table2.fbar_sbar),
        pct(table2.fbar_s),
        pct(table2.fs_bar),
    ]);
    t.print("Table II: selected operating point");
    println!(
        "derived: Softmax accuracy {} | rerun {} | max achievable accuracy {}",
        pct(table2.softmax_accuracy()),
        pct(table2.rerun_ratio()),
        pct(table2.max_achievable_accuracy()),
    );

    // ---- Table IV: standalone systems ----
    let mut t = TextTable::new(&["system", "accuracy", "img/s (paper-scale model)"]);
    let mut table4 = Vec::new();
    for id in ModelId::ALL {
        let timing = system.paper_timing(id).expect("timing");
        let fps = 1.0 / timing.t_fp_img_s;
        t.row(&[
            id.name().into(),
            pct(system.host_accuracy(id)),
            format!("{fps:.2}"),
        ]);
        table4.push((id.name().to_string(), system.host_accuracy(id), fps));
    }
    t.row(&[
        "FINN (FPGA)".into(),
        pct(system.bnn_test_accuracy),
        "430.15".into(),
    ]);
    table4.push(("FINN (FPGA)".into(), system.bnn_test_accuracy, 430.15));
    t.print("Table IV: non-heterogeneous classification");

    // ---- Table V: multi-precision systems ----
    let mut t = TextTable::new(&[
        "system",
        "accuracy",
        "img/s",
        "eq.(1) img/s",
        "rerun",
        "subset acc",
        "global acc",
    ]);
    let mut table5 = Vec::new();
    for id in ModelId::ALL {
        let run_opts = system.run_options(id).expect("run options");
        let r = system.execute(id, &run_opts).expect("pipeline");
        // `None` (→ `null` in the record) when nothing was rerun; the
        // exact form needs a measured subset accuracy to exist.
        let eq2_exact = r.host_subset_accuracy.map(|subset| {
            model::accuracy_exact(
                r.bnn_accuracy,
                subset,
                r.quadrants.rerun_ratio(),
                r.quadrants.rerun_err_ratio(),
            )
        });
        t.row(&[
            format!("{} & FINN", id.name()),
            pct(r.accuracy),
            format!("{:.2}", r.modeled_images_per_sec),
            format!("{:.2}", r.analytic_images_per_sec),
            pct(r.quadrants.rerun_ratio()),
            r.host_subset_accuracy
                .map_or_else(|| "n/a".to_string(), pct),
            pct(system.host_accuracy(id)),
        ]);
        table5.push(Table5Entry {
            system: id.name().to_string(),
            accuracy: r.accuracy,
            images_per_sec: r.modeled_images_per_sec,
            analytic_images_per_sec: r.analytic_images_per_sec,
            rerun_ratio: r.quadrants.rerun_ratio(),
            host_subset_accuracy: r.host_subset_accuracy,
            host_global_accuracy: system.host_accuracy(id),
            eq2_global: r.analytic_accuracy_eq2,
            eq2_exact,
        });
    }
    t.print("Table V: heterogeneous multi-precision classification");
    println!(
        "BNN standalone: {} — every combined system should beat it",
        pct(system.bnn_test_accuracy)
    );

    // ---- DMU ablation at the operating rerun budget ----
    let budget = table2.rerun_ratio() + 0.02;
    let _ = &config;
    let trained_conf = system
        .dmu
        .predict_batch(&system.bnn_test_scores)
        .expect("dmu");
    let mut t = TextTable::new(&["rule", "estimator acc", "rerun", "accuracy cap"]);
    let mut ablation = Vec::new();
    let rules: Vec<(&str, Vec<f32>)> = vec![
        ("trained Softmax DMU", trained_conf),
        (
            "max-softmax",
            baselines::confidence_batch(&system.bnn_test_scores, baselines::max_softmax)
                .expect("conf"),
        ),
        (
            "margin",
            baselines::confidence_batch(&system.bnn_test_scores, baselines::margin).expect("conf"),
        ),
        (
            "1-entropy",
            baselines::confidence_batch(&system.bnn_test_scores, baselines::negative_entropy)
                .expect("conf"),
        ),
    ];
    for (name, conf) in rules {
        let mut best: Option<ConfusionQuadrants> = None;
        for i in 0..=100 {
            let est: Vec<bool> = conf.iter().map(|&c| c >= i as f32 / 100.0).collect();
            let q = ConfusionQuadrants::tally(&system.bnn_test_correct, &est);
            if q.rerun_ratio() <= budget
                && best
                    .map(|b| q.max_achievable_accuracy() > b.max_achievable_accuracy())
                    .unwrap_or(true)
            {
                best = Some(q);
            }
        }
        let q = best.unwrap_or_default();
        t.row(&[
            name.into(),
            pct(q.softmax_accuracy()),
            pct(q.rerun_ratio()),
            pct(q.max_achievable_accuracy()),
        ]);
        ablation.push((
            name.to_string(),
            q.softmax_accuracy(),
            q.max_achievable_accuracy(),
        ));
    }
    t.print(&format!("DMU ablation (test set, rerun ≤ {})", pct(budget)));

    mp_bench::write_record(
        "eval_all",
        &EvalRecord {
            seed: opts.seed,
            profile: profile.into(),
            threshold: op_thr,
            bnn_test_accuracy: system.bnn_test_accuracy,
            fig5,
            table2,
            table4,
            table5,
            dmu_ablation: ablation,
        },
    );
}
