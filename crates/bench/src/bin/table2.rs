//! Regenerates **Table II**: the DMU's quadrant split at the selected
//! operating threshold (the paper picks 0.84 and reports FS = 66.2 %,
//! F̄S̄ = 12.8 %, F̄S = 8.7 %, FS̄ = 12.3 %, capping the achievable
//! multi-precision accuracy at 91.3 %).

use mp_bench::{pct, CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use serde::Serialize;

#[derive(Serialize)]
struct Table2Record {
    threshold: f32,
    fs: f64,
    fbar_sbar: f64,
    fbar_s: f64,
    fs_bar: f64,
    softmax_accuracy: f64,
    rerun_ratio: f64,
    max_achievable_accuracy: f64,
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let threshold = config.threshold;
    let sweep = system
        .dmu
        .threshold_sweep(
            &system.bnn_train_scores,
            &system.bnn_train_correct,
            &[threshold],
        )
        .expect("sweep runs");
    let (_, q) = sweep[0];
    let mut table = TextTable::new(&["Threshold", "FS", "F̄S̄", "F̄S", "FS̄"]);
    table.row(&[
        format!("{threshold}"),
        pct(q.fs),
        pct(q.fbar_sbar),
        pct(q.fbar_s),
        pct(q.fs_bar),
    ]);
    table.print("Table II: Softmax layer threshold setting and obtained values");
    println!(
        "\nderived: Softmax accuracy {} | rerun ratio {} | maximum achievable \
         multi-precision accuracy {}",
        pct(q.softmax_accuracy()),
        pct(q.rerun_ratio()),
        pct(q.max_achievable_accuracy()),
    );
    mp_bench::write_record(
        "table2",
        &Table2Record {
            threshold,
            fs: q.fs,
            fbar_sbar: q.fbar_sbar,
            fbar_s: q.fbar_s,
            fs_bar: q.fs_bar,
            softmax_accuracy: q.softmax_accuracy(),
            rerun_ratio: q.rerun_ratio(),
            max_achievable_accuracy: q.max_achievable_accuracy(),
        },
    );
}
