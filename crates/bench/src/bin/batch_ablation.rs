//! Ablation for the paper's §III claim that "changing batch size does
//! not have a significant effect on multi-precision features … but the
//! latency of an image to pass through the multi-precision system
//! increases": sweeps the FPGA batch size at fixed rerun behaviour and
//! reports throughput and first/mean image latency, plus the FINN
//! streaming simulator's ramp behaviour.

use mp_bench::TextTable;
use mp_bnn::FinnTopology;
use mp_core::PipelineTiming;
use mp_fpga::{device::Device, folding::FoldingSearch, stream_sim::StreamSim};
use serde::Serialize;

#[derive(Serialize)]
struct BatchPoint {
    batch_size: usize,
    pipeline_images_per_sec: f64,
    finn_stream_images_per_sec: f64,
    finn_first_latency_ms: f64,
    finn_mean_latency_ms: f64,
}

fn main() {
    // Fixed workload: 10 000 images, 25.1 % rerun (the paper's Table II
    // operating point), Model A host timing.
    let n = 10_000usize;
    let rerun = 0.251;
    let kept: Vec<bool> = (0..n)
        .map(|i| ((i as f64 * rerun) % 1.0) + rerun <= 1.0)
        .collect();

    // FINN pipeline for the stream-level view: the ~430 img/s design.
    let engines = FinnTopology::paper().engines();
    let device = Device::zc702();
    let folding = FoldingSearch::new(&engines).balanced((device.clock_hz / 430.0) as u64);
    let cycles = folding.cycles(&engines);

    let mut table = TextTable::new(&[
        "batch",
        "pipeline img/s",
        "FINN stream img/s",
        "first latency (ms)",
        "mean latency (ms)",
    ]);
    let mut records = Vec::new();
    for batch in [10usize, 50, 100, 500, 1000, 5000] {
        let timing = PipelineTiming::new(1.0 / 430.15, 1.0 / 29.68, batch);
        let pipeline_fps = overlap_throughput(&kept, &timing);
        let sim = StreamSim::from_cycles(&cycles, device.clock_hz, 2)
            .with_source_interval(device.io_overhead_s)
            .run(batch);
        table.row(&[
            batch.to_string(),
            format!("{pipeline_fps:.2}"),
            format!("{:.1}", sim.throughput_fps),
            format!("{:.2}", 1e3 * sim.first_latency_s),
            format!("{:.2}", 1e3 * sim.mean_latency_s),
        ]);
        records.push(BatchPoint {
            batch_size: batch,
            pipeline_images_per_sec: pipeline_fps,
            finn_stream_images_per_sec: sim.throughput_fps,
            finn_first_latency_ms: 1e3 * sim.first_latency_s,
            finn_mean_latency_ms: 1e3 * sim.mean_latency_s,
        });
    }
    table.print("Batch-size ablation (paper §III: throughput ~flat, latency grows)");
    mp_bench::write_record("batch_ablation", &records);
}

fn overlap_throughput(kept: &[bool], timing: &PipelineTiming) -> f64 {
    let batch = timing.batch_size;
    let flagged: Vec<usize> = kept
        .chunks(batch)
        .map(|c| c.iter().filter(|&&k| !k).count())
        .collect();
    let mut total = 0.0;
    for (i, chunk) in kept.chunks(batch).enumerate() {
        let host = if i > 0 {
            flagged[i - 1] as f64 * timing.t_fp_img_s
        } else {
            0.0
        };
        total += (chunk.len() as f64 * timing.t_bnn_img_s).max(host);
    }
    total += *flagged.last().expect("non-empty") as f64 * timing.t_fp_img_s;
    kept.len() as f64 / total
}
