//! `autotune`: runs the mp-autotune folding × precision search over the
//! paper's engine chain and emits the throughput / accuracy / resource
//! Pareto front to `results/autotune_pareto.json`.
//!
//! Two gates are asserted on every run (CI runs `--smoke`):
//!
//! 1. **Domination** — for both memory models (naive = Fig. 3,
//!    partitioned = Fig. 4), every shipped hand-picked configuration of
//!    the figures' folding sweep must be dominated or matched by some
//!    searched point on `(expected img/s ↑, BRAM ↓, LUTs ↓)`. The
//!    search seeds itself with the exact sweep grid, so a failure means
//!    the oracle's cost accounting diverged from `DesignPoint`.
//! 2. **Front sanity** — the emitted Pareto front is non-empty and
//!    mutually non-dominated.
//!
//! A violation exits non-zero.

use std::sync::Arc;

use serde::Serialize;

use mp_autotune::{pareto_front, Autotuner, Oracle, Profile, TunedPoint};
use mp_bench::{pct, write_record, CliOptions, TextTable};
use mp_bnn::FinnTopology;
use mp_core::experiment::TrainedSystem;
use mp_core::Precision;
use mp_fpga::{design::DesignPoint, device::Device, memory::MemoryModel};
use mp_host::zoo::ModelId;
use mp_int::QuantBnn;
use mp_verify::VerifyTarget;

/// Relative slack of the domination gate: seeds reproduce the shipped
/// points exactly, so only floating-point formatting noise is excused.
const GATE_REL_TOL: f64 = 1e-9;

#[derive(Debug, Serialize)]
struct ParetoEntry {
    profile: String,
    memory: String,
    /// Per-engine `(P, S)`.
    folding: Vec<(usize, usize)>,
    total_pe: usize,
    bottleneck_cycles: u64,
    quant_bottleneck_cycles: f64,
    modeled_fps: f64,
    bram_18k: u64,
    luts: u64,
    fits_device: bool,
    accuracy: f64,
}

#[derive(Debug, Serialize)]
struct GateRecord {
    memory: String,
    shipped_configs: usize,
    dominated_or_matched: usize,
    passed: bool,
    failures: Vec<String>,
}

#[derive(Debug, Serialize)]
struct AutotuneRecord {
    seed: u64,
    smoke: bool,
    beam_width: usize,
    profiles: Vec<String>,
    accuracy_per_profile: Vec<(String, f64)>,
    gates: Vec<GateRecord>,
    front_size: usize,
    points_searched: usize,
    pareto: Vec<ParetoEntry>,
}

fn entry(point: &TunedPoint, memory: &str) -> ParetoEntry {
    ParetoEntry {
        profile: point.profile.clone(),
        memory: memory.to_owned(),
        folding: point.folding.engines().iter().map(|f| (f.p, f.s)).collect(),
        total_pe: point.folding.total_pe(),
        bottleneck_cycles: point.cost.bottleneck_cycles,
        quant_bottleneck_cycles: point.cost.quant_bottleneck_cycles,
        modeled_fps: point.cost.modeled_fps,
        bram_18k: point.cost.bram_18k,
        luts: point.cost.luts,
        fits_device: point.cost.fits,
        accuracy: point.accuracy.unwrap_or(0.0),
    }
}

/// Does any searched point dominate-or-match the shipped design on
/// `(expected fps, BRAM, LUTs)`?
fn gate(
    memory: &str,
    shipped: &[(DesignPoint, mp_bench::figures::FigRecord)],
    front: &[TunedPoint],
) -> GateRecord {
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for (p, _) in shipped {
        let ok = front.iter().any(|t| {
            t.cost.modeled_fps >= p.expected_fps * (1.0 - GATE_REL_TOL)
                && t.cost.bram_18k <= p.bram_18k
                && t.cost.luts <= p.luts
        });
        if ok {
            matched += 1;
        } else {
            failures.push(format!(
                "{memory}: shipped PE={} fps={:.1} bram={} luts={} undominated",
                p.total_pe, p.expected_fps, p.bram_18k, p.luts
            ));
        }
    }
    GateRecord {
        memory: memory.to_owned(),
        shipped_configs: shipped.len(),
        dominated_or_matched: matched,
        passed: failures.is_empty(),
        failures,
    }
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    let beam_width = if opts.smoke { 8 } else { 48 };
    println!(
        "autotune: training system (seed {}, smoke {}, beam {beam_width})",
        opts.seed, opts.smoke
    );
    let sys = TrainedSystem::prepare(&config).expect("system preparation");
    let id = ModelId::ALL[0];
    let run_opts = sys.run_options(id).expect("run options");
    // The trained classifier (accuracy axis) and the paper's engine
    // chain (cost axis) have different depths; each profile is the same
    // width *pattern* instantiated at both layer counts, keyed by its
    // label.
    let bnn_layers = sys.bnn.export_latent().len();
    let topo = FinnTopology::paper();
    let engine_count = topo.engines().len();

    let pick = |all: Vec<Profile>| -> Vec<Profile> {
        if opts.smoke {
            all.into_iter()
                .filter(|p| p.label == "1bit" || p.label == "a4w4")
                .collect()
        } else {
            all
        }
    };
    let profiles = pick(Profile::standard(engine_count));
    let acc_profiles = pick(Profile::standard(bnn_layers));

    // Accuracy per profile: the full pipeline accuracy with the
    // quantized stage swapped in (measured once per profile; it does
    // not depend on the folding).
    let mut accuracy_per_profile: Vec<(String, f64)> = Vec::new();
    for profile in &acc_profiles {
        let result = match &profile.precision {
            None => sys.execute(id, &run_opts).expect("1-bit baseline"),
            Some(precision) => {
                let quant =
                    QuantBnn::from_classifier(&sys.bnn, precision.clone()).expect("quantisation");
                sys.execute(
                    id,
                    &run_opts
                        .clone()
                        .with_precision(Precision::Quantized(Arc::new(quant))),
                )
                .expect("quantized execution")
            }
        };
        println!(
            "  profile {:>9}: accuracy {}",
            profile.label,
            pct(result.accuracy)
        );
        accuracy_per_profile.push((profile.label.clone(), result.accuracy));
    }
    let accuracy_of = |label: &str| -> f64 {
        accuracy_per_profile
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0.0, |(_, a)| *a)
    };

    // Search both memory models against their shipped sweeps.
    let device = Device::zc702();
    let mut gates = Vec::new();
    let mut pareto_entries = Vec::new();
    let mut front_size = 0usize;
    let mut points_searched = 0usize;
    for (memory_name, memory, partitioned) in [
        ("naive", MemoryModel::naive(), false),
        ("partitioned", MemoryModel::partitioned(), true),
    ] {
        let target = VerifyTarget::from_topology("autotune", &topo, device.clone())
            .with_memory(memory)
            .exploratory();
        let mut tuner = Autotuner::new(Oracle::new(&target)).with_beam_width(beam_width);
        let mut points = tuner.search(&profiles);
        for p in &mut points {
            p.accuracy = Some(accuracy_of(&p.profile));
        }
        points_searched += points.len();
        let front = pareto_front(&points);
        front_size += front.len();

        let shipped = mp_bench::figures::sweep(partitioned);
        gates.push(gate(memory_name, &shipped, &front));

        let stats = tuner.stats();
        println!(
            "{memory_name}: {} points searched, {} on the front ({} infeasible, {} dominated partials pruned)",
            points.len(),
            front.len(),
            stats.infeasible,
            stats.pruned_dominated
        );
        pareto_entries.extend(front.iter().map(|p| entry(p, memory_name)));
    }

    let mut table = TextTable::new(&[
        "memory",
        "profile",
        "total PE",
        "modeled img/s",
        "BRAM_18K",
        "LUTs",
        "fits",
        "accuracy",
    ]);
    for e in &pareto_entries {
        table.row(&[
            e.memory.clone(),
            e.profile.clone(),
            e.total_pe.to_string(),
            format!("{:.0}", e.modeled_fps),
            e.bram_18k.to_string(),
            e.luts.to_string(),
            if e.fits_device {
                "yes".into()
            } else {
                "NO".into()
            },
            pct(e.accuracy),
        ]);
    }
    table.print("autotuned Pareto front (throughput / accuracy / BRAM / LUT)");

    for g in &gates {
        println!(
            "gate[{}]: {}/{} shipped configs dominated or matched — {}",
            g.memory,
            g.dominated_or_matched,
            g.shipped_configs,
            if g.passed { "pass" } else { "FAIL" }
        );
        for f in &g.failures {
            eprintln!("  {f}");
        }
    }

    let all_passed = gates.iter().all(|g| g.passed) && !pareto_entries.is_empty();
    let record = AutotuneRecord {
        seed: opts.seed,
        smoke: opts.smoke,
        beam_width,
        profiles: profiles.iter().map(|p| p.label.clone()).collect(),
        accuracy_per_profile,
        gates,
        front_size,
        points_searched,
        pareto: pareto_entries,
    };
    write_record("autotune_pareto", &record);

    if !all_passed {
        eprintln!("autotune: domination gate failed");
        std::process::exit(1);
    }
}
