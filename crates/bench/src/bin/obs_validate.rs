//! Validates an exported observability report against the golden
//! schema: span/counter/histogram names must come from
//! `mp_obs::schema`, histogram bucket edges must match the fixed edges
//! for their metric family, and span/timestamp invariants must hold.
//!
//! ```sh
//! cargo run --release -p mp-bench --bin obs_validate               # results/obs_throughput.json
//! cargo run --release -p mp-bench --bin obs_validate -- <path>...  # explicit reports
//! ```
//!
//! Exits non-zero on the first invalid report — the CI smoke step runs
//! this right after the instrumented throughput bench.

use std::fs;
use std::path::PathBuf;

use mp_bench::results_dir;
use mp_obs::report::report_from_json;
use mp_obs::schema::validate_report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<PathBuf> = if args.is_empty() {
        vec![results_dir().join("obs_throughput.json")]
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };

    let mut failed = false;
    for path in &paths {
        let verdict = fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| report_from_json(&text))
            .and_then(|report| {
                validate_report(&report)?;
                Ok(report)
            });
        match verdict {
            Ok(report) => println!(
                "ok: {} (schema v{}, {} spans, {} counters, {} histograms, {} events)",
                path.display(),
                report.schema_version,
                report.spans.len(),
                report.counters.len(),
                report.histograms.len(),
                report.events.len(),
            ),
            Err(e) => {
                eprintln!("FAIL: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
