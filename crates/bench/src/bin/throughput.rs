//! Throughput of the data-parallel batched inference engine against the
//! live per-image reference paths, measured in the same process run:
//!
//! - **BNN**: [`HardwareBnn::infer_batch`] (the per-image
//!   `infer_image` loop) vs [`HardwareBnn::infer_batch_with`] (scratch
//!   reuse + unpacked ±1 first-stage weights + image sharding);
//! - **host**: a per-image [`Network::forward`] loop vs
//!   [`Network::infer_batch_with`] (workspace reuse + batched GEMM);
//! - **combined**: a per-image BNN → DMU → host loop vs the
//!   [`MultiPrecisionPipeline`] with both optimised engines;
//! - **obs**: the default (null-recorder) [`MultiPrecisionPipeline::execute`]
//!   vs a hand-rolled uninstrumented replica of the same batched
//!   computation, and vs a fully instrumented run with a
//!   [`SharedRecorder`] whose report is written to
//!   `results/obs_throughput.json`.
//!
//! - **overlap**: the serial two-phase [`Concurrency::Modeled`] executor
//!   (classify everything, then re-infer the flagged subset) vs the
//!   overlapped block-pipelined [`Concurrency::Threaded`] stage graph on
//!   the same interleaved workload, plus each executor's BNN-side
//!   throughput extracted from its recorded spans.
//!
//! Every optimised arm is asserted bit-identical to its reference before
//! timing is reported. Appends `results/throughput.json`. With
//! `--gate-overhead` the process exits non-zero if the null-recorder
//! overhead exceeds 3% (the CI smoke gate). With `--gate-overlap` it
//! exits non-zero if the overlapped executor is slower than serial
//! two-phase (beyond a small single-core scheduling tolerance), if its
//! BNN-side throughput falls below the modeled batched path, or if the
//! single-core BNN kernel speedup drops below its floor.

use std::time::Instant;

use serde::Serialize;

use mp_bench::{results_dir, write_record, CliOptions, TextTable};
use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use mp_core::dmu::Dmu;
use mp_core::{MultiPrecisionPipeline, PipelineTiming, RunOptions};
use mp_dataset::{Dataset, SynthSpec};
use mp_nn::train::Model;
use mp_nn::{Mode, Network};
use mp_obs::SharedRecorder;
use mp_tensor::init::TensorRng;
use mp_tensor::{nan_aware_argmax, Parallelism, Shape, Tensor};

/// The null-recorder overhead the CI gate tolerates.
const OVERHEAD_GATE: f64 = 0.03;

/// Wall-clock tolerance of the overlap gate: overlapped / serial must
/// stay at or below this. On a single core the overlapped executor
/// cannot beat serial two-phase (same total compute plus thread
/// switches), so the gate allows a small scheduling margin; with real
/// parallelism the ratio drops below 1.
const OVERLAP_WALL_TOLERANCE: f64 = 1.05;

/// Floor on the single-core BNN kernel speedup (batched fast path vs the
/// per-image reference), guarded by `--gate-overlap`: the widened u64×4
/// kernels must keep the batched path at or above this.
const BNN_SPEEDUP_GATE: f64 = 5.19;

/// One baseline/optimised pair, in images per second.
#[derive(Debug, Serialize)]
struct ArmRecord {
    baseline_img_per_s: f64,
    optimized_img_per_s: f64,
    speedup: f64,
}

impl ArmRecord {
    /// Builds the record from each side's best (minimum) rep time, the
    /// same estimator the obs arm uses: on a shared core the interleaved
    /// sums absorb scheduler noise on both sides, and min-over-reps is
    /// the standard way to reject it.
    fn new(n_images: usize, baseline_s: f64, optimized_s: f64) -> Self {
        let total = n_images as f64;
        let baseline = total / baseline_s.max(f64::MIN_POSITIVE);
        let optimized = total / optimized_s.max(f64::MIN_POSITIVE);
        Self {
            baseline_img_per_s: baseline,
            optimized_img_per_s: optimized,
            speedup: optimized / baseline,
        }
    }
}

#[derive(Debug, Serialize)]
struct ThroughputRecord {
    seed: u64,
    smoke: bool,
    images: usize,
    reps: usize,
    threads: usize,
    bnn: ArmRecord,
    host: ArmRecord,
    combined: ArmRecord,
    predictions_identical: bool,
    obs: ObsArmRecord,
    overlap: OverlapArmRecord,
}

/// Serial two-phase (Modeled) vs overlapped stage-graph (Threaded)
/// executor on the same workload. Wall times are min-over-reps; BNN-side
/// times come from recorded spans (pure block compute for the overlapped
/// executor, the whole BNN+DMU stage for the serial one).
#[derive(Debug, Serialize)]
struct OverlapArmRecord {
    serial_two_phase_s: f64,
    overlapped_s: f64,
    /// `overlapped / serial` wall-clock; at or below 1.0 the overlap wins.
    overlap_ratio: f64,
    serial_img_per_s: f64,
    overlapped_img_per_s: f64,
    /// BNN-side throughput of the overlapped executor (span-derived).
    overlapped_bnn_img_per_s: f64,
    /// BNN-side throughput of the serial executor's batched path.
    serial_bnn_img_per_s: f64,
    predictions_identical: bool,
}

/// Observability cost on the combined pipeline, in images per second.
/// Times are min-over-reps so scheduler noise cannot fake an overhead.
#[derive(Debug, Serialize)]
struct ObsArmRecord {
    uninstrumented_img_per_s: f64,
    null_recorder_img_per_s: f64,
    shared_recorder_img_per_s: f64,
    /// `(uninstrumented - null) / uninstrumented` throughput loss;
    /// negative values (null side faster) are clamped to zero.
    null_overhead_frac: f64,
    shared_overhead_frac: f64,
}

impl ObsArmRecord {
    fn new(n_images: usize, uninstrumented_s: f64, null_s: f64, shared_s: f64) -> Self {
        let rate = |secs: f64| n_images as f64 / secs.max(f64::MIN_POSITIVE);
        let overhead = |secs: f64| ((secs - uninstrumented_s) / uninstrumented_s).max(0.0);
        Self {
            uninstrumented_img_per_s: rate(uninstrumented_s),
            null_recorder_img_per_s: rate(null_s),
            shared_recorder_img_per_s: rate(shared_s),
            null_overhead_frac: overhead(null_s),
            shared_overhead_frac: overhead(shared_s),
        }
    }
}

/// The pipeline's batched computation hand-rolled from the public engine
/// APIs with no `RunOptions` / recorder plumbing at all — the
/// uninstrumented side of the observability-overhead comparison.
fn combined_uninstrumented(
    hw: &HardwareBnn,
    dmu: &Dmu,
    host: &Network,
    data: &Dataset,
    threshold: f32,
    par: Parallelism,
) -> Vec<usize> {
    let scores = hw.infer_batch_with(data.images(), par).expect("bnn batch");
    let mut preds = Network::argmax_rows(&scores).expect("argmax");
    let keep = dmu.estimate_batch(&scores, threshold).expect("dmu");
    let flagged: Vec<usize> = (0..data.len()).filter(|&i| !keep[i]).collect();
    for chunk in flagged.chunks(32) {
        let images: Vec<Tensor> = chunk
            .iter()
            .map(|&i| data.images().batch_item(i).expect("image"))
            .collect();
        let batch = Tensor::stack_batch(&images).expect("stack");
        let scores = host.infer_batch_with(&batch, par).expect("host batch");
        for (&i, p) in chunk
            .iter()
            .zip(Network::argmax_rows(&scores).expect("argmax"))
        {
            preds[i] = p;
        }
    }
    preds
}

/// The pre-optimisation combined pipeline: one image at a time through
/// BNN → DMU, with a per-image host rerun for every flagged image.
fn combined_baseline(
    hw: &HardwareBnn,
    dmu: &Dmu,
    host: &mut Network,
    data: &Dataset,
    threshold: f32,
) -> Vec<usize> {
    let n = data.len();
    let mut preds = Vec::with_capacity(n);
    for i in 0..n {
        let img = data.images().batch_item(i).expect("image");
        let scores: Vec<f32> = hw
            .infer_image(&img)
            .expect("bnn scores")
            .into_iter()
            .map(|s| s as f32)
            .collect();
        let pred = nan_aware_argmax(&scores).expect("comparable scores");
        if dmu.predict(&scores) >= threshold {
            preds.push(pred);
        } else {
            let s = host.forward(&img).expect("host scores");
            preds.push(Network::argmax_rows(&s).expect("argmax")[0]);
        }
    }
    preds
}

fn main() {
    let opts_cli = CliOptions::parse();
    let (n_images, reps) = if opts_cli.smoke { (200, 20) } else { (600, 80) };
    let par = Parallelism::available();
    let threshold = 0.5f32;

    // A trained-shape (not trained-to-accuracy) system: throughput does
    // not depend on the weight values, only on the topology.
    let mut rng = TensorRng::seed_from(opts_cli.seed);
    let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).expect("bnn");
    for _ in 0..3 {
        let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
        bnn.forward_mode(&x, Mode::Train).expect("bn stats");
    }
    let hw = HardwareBnn::from_classifier(&bnn).expect("hardware export");
    let dmu = Dmu::with_weights(vec![0.1; 10], 0.0);
    let data = SynthSpec::tiny().generate(n_images).expect("dataset");
    let mut host = Network::builder(Shape::nchw(1, 3, 8, 8))
        .conv2d(16, 3, 1, 1, &mut rng)
        .expect("conv1")
        .batch_norm()
        .expect("bn")
        .relu()
        .max_pool(2)
        .expect("pool")
        .conv2d(16, 3, 1, 1, &mut rng)
        .expect("conv2")
        .relu()
        .flatten()
        .linear(10, &mut rng)
        .expect("fc")
        .softmax()
        .build();

    // --- BNN arm ---
    let bnn_ref = hw.infer_batch(data.images()).expect("bnn reference");
    let bnn_opt = hw
        .infer_batch_with(data.images(), par)
        .expect("bnn optimized");
    assert_eq!(
        bnn_ref.as_slice(),
        bnn_opt.as_slice(),
        "optimized BNN path must be bit-identical"
    );
    // Baseline and optimised reps are interleaved in every arm so clock
    // drift and scheduler noise land on both sides equally; each side
    // reports its best rep.
    let (mut bnn_base_s, mut bnn_opt_s) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(hw.infer_batch(data.images()).expect("bnn reference"));
        bnn_base_s = bnn_base_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(
            hw.infer_batch_with(data.images(), par)
                .expect("bnn optimized"),
        );
        bnn_opt_s = bnn_opt_s.min(t.elapsed().as_secs_f64());
    }

    // --- host arm ---
    let mut host_ref_scores: Vec<f32> = Vec::new();
    for i in 0..n_images {
        let img = data.images().batch_item(i).expect("image");
        host_ref_scores.extend(host.forward(&img).expect("host forward").iter());
    }
    let host_opt = host
        .infer_batch_with(data.images(), par)
        .expect("host optimized");
    assert_eq!(
        host_opt.as_slice(),
        &host_ref_scores[..],
        "optimized host path must be bit-identical"
    );
    let (mut host_base_s, mut host_opt_s) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        for i in 0..n_images {
            let img = data.images().batch_item(i).expect("image");
            std::hint::black_box(host.forward(&img).expect("host forward"));
        }
        host_base_s = host_base_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(
            host.infer_batch_with(data.images(), par)
                .expect("host optimized"),
        );
        host_opt_s = host_opt_s.min(t.elapsed().as_secs_f64());
    }

    // --- combined arm ---
    let timing = PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 32);
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, threshold).with_parallelism(par);
    let opts = RunOptions::new(timing).with_host_accuracy(0.5);
    let base_preds = combined_baseline(&hw, &dmu, &mut host, &data, threshold);
    let opt_result = pipeline
        .execute(&host, &data, &opts)
        .expect("combined optimized");
    let predictions_identical = base_preds == opt_result.predictions;
    assert!(
        predictions_identical,
        "optimized pipeline must match the per-image reference predictions"
    );
    let (mut combined_base_s, mut combined_opt_s) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(combined_baseline(&hw, &dmu, &mut host, &data, threshold));
        combined_base_s = combined_base_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(pipeline.execute(&host, &data, &opts).expect("combined"));
        combined_opt_s = combined_opt_s.min(t.elapsed().as_secs_f64());
    }

    // --- obs arm: what does instrumentation cost? ---
    // The replica must agree with the pipeline before its time means
    // anything.
    let replica = combined_uninstrumented(&hw, &dmu, &host, &data, threshold, par);
    assert_eq!(
        replica, opt_result.predictions,
        "uninstrumented replica must match the pipeline predictions"
    );
    let rec = SharedRecorder::new();
    let obs_opts = opts.clone().with_recorder(&rec);
    let obs_result = pipeline
        .execute(&host, &data, &obs_opts)
        .expect("instrumented");
    assert_eq!(
        obs_result.predictions, opt_result.predictions,
        "recording must be passive"
    );
    let (mut raw_min, mut null_min, mut shared_min) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(combined_uninstrumented(
            &hw, &dmu, &host, &data, threshold, par,
        ));
        raw_min = raw_min.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(pipeline.execute(&host, &data, &opts).expect("null"));
        null_min = null_min.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(pipeline.execute(&host, &data, &obs_opts).expect("shared"));
        shared_min = shared_min.min(t.elapsed().as_secs_f64());
    }
    let obs_arm = ObsArmRecord::new(n_images, raw_min, null_min, shared_min);

    // --- overlap arm: serial two-phase vs the overlapped stage graph ---
    let overlap_opts = opts.clone().threaded();
    let threaded_result = pipeline
        .execute(&host, &data, &overlap_opts)
        .expect("threaded");
    let overlap_identical = threaded_result.predictions == opt_result.predictions
        && threaded_result.flagged == opt_result.flagged;
    assert!(
        overlap_identical,
        "overlapped executor must be bit-identical to the serial two-phase executor"
    );
    let (mut serial_min, mut overlap_min) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(pipeline.execute(&host, &data, &opts).expect("serial"));
        serial_min = serial_min.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(
            pipeline
                .execute(&host, &data, &overlap_opts)
                .expect("overlapped"),
        );
        overlap_min = overlap_min.min(t.elapsed().as_secs_f64());
    }
    // BNN-side throughput from recorded spans: the overlapped executor's
    // block spans are pure BNN compute, the serial executor's stage span
    // covers its batched BNN pass plus DMU flagging — so matching or
    // beating it shows the threaded producer really runs the batched
    // fast path.
    let (mut serial_bnn_s, mut overlap_bnn_s) = (f64::MAX, f64::MAX);
    for _ in 0..3 {
        let rec = SharedRecorder::new();
        pipeline
            .execute(&host, &data, &opts.clone().with_recorder(&rec))
            .expect("serial instrumented");
        if let Some(s) = rec.report().span(mp_obs::schema::SPAN_PIPELINE_BNN_STAGE) {
            serial_bnn_s = serial_bnn_s.min(s.total_s);
        }
        let rec = SharedRecorder::new();
        pipeline
            .execute(&host, &data, &overlap_opts.clone().with_recorder(&rec))
            .expect("overlapped instrumented");
        if let Some(s) = rec.report().span(mp_obs::schema::SPAN_PIPELINE_BNN_BLOCK) {
            overlap_bnn_s = overlap_bnn_s.min(s.total_s);
        }
    }
    let rate = |secs: f64| n_images as f64 / secs.max(f64::MIN_POSITIVE);
    let overlap_arm = OverlapArmRecord {
        serial_two_phase_s: serial_min,
        overlapped_s: overlap_min,
        overlap_ratio: overlap_min / serial_min.max(f64::MIN_POSITIVE),
        serial_img_per_s: rate(serial_min),
        overlapped_img_per_s: rate(overlap_min),
        overlapped_bnn_img_per_s: rate(overlap_bnn_s),
        serial_bnn_img_per_s: rate(serial_bnn_s),
        predictions_identical: overlap_identical,
    };

    let report = rec.report();
    mp_obs::schema::validate_report(&report).expect("obs report validates");
    match mp_obs::report::write_report(&report, &results_dir(), "throughput") {
        Ok(path) => println!("(obs report written to {})", path.display()),
        Err(e) => eprintln!("warning: cannot write obs report: {e}"),
    }

    let record = ThroughputRecord {
        seed: opts_cli.seed,
        smoke: opts_cli.smoke,
        images: n_images,
        reps,
        threads: par.threads(),
        bnn: ArmRecord::new(n_images, bnn_base_s, bnn_opt_s),
        host: ArmRecord::new(n_images, host_base_s, host_opt_s),
        combined: ArmRecord::new(n_images, combined_base_s, combined_opt_s),
        predictions_identical,
        obs: obs_arm,
        overlap: overlap_arm,
    };

    let mut table = TextTable::new(&["arm", "baseline img/s", "optimized img/s", "speedup"]);
    for (name, arm) in [
        ("bnn", &record.bnn),
        ("host", &record.host),
        ("combined", &record.combined),
    ] {
        table.row(&[
            name.into(),
            format!("{:.1}", arm.baseline_img_per_s),
            format!("{:.1}", arm.optimized_img_per_s),
            format!("{:.2}x", arm.speedup),
        ]);
    }
    table.print(&format!(
        "batched inference throughput ({n_images} images x {reps} reps, {} thread(s))",
        par.threads()
    ));

    let mut obs_table = TextTable::new(&["pipeline variant", "img/s (min-rep)", "overhead"]);
    obs_table.row(&[
        "uninstrumented replica".into(),
        format!("{:.1}", record.obs.uninstrumented_img_per_s),
        "—".into(),
    ]);
    obs_table.row(&[
        "execute + NullRecorder".into(),
        format!("{:.1}", record.obs.null_recorder_img_per_s),
        format!("{:.2}%", 100.0 * record.obs.null_overhead_frac),
    ]);
    obs_table.row(&[
        "execute + SharedRecorder".into(),
        format!("{:.1}", record.obs.shared_recorder_img_per_s),
        format!("{:.2}%", 100.0 * record.obs.shared_overhead_frac),
    ]);
    obs_table.print("observability overhead (combined pipeline)");

    let mut overlap_table = TextTable::new(&["executor", "wall img/s", "bnn-side img/s"]);
    overlap_table.row(&[
        "serial two-phase (Modeled)".into(),
        format!("{:.1}", record.overlap.serial_img_per_s),
        format!("{:.1}", record.overlap.serial_bnn_img_per_s),
    ]);
    overlap_table.row(&[
        "overlapped stage graph (Threaded)".into(),
        format!("{:.1}", record.overlap.overlapped_img_per_s),
        format!("{:.1}", record.overlap.overlapped_bnn_img_per_s),
    ]);
    overlap_table.print(&format!(
        "overlapped executor (wall ratio {:.3}, identical: {})",
        record.overlap.overlap_ratio, record.overlap.predictions_identical
    ));
    write_record("throughput", &record);

    if opts_cli.gate_overhead && record.obs.null_overhead_frac > OVERHEAD_GATE {
        eprintln!(
            "FAIL: NullRecorder overhead {:.2}% exceeds the {:.0}% gate",
            100.0 * record.obs.null_overhead_frac,
            100.0 * OVERHEAD_GATE
        );
        std::process::exit(1);
    }
    if opts_cli.gate_overlap {
        let mut failed = false;
        if record.overlap.overlap_ratio > OVERLAP_WALL_TOLERANCE {
            eprintln!(
                "FAIL: overlapped wall-clock is {:.3}x serial two-phase (tolerance {:.2}x)",
                record.overlap.overlap_ratio, OVERLAP_WALL_TOLERANCE
            );
            failed = true;
        }
        if record.overlap.overlapped_bnn_img_per_s < record.overlap.serial_bnn_img_per_s {
            eprintln!(
                "FAIL: overlapped BNN-side throughput {:.1} img/s is below the serial batched path {:.1} img/s",
                record.overlap.overlapped_bnn_img_per_s, record.overlap.serial_bnn_img_per_s
            );
            failed = true;
        }
        if record.bnn.speedup < BNN_SPEEDUP_GATE {
            eprintln!(
                "FAIL: BNN single-core speedup {:.2}x is below the {BNN_SPEEDUP_GATE:.2}x floor",
                record.bnn.speedup
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
