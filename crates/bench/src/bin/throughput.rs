//! Throughput of the data-parallel batched inference engine against the
//! live per-image reference paths, measured in the same process run:
//!
//! - **BNN**: [`HardwareBnn::infer_batch`] (the per-image
//!   `infer_image` loop) vs [`HardwareBnn::infer_batch_with`] (scratch
//!   reuse + unpacked ±1 first-stage weights + image sharding);
//! - **host**: a per-image [`Network::forward`] loop vs
//!   [`Network::infer_batch_with`] (workspace reuse + batched GEMM);
//! - **combined**: a per-image BNN → DMU → host loop vs the
//!   [`MultiPrecisionPipeline`] with both optimised engines.
//!
//! Every optimised arm is asserted bit-identical to its reference before
//! timing is reported. Appends `results/throughput.json`.

use std::time::Instant;

use serde::Serialize;

use mp_bench::{write_record, CliOptions, TextTable};
use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use mp_core::dmu::Dmu;
use mp_core::{MultiPrecisionPipeline, PipelineTiming};
use mp_dataset::{Dataset, SynthSpec};
use mp_nn::train::Model;
use mp_nn::{Mode, Network};
use mp_tensor::init::TensorRng;
use mp_tensor::{nan_aware_argmax, Parallelism, Shape};

/// One baseline/optimised pair, in images per second.
#[derive(Debug, Serialize)]
struct ArmRecord {
    baseline_img_per_s: f64,
    optimized_img_per_s: f64,
    speedup: f64,
}

impl ArmRecord {
    fn new(n_images: usize, reps: usize, baseline_s: f64, optimized_s: f64) -> Self {
        let total = (n_images * reps) as f64;
        let baseline = total / baseline_s.max(f64::MIN_POSITIVE);
        let optimized = total / optimized_s.max(f64::MIN_POSITIVE);
        Self {
            baseline_img_per_s: baseline,
            optimized_img_per_s: optimized,
            speedup: optimized / baseline,
        }
    }
}

#[derive(Debug, Serialize)]
struct ThroughputRecord {
    seed: u64,
    smoke: bool,
    images: usize,
    reps: usize,
    threads: usize,
    bnn: ArmRecord,
    host: ArmRecord,
    combined: ArmRecord,
    predictions_identical: bool,
}

/// The pre-optimisation combined pipeline: one image at a time through
/// BNN → DMU, with a per-image host rerun for every flagged image.
fn combined_baseline(
    hw: &HardwareBnn,
    dmu: &Dmu,
    host: &mut Network,
    data: &Dataset,
    threshold: f32,
) -> Vec<usize> {
    let n = data.len();
    let mut preds = Vec::with_capacity(n);
    for i in 0..n {
        let img = data.images().batch_item(i).expect("image");
        let scores: Vec<f32> = hw
            .infer_image(&img)
            .expect("bnn scores")
            .into_iter()
            .map(|s| s as f32)
            .collect();
        let pred = nan_aware_argmax(&scores).expect("comparable scores");
        if dmu.predict(&scores) >= threshold {
            preds.push(pred);
        } else {
            let s = host.forward(&img).expect("host scores");
            preds.push(Network::argmax_rows(&s).expect("argmax")[0]);
        }
    }
    preds
}

fn main() {
    let opts = CliOptions::parse();
    let (n_images, reps) = if opts.smoke { (200, 20) } else { (600, 80) };
    let par = Parallelism::available();
    let threshold = 0.5f32;

    // A trained-shape (not trained-to-accuracy) system: throughput does
    // not depend on the weight values, only on the topology.
    let mut rng = TensorRng::seed_from(opts.seed);
    let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).expect("bnn");
    for _ in 0..3 {
        let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
        bnn.forward_mode(&x, Mode::Train).expect("bn stats");
    }
    let hw = HardwareBnn::from_classifier(&bnn).expect("hardware export");
    let dmu = Dmu::with_weights(vec![0.1; 10], 0.0);
    let data = SynthSpec::tiny().generate(n_images).expect("dataset");
    let mut host = Network::builder(Shape::nchw(1, 3, 8, 8))
        .conv2d(16, 3, 1, 1, &mut rng)
        .expect("conv1")
        .batch_norm()
        .expect("bn")
        .relu()
        .max_pool(2)
        .expect("pool")
        .conv2d(16, 3, 1, 1, &mut rng)
        .expect("conv2")
        .relu()
        .flatten()
        .linear(10, &mut rng)
        .expect("fc")
        .softmax()
        .build();

    // --- BNN arm ---
    let bnn_ref = hw.infer_batch(data.images()).expect("bnn reference");
    let bnn_opt = hw
        .infer_batch_with(data.images(), par)
        .expect("bnn optimized");
    assert_eq!(
        bnn_ref.as_slice(),
        bnn_opt.as_slice(),
        "optimized BNN path must be bit-identical"
    );
    // Baseline and optimised reps are interleaved in every arm so clock
    // drift and scheduler noise land on both sides equally.
    let (mut bnn_base_s, mut bnn_opt_s) = (0.0f64, 0.0f64);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(hw.infer_batch(data.images()).expect("bnn reference"));
        bnn_base_s += t.elapsed().as_secs_f64();
        let t = Instant::now();
        std::hint::black_box(
            hw.infer_batch_with(data.images(), par)
                .expect("bnn optimized"),
        );
        bnn_opt_s += t.elapsed().as_secs_f64();
    }

    // --- host arm ---
    let mut host_ref_scores: Vec<f32> = Vec::new();
    for i in 0..n_images {
        let img = data.images().batch_item(i).expect("image");
        host_ref_scores.extend(host.forward(&img).expect("host forward").iter());
    }
    let host_opt = host
        .infer_batch_with(data.images(), par)
        .expect("host optimized");
    assert_eq!(
        host_opt.as_slice(),
        &host_ref_scores[..],
        "optimized host path must be bit-identical"
    );
    let (mut host_base_s, mut host_opt_s) = (0.0f64, 0.0f64);
    for _ in 0..reps {
        let t = Instant::now();
        for i in 0..n_images {
            let img = data.images().batch_item(i).expect("image");
            std::hint::black_box(host.forward(&img).expect("host forward"));
        }
        host_base_s += t.elapsed().as_secs_f64();
        let t = Instant::now();
        std::hint::black_box(
            host.infer_batch_with(data.images(), par)
                .expect("host optimized"),
        );
        host_opt_s += t.elapsed().as_secs_f64();
    }

    // --- combined arm ---
    let timing = PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 32);
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, threshold).with_parallelism(par);
    let base_preds = combined_baseline(&hw, &dmu, &mut host, &data, threshold);
    let opt_result = pipeline
        .run(&host, &data, &timing, 0.5)
        .expect("combined optimized");
    let predictions_identical = base_preds == opt_result.predictions;
    assert!(
        predictions_identical,
        "optimized pipeline must match the per-image reference predictions"
    );
    let (mut combined_base_s, mut combined_opt_s) = (0.0f64, 0.0f64);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(combined_baseline(&hw, &dmu, &mut host, &data, threshold));
        combined_base_s += t.elapsed().as_secs_f64();
        let t = Instant::now();
        std::hint::black_box(pipeline.run(&host, &data, &timing, 0.5).expect("combined"));
        combined_opt_s += t.elapsed().as_secs_f64();
    }

    let record = ThroughputRecord {
        seed: opts.seed,
        smoke: opts.smoke,
        images: n_images,
        reps,
        threads: par.threads(),
        bnn: ArmRecord::new(n_images, reps, bnn_base_s, bnn_opt_s),
        host: ArmRecord::new(n_images, reps, host_base_s, host_opt_s),
        combined: ArmRecord::new(n_images, reps, combined_base_s, combined_opt_s),
        predictions_identical,
    };

    let mut table = TextTable::new(&["arm", "baseline img/s", "optimized img/s", "speedup"]);
    for (name, arm) in [
        ("bnn", &record.bnn),
        ("host", &record.host),
        ("combined", &record.combined),
    ] {
        table.row(&[
            name.into(),
            format!("{:.1}", arm.baseline_img_per_s),
            format!("{:.1}", arm.optimized_img_per_s),
            format!("{:.2}x", arm.speedup),
        ]);
    }
    table.print(&format!(
        "batched inference throughput ({n_images} images x {reps} reps, {} thread(s))",
        par.threads()
    ));
    write_record("throughput", &record);
}
