//! Fleet load generator: drives the `mp-fleet` virtual-time cluster
//! simulator — FPGA-profile and host-only replicas behind a
//! health-aware router — through Poisson, burst and diurnal traces with
//! replica-kill, slowdown and recovery schedules, reporting per-scenario
//! latency percentiles, shed/redirect/hedge accounting and the
//! failure/recovery timeline.
//!
//! The sweep doubles as a regression gate for the fleet's
//! fault-tolerance contract:
//!
//! - **exactly-once**: served ∪ shed partitions every offered trace —
//!   no request is lost or double-served, even across crashes, hedges
//!   and re-routes;
//! - **functional equivalence**: every served prediction is
//!   bit-identical to the unfaulted single-replica run that built the
//!   prediction cache;
//! - **no gratuitous shedding**: a healthy fleet whose capacity exceeds
//!   the offered load sheds nothing;
//! - **bounded degradation**: killing one replica keeps p99 within a
//!   bounded factor of the healthy p99 (and the orphaned work is
//!   redirected, not dropped);
//! - **determinism**: the same seed replays every scenario byte for
//!   byte.

#![deny(deprecated)]

use mp_bench::{CliOptions, TextTable};
use mp_core::experiment::TrainedSystem;
use mp_core::fault::FleetFaultPlan;
use mp_core::{MultiPrecisionPipeline, PipelineTiming, RunOptions};
use mp_fleet::{
    FleetConfig, FleetReport, FleetSim, PredictionCache, ReplicaSpec, RoutingPolicy, TimelineKind,
};
use mp_host::zoo::ModelId;
use mp_obs::{schema, SharedRecorder, NULL_RECORDER};
use mp_serve::Request;
use serde::Serialize;

/// SplitMix64-style hash of `(seed, index)` to a unit float — the same
/// construction `serve_loadgen` and `StreamFaults` use.
fn unit_hash(seed: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic open-loop trace with a (possibly time-varying) rate:
/// exponential inter-arrival gaps at `rate_at(t)`, images cycling
/// through the store.
fn varying_trace(
    seed: u64,
    n: usize,
    store_len: usize,
    rate_at: impl Fn(f64) -> f64,
) -> Vec<Request> {
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            let u = unit_hash(seed, i as u64);
            t += -(1.0 - u).max(1e-12).ln() / rate_at(t).max(1e-9);
            Request::new(i as u64, i % store_len, t)
        })
        .collect()
}

/// One scenario's outcome for the JSON record.
#[derive(Serialize)]
struct ScenarioOut {
    name: String,
    policy: String,
    offered: usize,
    served: usize,
    shed: usize,
    shed_rate: f64,
    redirected: usize,
    hedges: usize,
    hedge_wins: usize,
    duplicates_discarded: usize,
    breaker_opens: usize,
    breaker_closes: usize,
    crashes: usize,
    recoveries: usize,
    p50_s: f64,
    p95_s: f64,
    p99_s: f64,
    mean_latency_s: f64,
    throughput_rps: f64,
    horizon_s: f64,
}

#[derive(Serialize)]
struct Record {
    seed: u64,
    model: String,
    requests_per_scenario: usize,
    replicas: Vec<String>,
    cap_fpga_rps: f64,
    cap_host_rps: f64,
    aggregate_capacity_rps: f64,
    deadline_s: f64,
    healthy_p99_s: f64,
    one_killed_p99_s: f64,
    killed_over_healthy_p99: f64,
    p99_degradation_bound: f64,
    healthy_counters: Vec<(String, u64)>,
    scenarios: Vec<ScenarioOut>,
}

/// Gate: served ∪ shed must partition the offered ids exactly.
fn assert_exactly_once(name: &str, report: &FleetReport, trace: &[Request]) {
    assert_eq!(
        report.served() + report.shed.len(),
        trace.len(),
        "[{name}] served ({}) + shed ({}) must equal offered ({})",
        report.served(),
        report.shed.len(),
        trace.len()
    );
    let mut ids: Vec<u64> = report
        .completions
        .iter()
        .map(|c| c.id)
        .chain(report.shed.iter().copied())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        trace.len(),
        "[{name}] no id may be served or shed twice"
    );
    assert!(
        ids.iter().zip(trace.iter()).all(|(&a, b)| a == b.id),
        "[{name}] served ∪ shed must be exactly the offered ids"
    );
}

/// Gate: every served prediction matches the unfaulted single-replica
/// run the cache was built from.
fn assert_predictions(name: &str, report: &FleetReport, cache: &PredictionCache) {
    for c in &report.completions {
        assert_eq!(
            c.prediction,
            cache.prediction(c.image),
            "[{name}] request {} image {}: fleet prediction diverged from \
             the single-replica run",
            c.id,
            c.image
        );
    }
}

fn scenario_out(name: &str, policy: RoutingPolicy, report: &FleetReport) -> ScenarioOut {
    ScenarioOut {
        name: name.to_string(),
        policy: format!("{policy:?}"),
        offered: report.requests,
        served: report.served(),
        shed: report.shed.len(),
        shed_rate: report.shed_rate(),
        redirected: report.redirected,
        hedges: report.hedges,
        hedge_wins: report.hedge_wins,
        duplicates_discarded: report.duplicates_discarded,
        breaker_opens: report.replicas.iter().map(|r| r.breaker_opens).sum(),
        breaker_closes: report.replicas.iter().map(|r| r.breaker_closes).sum(),
        crashes: report.replicas.iter().map(|r| r.crashes).sum(),
        recoveries: report.replicas.iter().map(|r| r.recoveries).sum(),
        p50_s: report.percentile_latency_s(50.0).unwrap_or(0.0),
        p95_s: report.percentile_latency_s(95.0).unwrap_or(0.0),
        p99_s: report.percentile_latency_s(99.0).unwrap_or(0.0),
        mean_latency_s: report.mean_latency_s().unwrap_or(0.0),
        throughput_rps: report.throughput_rps(),
        horizon_s: report.horizon_s,
    }
}

fn main() {
    let opts = CliOptions::parse();
    let config = opts.experiment_config();
    eprintln!("training system (seed {})…", opts.seed);
    let system = TrainedSystem::prepare(&config).expect("system trains");
    let id = ModelId::A;
    let paper = system.paper_timing(id).expect("paper timing");
    let timing = PipelineTiming::new(paper.t_bnn_img_s, paper.t_fp_img_s, 4);
    let run_opts = RunOptions::new(timing).with_host_accuracy(system.host_accuracy(id));
    let pipeline = MultiPrecisionPipeline::new(&system.hw, &system.dmu, system.config.threshold);
    let store = &system.test;
    let host = system.host(id);

    // One real run over the store: its predictions and flagged mask are
    // the functional ground truth every fleet scenario must reproduce,
    // and its modelled throughput prices one FPGA replica.
    let baseline = pipeline
        .execute(host, store, &run_opts)
        .expect("baseline single-replica run");
    let cache = PredictionCache::from_result(&baseline).expect("prediction cache");
    let cap_fpga = baseline.modeled_images_per_sec;
    let flag_rate =
        baseline.flagged.iter().filter(|&&f| f).count() as f64 / baseline.flagged.len() as f64;
    // A host-only replica pays host speed in the first stage too, plus
    // the same flagged re-inference tail.
    let cap_host = 1.0 / (paper.t_fp_img_s * (1.0 + flag_rate));
    let aggregate = 2.0 * cap_fpga + cap_host;

    // Fleet: two FPGA-profile replicas plus one host-only spill tier —
    // the paper's heterogeneous deployment in miniature.
    let max_batch = 16usize;
    let max_delay_s = 2.0 / cap_fpga;
    let queue_capacity = 512usize;
    let specs = vec![
        ReplicaSpec::fpga("fpga0", timing, max_batch, max_delay_s, queue_capacity)
            .expect("fpga0 spec"),
        ReplicaSpec::fpga("fpga1", timing, max_batch, max_delay_s, queue_capacity)
            .expect("fpga1 spec"),
        ReplicaSpec::host_only(
            "host0",
            paper.t_fp_img_s,
            max_batch,
            max_delay_s,
            queue_capacity,
        )
        .expect("host0 spec"),
    ];
    let replica_names: Vec<String> = specs.iter().map(|s| s.name().to_string()).collect();

    let n_req = if opts.smoke { 500 } else { 250_000 };
    let offered_rate = 0.5 * aggregate;
    // Losing one FPGA replica must still leave headroom, so the
    // one-killed scenario degrades latency without losing work.
    assert!(
        offered_rate < cap_fpga + cap_host,
        "survivor capacity ({:.1} rps) must exceed offered load ({:.1} rps)",
        cap_fpga + cap_host,
        offered_rate
    );

    // Pass 1: measure the healthy p99 under a non-binding deadline, then
    // derive the real deadline (and hedge trigger) from it.
    let probe_cfg = FleetConfig::new(RoutingPolicy::JoinShortestQueue).with_deadline_s(1e3);
    let probe_sim = FleetSim::new(specs.clone(), probe_cfg, cache.clone()).expect("probe fleet");
    let healthy_trace = varying_trace(opts.seed, n_req, store.len(), |_| offered_rate);
    let probe = probe_sim
        .run(&healthy_trace, &FleetFaultPlan::none(), &NULL_RECORDER)
        .expect("healthy probe run");
    let healthy_p99 = probe.percentile_latency_s(99.0).expect("served requests");
    let deadline_s = (3.0 * healthy_p99).max(1e-4);
    let breaker = mp_fleet::BreakerConfig::try_new(8, 2.0 * deadline_s).expect("breaker config");
    let base_cfg = |policy: RoutingPolicy| {
        FleetConfig::new(policy)
            .with_deadline_s(deadline_s)
            .with_breaker(breaker)
    };
    let horizon = healthy_trace.last().expect("non-empty trace").arrival_s;

    let mut table = TextTable::new(&[
        "scenario",
        "offered",
        "served",
        "shed",
        "redir",
        "hedge",
        "p50 (ms)",
        "p99 (ms)",
        "thru req/s",
        "faults",
    ]);
    let mut scenarios = Vec::new();
    let push = |name: &str,
                policy: RoutingPolicy,
                report: &FleetReport,
                table: &mut TextTable,
                scenarios: &mut Vec<ScenarioOut>| {
        let s = scenario_out(name, policy, report);
        table.row(&[
            s.name.clone(),
            format!("{}", s.offered),
            format!("{}", s.served),
            format!("{}", s.shed),
            format!("{}", s.redirected),
            format!("{}", s.hedges),
            format!("{:.3}", 1e3 * s.p50_s),
            format!("{:.3}", 1e3 * s.p99_s),
            format!("{:.1}", s.throughput_rps),
            format!("{}c/{}o", s.crashes, s.breaker_opens),
        ]);
        scenarios.push(s);
    };

    // Scenario 1: healthy Poisson at half the aggregate capacity,
    // join-shortest-queue, recorded against the stable `fleet.*` schema.
    let rec = SharedRecorder::new();
    let healthy_sim = FleetSim::new(
        specs.clone(),
        base_cfg(RoutingPolicy::JoinShortestQueue),
        cache.clone(),
    )
    .expect("healthy fleet");
    let healthy = healthy_sim
        .run(&healthy_trace, &FleetFaultPlan::none(), &rec)
        .expect("healthy run");
    let healthy_replay = healthy_sim
        .run(&healthy_trace, &FleetFaultPlan::none(), &NULL_RECORDER)
        .expect("healthy replay");
    assert_eq!(
        healthy, healthy_replay,
        "healthy run must replay byte-identically"
    );
    assert_exactly_once("healthy", &healthy, &healthy_trace);
    assert_predictions("healthy", &healthy, &cache);
    assert!(
        healthy.shed.is_empty(),
        "a healthy fleet with {:.1} rps of capacity must not shed at {:.1} rps",
        aggregate,
        offered_rate
    );
    let obs = rec.report();
    let ctr = |name: &str| {
        obs.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(
        ctr(schema::CTR_FLEET_REQUESTS) as usize,
        healthy.requests,
        "fleet.requests counter must match the report"
    );
    assert_eq!(
        ctr(schema::CTR_FLEET_SERVED) as usize,
        healthy.served(),
        "fleet.served counter must match the report"
    );
    assert_eq!(ctr(schema::CTR_FLEET_SHED), 0);
    let healthy_counters: Vec<(String, u64)> = obs
        .counters
        .iter()
        .filter(|c| c.name.starts_with("fleet."))
        .map(|c| (c.name.clone(), c.value))
        .collect();
    push(
        "healthy",
        RoutingPolicy::JoinShortestQueue,
        &healthy,
        &mut table,
        &mut scenarios,
    );

    // Scenario 2: the same trace with one FPGA replica killed mid-run
    // and recovered later. Orphans must be redirected, latency must
    // degrade within a bounded factor, and the replica must serve again.
    let kill_plan = FleetFaultPlan::seeded(opts.seed)
        .with_crash(0, 0.25 * horizon)
        .with_recovery(0, 0.65 * horizon);
    let killed = healthy_sim
        .run(&healthy_trace, &kill_plan, &NULL_RECORDER)
        .expect("one-killed run");
    let killed_replay = healthy_sim
        .run(&healthy_trace, &kill_plan, &NULL_RECORDER)
        .expect("one-killed replay");
    assert_eq!(
        killed, killed_replay,
        "one-killed run must replay byte-identically"
    );
    assert_exactly_once("one_killed", &killed, &healthy_trace);
    assert_predictions("one_killed", &killed, &cache);
    assert!(
        killed.redirected > 0,
        "the crash must orphan work that gets redirected"
    );
    assert!(
        killed
            .timeline
            .iter()
            .any(|e| e.kind == TimelineKind::Crash && e.replica == 0),
        "timeline must record the crash"
    );
    assert!(
        killed
            .timeline
            .iter()
            .any(|e| e.kind == TimelineKind::Recover && e.replica == 0),
        "timeline must record the recovery"
    );
    assert!(
        killed
            .completions
            .iter()
            .any(|c| c.replica == 0 && c.dispatch_s > 0.65 * horizon),
        "the recovered replica must take work again"
    );
    assert!(
        killed.shed_rate() <= 0.01,
        "with survivor capacity above offered load, the one-killed run \
         must shed at most 1% (shed {:.3}%)",
        100.0 * killed.shed_rate()
    );
    let killed_p99 = killed.percentile_latency_s(99.0).expect("served requests");
    let p99_bound = 30.0;
    assert!(
        killed_p99 <= p99_bound * healthy_p99,
        "one-killed p99 ({killed_p99:.6}s) must stay within {p99_bound}x \
         of healthy p99 ({healthy_p99:.6}s)"
    );
    push(
        "one_killed",
        RoutingPolicy::JoinShortestQueue,
        &killed,
        &mut table,
        &mut scenarios,
    );

    // Scenario 3: a 4x burst for a tenth of the horizon under the
    // precision-aware policy — the FPGA tier saturates and spills to the
    // host replica; shedding is allowed but everything stays accounted.
    let burst_trace = varying_trace(opts.seed ^ 0xB0B5, n_req, store.len(), |t| {
        if (0.4 * horizon..0.5 * horizon).contains(&t) {
            4.0 * 0.4 * aggregate
        } else {
            0.4 * aggregate
        }
    });
    let burst_sim = FleetSim::new(
        specs.clone(),
        base_cfg(RoutingPolicy::PrecisionAware),
        cache.clone(),
    )
    .expect("burst fleet");
    let burst = burst_sim
        .run(&burst_trace, &FleetFaultPlan::none(), &NULL_RECORDER)
        .expect("burst run");
    let burst_replay = burst_sim
        .run(&burst_trace, &FleetFaultPlan::none(), &NULL_RECORDER)
        .expect("burst replay");
    assert_eq!(
        burst, burst_replay,
        "burst run must replay byte-identically"
    );
    assert_exactly_once("burst", &burst, &burst_trace);
    assert_predictions("burst", &burst, &cache);
    if !opts.smoke {
        assert!(
            burst.replicas[2].served > 0,
            "a sustained burst past the FPGA tier must spill to the host replica"
        );
    }
    push(
        "burst",
        RoutingPolicy::PrecisionAware,
        &burst,
        &mut table,
        &mut scenarios,
    );

    // Scenario 4: a diurnal (sinusoidal) rate under round-robin with a
    // seeded random kill/recover schedule.
    let diurnal_trace = varying_trace(opts.seed ^ 0xD1A1, n_req, store.len(), |t| {
        let phase = 2.0 * std::f64::consts::PI * t / (0.5 * horizon).max(1e-9);
        0.45 * aggregate * (1.0 + 0.6 * phase.sin())
    });
    let diurnal_horizon = diurnal_trace.last().expect("non-empty").arrival_s;
    let diurnal_plan = FleetFaultPlan::seeded(opts.seed).with_random_kills(
        3,
        diurnal_horizon,
        2,
        0.1 * diurnal_horizon,
    );
    let diurnal_sim = FleetSim::new(
        specs.clone(),
        base_cfg(RoutingPolicy::RoundRobin),
        cache.clone(),
    )
    .expect("diurnal fleet");
    let diurnal = diurnal_sim
        .run(&diurnal_trace, &diurnal_plan, &NULL_RECORDER)
        .expect("diurnal run");
    assert_exactly_once("diurnal", &diurnal, &diurnal_trace);
    assert_predictions("diurnal", &diurnal, &cache);
    push(
        "diurnal",
        RoutingPolicy::RoundRobin,
        &diurnal,
        &mut table,
        &mut scenarios,
    );

    // Scenario 5: a replica stalls (50x slowdown) mid-run; hedged
    // retries rescue the stuck requests and the losing copies are
    // deduplicated, never double-served.
    let stall_cfg = base_cfg(RoutingPolicy::JoinShortestQueue).with_hedge_after_s(deadline_s);
    let stall_sim = FleetSim::new(specs.clone(), stall_cfg, cache.clone()).expect("stall fleet");
    let stall_plan = FleetFaultPlan::seeded(opts.seed)
        .with_slowdown(0, 0.3 * horizon, 50.0)
        .with_restore(0, 0.5 * horizon);
    let stall = stall_sim
        .run(&healthy_trace, &stall_plan, &NULL_RECORDER)
        .expect("stall run");
    assert_exactly_once("hedged_stall", &stall, &healthy_trace);
    assert_predictions("hedged_stall", &stall, &cache);
    assert!(
        stall.hedges > 0,
        "requests stuck on the stalled replica must hedge"
    );
    assert!(
        stall.hedge_wins > 0,
        "some hedge copies must win against the stall"
    );
    push(
        "hedged_stall",
        RoutingPolicy::JoinShortestQueue,
        &stall,
        &mut table,
        &mut scenarios,
    );

    table.print(&format!(
        "Fleet scenarios (2x FPGA + host-only, {n_req} requests each, \
         capacity {aggregate:.1} req/s, deadline {:.2} ms)",
        1e3 * deadline_s
    ));
    println!(
        "\none-killed p99 {:.3} ms vs healthy p99 {:.3} ms ({:.2}x, bound {p99_bound}x)",
        1e3 * killed_p99,
        1e3 * healthy_p99,
        killed_p99 / healthy_p99
    );

    mp_bench::write_record(
        "fleet_latency",
        &Record {
            seed: opts.seed,
            model: format!("{id:?}"),
            requests_per_scenario: n_req,
            replicas: replica_names,
            cap_fpga_rps: cap_fpga,
            cap_host_rps: cap_host,
            aggregate_capacity_rps: aggregate,
            deadline_s,
            healthy_p99_s: healthy_p99,
            one_killed_p99_s: killed_p99,
            killed_over_healthy_p99: killed_p99 / healthy_p99,
            p99_degradation_bound: p99_bound,
            healthy_counters,
            scenarios,
        },
    );
}
