//! Extension bench: the cost of **partial binarisation** (paper §II:
//! "non-binarised operations can also be extended to handle inputs and
//! outputs in inner layers resulting in a partially-binarised network",
//! and the future-work note on mixed precision in the FPGA).
//!
//! Holds the paper's ~430 img/s folding fixed and widens the inner-layer
//! activations from 1 to 8 bits, reporting the growth in stream-buffer
//! BRAM and (with an n-bit MAC costing ≈ n× an XNOR lane) datapath LUTs
//! — the area price of the accuracy a partially-binarised network would
//! recover.

use mp_bench::TextTable;
use mp_bnn::{BnnClassifier, FinnTopology};
use mp_fpga::datapath::DatapathModel;
use mp_fpga::folding::FoldingSearch;
use mp_fpga::memory::{EngineMemory, MemoryModel};
use serde::Serialize;

#[derive(Serialize)]
struct PartialRow {
    inner_activation_bits: usize,
    buffer_bram_18k: u64,
    parameter_bram_18k: u64,
    total_bram_18k: u64,
    datapath_luts: u64,
}

fn main() {
    let train_accuracy = std::env::args().any(|a| a == "--train");
    let topology = FinnTopology::paper();
    let base_engines = topology.engines();
    let folding = FoldingSearch::new(&base_engines).balanced(232_558);
    let model = MemoryModel::partitioned();

    let datapath = DatapathModel::default();
    let mut table = TextTable::new(&[
        "inner act bits",
        "buffer BRAM",
        "param BRAM",
        "total BRAM",
        "datapath LUTs",
    ]);
    let mut rows = Vec::new();
    for bits in [1usize, 2, 4, 8] {
        let engines = topology.engines_partially_binarised(bits);
        let memories: Vec<EngineMemory> = engines
            .iter()
            .zip(folding.engines())
            .map(|(spec, &f)| model.allocate_engine(spec, f))
            .collect();
        let buffers: u64 = memories.iter().map(|m| m.buffers.bram_18k).sum();
        let params: u64 = memories
            .iter()
            .map(|m| m.weights.bram_18k + m.thresholds.bram_18k)
            .sum();
        let luts = datapath.network_luts(&engines, folding.engines());
        table.row(&[
            bits.to_string(),
            buffers.to_string(),
            params.to_string(),
            (buffers + params).to_string(),
            luts.to_string(),
        ]);
        rows.push(PartialRow {
            inner_activation_bits: bits,
            buffer_bram_18k: buffers,
            parameter_bram_18k: params,
            total_bram_18k: buffers + params,
            datapath_luts: luts,
        });
    }
    table.print("Partial binarisation: area vs inner activation width (430 img/s folding)");
    println!(
        "\nweights stay single-bit, so parameter BRAM is constant; the stream \
         buffers and the compute datapath pay for wider activations — the \
         trade the paper defers to future work."
    );
    mp_bench::write_record("partial_binarisation", &rows);

    if train_accuracy {
        accuracy_recovery();
    } else {
        println!("\n(pass --train to also measure the accuracy each extra bit recovers)");
    }
}

/// Trains fully- and partially-binarised classifiers on the synthetic
/// dataset and reports the accuracy each extra activation bit recovers.
fn accuracy_recovery() {
    use mp_dataset::SynthSpec;
    use mp_nn::train::{evaluate, Adam, Trainer};
    use mp_tensor::init::TensorRng;

    let spec = SynthSpec::fast();
    let mut gen = spec.build().expect("spec valid");
    let train = gen.generate(1500).expect("generation");
    let test = gen.generate(500).expect("generation");
    let mut table = TextTable::new(&["activation bits", "test accuracy"]);
    let mut rows = Vec::new();
    for bits in [1usize, 2, 4] {
        let mut rng = TensorRng::seed_from(2018);
        let mut bnn =
            BnnClassifier::with_activation_bits(FinnTopology::scaled(16, 16, 2), bits, &mut rng)
                .expect("classifier builds");
        let mut trainer = Trainer::new(Adam::new(0.003), 32);
        let mut trng = TensorRng::seed_from(1);
        for _ in 0..10 {
            trainer
                .train_epoch(&mut bnn, train.images(), train.labels(), &mut trng)
                .expect("epoch");
        }
        let acc = evaluate(&mut bnn, test.images(), test.labels(), 100).expect("eval");
        table.row(&[bits.to_string(), format!("{:.1}%", 100.0 * acc)]);
        rows.push((bits, acc));
        eprintln!("trained {bits}-bit variant: {acc:.3}");
    }
    table.print("Accuracy recovered by partial binarisation (same budget, same seed)");
    mp_bench::write_record("partial_binarisation_accuracy", &rows);
}
