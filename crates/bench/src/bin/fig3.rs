//! Regenerates **Fig. 3**: performance (expected vs obtained img/s) and
//! BRAM/LUT utilisation for FINN configurations of increasing
//! parallelism on the ZC702, with the naive Vivado HLS memory
//! allocation.

use mp_bench::figures::{print_figure, sweep, FigRecord};

fn main() {
    let points = sweep(false);
    print_figure(
        "Fig. 3: performance and area vs total PE count (naive BRAM allocation)",
        &points,
    );
    let records: Vec<&FigRecord> = points.iter().map(|(_, r)| r).collect();
    mp_bench::write_record("fig3", &records);
}
