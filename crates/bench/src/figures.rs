//! Shared sweep machinery for Figs. 3 and 4.

use serde::Serialize;

use mp_bnn::FinnTopology;
use mp_fpga::{design::DesignPoint, device::Device, folding::FoldingSearch};

use crate::TextTable;

/// One x-axis point of Fig. 3/4.
#[derive(Debug, Clone, Serialize)]
pub struct FigRecord {
    /// Total PE count (x-axis).
    pub total_pe: usize,
    /// Analytic throughput, eqs. (3)–(5).
    pub expected_fps: f64,
    /// Throughput after transfer overhead (and partition penalty).
    pub obtained_fps: f64,
    /// BRAM-18K blocks.
    pub bram_18k: u64,
    /// BRAM utilisation of the ZC702, percent.
    pub bram_pct: f64,
    /// LUT utilisation, percent.
    pub lut_pct: f64,
    /// Parameter-memory storage efficiency.
    pub parameter_bram_efficiency: f64,
    /// Whether the design fits the ZC702.
    pub fits_device: bool,
}

/// Runs the Fig. 3/4 folding sweep over the paper's network.
pub fn sweep(partitioned: bool) -> Vec<(DesignPoint, FigRecord)> {
    let engines = FinnTopology::paper().engines();
    let device = Device::zc702();
    // Latency targets from ~25 kcycles (aggressive) to ~1 Mcycle (minimal
    // parallelism), covering the paper's 20–100 total-PE span.
    let foldings = FoldingSearch::new(&engines).sweep(25_000, 1_000_000, 16);
    foldings
        .into_iter()
        .map(|folding| {
            let p = DesignPoint::evaluate(&engines, &folding, &device, partitioned);
            let r = FigRecord {
                total_pe: p.total_pe,
                expected_fps: p.expected_fps,
                obtained_fps: p.obtained_fps,
                bram_18k: p.bram_18k,
                bram_pct: p.bram_pct,
                lut_pct: p.lut_pct,
                parameter_bram_efficiency: p.parameter_bram_efficiency,
                fits_device: p.fits(&device),
            };
            (p, r)
        })
        .collect()
}

/// Prints a Fig. 3/4 sweep as the figure's two panels in table form.
pub fn print_figure(title: &str, points: &[(DesignPoint, FigRecord)]) {
    let mut table = TextTable::new(&[
        "total PE",
        "expected img/s",
        "obtained img/s",
        "BRAM_18K",
        "BRAM %",
        "LUT %",
        "param BRAM eff",
        "fits ZC702",
    ]);
    for (_, r) in points {
        table.row(&[
            r.total_pe.to_string(),
            format!("{:.0}", r.expected_fps),
            format!("{:.0}", r.obtained_fps),
            r.bram_18k.to_string(),
            format!("{:.0}", r.bram_pct),
            format!("{:.0}", r.lut_pct),
            format!("{:.2}", r.parameter_bram_efficiency),
            if r.fits_device {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table.print(title);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_multiple_points() {
        let pts = sweep(false);
        assert!(pts.len() >= 5);
        // PE counts ascend.
        for pair in pts.windows(2) {
            assert!(pair[0].1.total_pe <= pair[1].1.total_pe);
        }
    }

    #[test]
    fn partitioned_sweep_uses_less_bram() {
        let naive = sweep(false);
        let part = sweep(true);
        let naive_total: u64 = naive.iter().map(|(_, r)| r.bram_18k).sum();
        let part_total: u64 = part.iter().map(|(_, r)| r.bram_18k).sum();
        assert!(part_total < naive_total);
    }
}
