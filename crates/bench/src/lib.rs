//! # mp-bench
//!
//! The experiment harness: one binary per table and figure of the
//! paper's evaluation, plus Criterion micro-benchmarks.
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — FINN engine topology and §III-A feature sizes |
//! | `fig3` | Fig. 3 — img/s and BRAM/LUT % vs total PE count (naive allocation) |
//! | `fig4` | Fig. 4 — the same sweep with block array partitioning |
//! | `fig5` | Fig. 5 — Softmax accuracy / F̄S / FS̄ vs DMU threshold |
//! | `table2` | Table II — the 0.84-threshold operating point |
//! | `table3` | Table III — host model layer listings and costs |
//! | `table4` | Table IV — standalone accuracy and img/s of A/B/C/FINN |
//! | `table5` | Table V — the multi-precision systems A/B/C + FINN |
//! | `eq_validation` | eqs. (1)–(2) vs the discrete-event pipeline |
//! | `batch_ablation` | the paper's batch-size claim (§III) |
//! | `autotune` | folding × precision Pareto front vs the shipped Fig. 3/4 sweeps |
//!
//! Trained-system binaries accept `--smoke` for a fast low-fidelity run
//! and honour `--seed N`. Every binary appends its rows to
//! `results/<name>.json` so EXPERIMENTS.md can cite exact numbers.

#![deny(deprecated)]

pub mod figures;

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

use mp_core::experiment::ExperimentConfig;

/// Parses the common `--smoke` / `--seed N` flags.
///
/// # Example
///
/// ```
/// use mp_bench::CliOptions;
///
/// let opts = CliOptions::parse_from(["--smoke", "--seed", "7"].iter().map(|s| s.to_string()));
/// assert!(opts.smoke);
/// assert_eq!(opts.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Use the tiny smoke profile instead of the fast profile.
    pub smoke: bool,
    /// Root experiment seed.
    pub seed: u64,
    /// Fail (exit non-zero) if the observability overhead gate trips;
    /// only the throughput bench reads this.
    pub gate_overhead: bool,
    /// Fail (exit non-zero) if the overlapped-executor gates trip
    /// (wall-clock vs serial two-phase, BNN single-core speedup); only
    /// the throughput bench reads this.
    pub gate_overlap: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            smoke: false,
            seed: 2018,
            gate_overhead: false,
            gate_overlap: false,
        }
    }
}

impl CliOptions {
    /// Parses options from process arguments.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses options from an explicit argument list.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--gate-overhead" => opts.gate_overhead = true,
                "--gate-overlap" => opts.gate_overlap = true,
                "--seed" => {
                    if let Some(v) = iter.next() {
                        opts.seed = v.parse().unwrap_or(opts.seed);
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// The experiment configuration these options select.
    pub fn experiment_config(&self) -> ExperimentConfig {
        if self.smoke {
            ExperimentConfig::smoke(self.seed)
        } else {
            ExperimentConfig::fast_profile(self.seed)
        }
    }
}

/// A plain-text table printer producing the rows the paper reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout under a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Writes an experiment record to `results/<name>.json` (best-effort:
/// failures are reported to stderr, not fatal, so harnesses still print
/// their tables on read-only filesystems).
pub fn write_record<T: Serialize>(name: &str, record: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(record) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("(record written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise record: {e}"),
    }
}

/// The `results/` directory next to the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_defaults() {
        let o = CliOptions::parse_from(Vec::<String>::new());
        assert!(!o.smoke);
        assert_eq!(o.seed, 2018);
    }

    #[test]
    fn cli_parses_flags() {
        let o = CliOptions::parse_from(
            [
                "--seed",
                "42",
                "--smoke",
                "--gate-overhead",
                "--gate-overlap",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert!(o.smoke);
        assert!(o.gate_overhead);
        assert!(o.gate_overlap);
        assert_eq!(o.seed, 42);
        assert_eq!(o.experiment_config().seed, 42);
    }

    #[test]
    fn cli_ignores_bad_seed() {
        let o = CliOptions::parse_from(["--seed", "zzz"].iter().map(|s| s.to_string()));
        assert_eq!(o.seed, 2018);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.825), "82.5%");
    }
}
