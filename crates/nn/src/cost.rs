//! Per-layer compute and memory accounting.
//!
//! The paper predicts host throughput from the computational load of each
//! Caffe network on the ARM Cortex-A9 (Table IV). [`LayerCost`] captures
//! the quantities that model needs: multiply–accumulate operations,
//! parameter count, and activation volume per single-image inference.

use std::iter::Sum;
use std::ops::Add;

use serde::{Deserialize, Serialize};

/// Compute/memory cost of one single-image inference through a layer.
///
/// # Example
///
/// ```
/// use mp_nn::LayerCost;
///
/// let conv = LayerCost::new(1_000_000, 1728, 64 * 30 * 30);
/// let fc = LayerCost::new(16_384, 16_448, 64);
/// let total = conv + fc;
/// assert_eq!(total.macs, 1_016_384);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerCost {
    /// Multiply–accumulate operations (one MAC = 2 FLOPs).
    pub macs: u64,
    /// Learnable parameters (weights + biases).
    pub params: u64,
    /// Output activation element count.
    pub activations: u64,
}

impl LayerCost {
    /// Creates a cost record.
    pub fn new(macs: u64, params: u64, activations: u64) -> Self {
        Self {
            macs,
            params,
            activations,
        }
    }

    /// Floating-point operations (2 per MAC).
    pub fn flops(&self) -> u64 {
        self.macs * 2
    }

    /// Parameter storage in bytes at 32-bit precision.
    pub fn param_bytes_f32(&self) -> u64 {
        self.params * 4
    }
}

impl Add for LayerCost {
    type Output = LayerCost;

    fn add(self, rhs: LayerCost) -> LayerCost {
        LayerCost {
            macs: self.macs + rhs.macs,
            params: self.params + rhs.params,
            activations: self.activations + rhs.activations,
        }
    }
}

impl Sum for LayerCost {
    fn sum<I: Iterator<Item = LayerCost>>(iter: I) -> LayerCost {
        iter.fold(LayerCost::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_and_sum() {
        let a = LayerCost::new(10, 20, 30);
        let b = LayerCost::new(1, 2, 3);
        assert_eq!(a + b, LayerCost::new(11, 22, 33));
        let total: LayerCost = [a, b, b].into_iter().sum();
        assert_eq!(total, LayerCost::new(12, 24, 36));
    }

    #[test]
    fn derived_quantities() {
        let c = LayerCost::new(5, 7, 0);
        assert_eq!(c.flops(), 10);
        assert_eq!(c.param_bytes_f32(), 28);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(LayerCost::default(), LayerCost::new(0, 0, 0));
    }
}
