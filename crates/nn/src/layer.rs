use std::fmt;

use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::LayerCost;

/// Whether a forward pass is part of training or inference.
///
/// Training mode enables stochastic behaviour (dropout masks, batch-norm
/// batch statistics) and caches the activations backpropagation needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Forward pass caches intermediates and uses batch statistics.
    Train,
    /// Forward pass uses running statistics; no dropout.
    Infer,
}

impl Mode {
    /// Returns `true` in [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// An object-safe neural-network layer with forward and backward passes.
///
/// Layers own their parameters and accumulated gradients. The container
/// ([`Network`](crate::Network)) drives the lifecycle:
/// `forward` → `backward` → optimizer calls [`Layer::visit_params`] to
/// update weights from gradients → [`Layer::zero_grads`].
///
/// `backward` may rely on state cached by the *most recent* `forward` in
/// [`Mode::Train`]; calling it in any other sequence is an error.
///
/// Layers are `Send + Sync`: [`Layer::infer`] takes `&self`, so a shared
/// network can run batch shards on several scoped threads at once.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Human-readable layer label (e.g. `"conv3x3-64"`).
    fn name(&self) -> String;

    /// Output shape for a given input shape, without running the layer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the layer cannot accept `input`.
    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError>;

    /// Runs the layer on a batch.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on a shape mismatch.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError>;

    /// Read-only inference pass.
    ///
    /// Must produce bit-identical output to `forward(input, Mode::Infer)`
    /// but never mutates the layer, so a shared `&Network` can serve many
    /// threads. Hot layers lower through the `_into` kernels in
    /// [`mp_tensor::linalg`]/[`mp_tensor::conv`], borrowing scratch space
    /// from `ws` instead of allocating per call.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on a shape mismatch.
    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError>;

    /// Backpropagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `grad_output` does not match the shape
    /// produced by the most recent training-mode [`Layer::forward`], or when
    /// no such forward pass has run.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError>;

    /// Visits each `(parameter, gradient)` pair for the optimizer.
    ///
    /// The default implementation visits nothing, which is correct for
    /// parameter-free layers.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        let _ = visitor;
    }

    /// Visits each parameter (and persistent statistic) tensor
    /// read-only, for analyses that scan a shared `&Network` — e.g.
    /// mp-verify's NaN/Inf taint pass. No gradients are visited.
    ///
    /// The default implementation visits nothing, which is correct for
    /// parameter-free layers.
    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        let _ = visitor;
    }

    /// Clears accumulated gradients.
    ///
    /// The default implementation does nothing, which is correct for
    /// parameter-free layers.
    fn zero_grads(&mut self) {}

    /// Compute/memory cost of one single-image inference through this layer
    /// for the given input shape (batch dimension ignored).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the layer cannot accept `input`.
    fn cost(&self, input: &Shape) -> Result<LayerCost, ShapeError> {
        // Parameter-free, compute-light layers default to activation-only
        // cost; compute-heavy layers override.
        let out = self.output_shape(input)?;
        Ok(LayerCost::new(0, 0, out.len() as u64))
    }
}

/// Helper shared by layers that cache their training-mode input.
pub(crate) fn cached<'t>(cache: &'t Option<Tensor>, layer: &str) -> Result<&'t Tensor, ShapeError> {
    cache.as_ref().ok_or_else(|| {
        ShapeError::new(
            layer,
            "backward called without a preceding training-mode forward",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Infer.is_train());
    }

    #[test]
    fn cached_reports_missing_forward() {
        let none: Option<Tensor> = None;
        let err = cached(&none, "relu").unwrap_err();
        assert!(err.to_string().contains("relu"));
        let some = Some(Tensor::zeros([1]));
        assert!(cached(&some, "relu").is_ok());
    }
}
