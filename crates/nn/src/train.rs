//! Minibatch SGD training.
//!
//! [`Sgd`] implements stochastic gradient descent with classical momentum
//! and decoupled L2 weight decay; [`Trainer`] drives epochs of shuffled
//! minibatches through a [`Network`] with softmax cross-entropy.

use mp_tensor::init::TensorRng;
use mp_tensor::{ShapeError, Tensor};

use crate::loss::{accuracy, softmax_cross_entropy};
use crate::{Mode, Network};

/// Anything trainable by [`Trainer`]: a forward/backward pass plus
/// parameter access.
///
/// [`Network`] implements this, as does the binarised classifier in the
/// `mp-bnn` crate (whose typed layer stages cannot live behind plain
/// `Box<dyn Layer>` because hardware export needs their concrete types).
pub trait Model {
    /// Forward pass in an explicit [`Mode`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes do not fit.
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError>;

    /// Backpropagates a loss gradient.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when no training-mode forward preceded this
    /// call or the gradient shape is wrong.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError>;

    /// Visits every `(parameter, gradient)` pair in a fixed order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Clears all accumulated gradients.
    fn zero_grads(&mut self);
}

impl Model for Network {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        Network::forward_mode(self, input, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        Network::backward(self, grad_output)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        Network::visit_params(self, visitor)
    }

    fn zero_grads(&mut self) {
        Network::zero_grads(self)
    }
}

/// SGD with momentum and L2 weight decay.
///
/// Velocity buffers are allocated lazily on the first [`Sgd::step`] and
/// matched to parameters by visit order, so one optimizer must stay with
/// one network.
///
/// # Example
///
/// ```
/// use mp_nn::train::Sgd;
///
/// let opt = Sgd::new(0.01).momentum(0.9).weight_decay(1e-4);
/// assert_eq!(opt.learning_rate(), 0.01);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient (0 disables momentum).
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update from the model's accumulated gradients, then
    /// clears them.
    pub fn step<M: Model + ?Sized>(&mut self, net: &mut M) {
        let lr = self.lr;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut index = 0usize;
        net.visit_params(&mut |param, grad| {
            if velocity.len() == index {
                velocity.push(Tensor::zeros(param.shape().clone()));
            }
            let v = &mut velocity[index];
            for ((v, &g), p) in v
                .iter_mut()
                .zip(grad.iter())
                .zip(param.as_mut_slice().iter_mut())
            {
                let g = g + wd * *p;
                *v = mu * *v - lr * g;
                *p += *v;
            }
            index += 1;
        });
        net.zero_grads();
    }
}

/// A parameter-update rule driven by accumulated gradients.
///
/// Implementations update every parameter visited by
/// [`Model::visit_params`] and then clear the gradients.
pub trait Optimizer {
    /// Applies one update from the model's accumulated gradients, then
    /// clears them.
    fn step<M: Model + ?Sized>(&mut self, net: &mut M)
    where
        Self: Sized;

    /// Updates the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;
}

impl Optimizer for Sgd {
    fn step<M: Model + ?Sized>(&mut self, net: &mut M) {
        Sgd::step(self, net)
    }

    fn set_learning_rate(&mut self, lr: f32) {
        Sgd::set_learning_rate(self, lr)
    }

    fn learning_rate(&self) -> f32 {
        Sgd::learning_rate(self)
    }
}

/// Adam (Kingma & Ba): adaptive per-parameter step sizes.
///
/// Binarised networks in particular need it — with plain SGD the latent
/// weights' updates are too small to ever flip a sign, which is why
/// BinaryNet (the paper's reference \[2\]) trains with Adam.
///
/// # Example
///
/// ```
/// use mp_nn::train::{Adam, Optimizer};
///
/// let opt = Adam::new(0.001);
/// assert_eq!(opt.learning_rate(), 0.001);
/// ```
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and the standard
    /// moment coefficients (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Overrides the moment coefficients.
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Applies one update from the model's accumulated gradients, then
    /// clears them.
    pub fn step<M: Model + ?Sized>(&mut self, net: &mut M) {
        self.step_count += 1;
        let lr = self.lr;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        let bias1 = 1.0 - b1.powi(self.step_count as i32);
        let bias2 = 1.0 - b2.powi(self.step_count as i32);
        let first = &mut self.first_moment;
        let second = &mut self.second_moment;
        let mut index = 0usize;
        net.visit_params(&mut |param, grad| {
            if first.len() == index {
                first.push(Tensor::zeros(param.shape().clone()));
                second.push(Tensor::zeros(param.shape().clone()));
            }
            let m = &mut first[index];
            let v = &mut second[index];
            for (((m, v), &g), p) in m
                .iter_mut()
                .zip(v.iter_mut())
                .zip(grad.iter())
                .zip(param.as_mut_slice().iter_mut())
            {
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let m_hat = *m / bias1;
                let v_hat = *v / bias2;
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            index += 1;
        });
        net.zero_grads();
    }
}

impl Optimizer for Adam {
    fn step<M: Model + ?Sized>(&mut self, net: &mut M) {
        Adam::step(self, net)
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Result of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean minibatch loss over the epoch.
    pub mean_loss: f32,
    /// Training accuracy over the epoch (measured on the fly).
    pub accuracy: f32,
}

/// Drives minibatch training of a classification [`Network`].
#[derive(Debug)]
pub struct Trainer<O: Optimizer = Sgd> {
    optimizer: O,
    batch_size: usize,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(optimizer: O, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            optimizer,
            batch_size,
        }
    }

    /// Mutable access to the optimizer (e.g. for LR schedules).
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.optimizer
    }

    /// Runs one epoch of shuffled minibatches.
    ///
    /// `images` is an `[N, …]` batch tensor whose leading axis indexes
    /// examples; `labels` are the class indices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on any shape inconsistency.
    pub fn train_epoch<M: Model + ?Sized>(
        &mut self,
        net: &mut M,
        images: &Tensor,
        labels: &[usize],
        rng: &mut TensorRng,
    ) -> Result<EpochStats, ShapeError> {
        let n = images.shape().dim(0);
        if n != labels.len() {
            return Err(ShapeError::new(
                "train_epoch",
                format!("{n} images vs {} labels", labels.len()),
            ));
        }
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut total_loss = 0.0f32;
        let mut batches = 0usize;
        let mut hits = 0usize;
        for chunk in order.chunks(self.batch_size) {
            let batch = gather_batch(images, chunk)?;
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            let logits = net.forward_mode(&batch, Mode::Train)?;
            let (loss, grad) = softmax_cross_entropy(&logits, &batch_labels)?;
            let preds = Network::argmax_rows(&logits)?;
            hits += preds
                .iter()
                .zip(&batch_labels)
                .filter(|(p, l)| p == l)
                .count();
            net.backward(&grad)?;
            self.optimizer.step(&mut *net);
            total_loss += loss;
            batches += 1;
        }
        Ok(EpochStats {
            mean_loss: total_loss / batches.max(1) as f32,
            accuracy: hits as f32 / n.max(1) as f32,
        })
    }

    /// Evaluates classification accuracy in inference mode.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on any shape inconsistency.
    pub fn evaluate<M: Model + ?Sized>(
        &self,
        net: &mut M,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<f32, ShapeError> {
        evaluate(net, images, labels, self.batch_size)
    }
}

/// Evaluates classification accuracy in inference mode, batched.
///
/// # Errors
///
/// Returns [`ShapeError`] on any shape inconsistency.
pub fn evaluate<M: Model + ?Sized>(
    net: &mut M,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32, ShapeError> {
    let n = images.shape().dim(0);
    if n != labels.len() {
        return Err(ShapeError::new(
            "evaluate",
            format!("{n} images vs {} labels", labels.len()),
        ));
    }
    let order: Vec<usize> = (0..n).collect();
    let mut hits = 0.0f32;
    for chunk in order.chunks(batch_size.max(1)) {
        let batch = gather_batch(images, chunk)?;
        let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward_mode(&batch, Mode::Infer)?;
        hits += accuracy(&logits, &batch_labels)? * chunk.len() as f32;
    }
    Ok(hits / n.max(1) as f32)
}

/// Gathers rows `indices` of an `[N, …]` tensor into a new leading axis.
pub(crate) fn gather_batch(images: &Tensor, indices: &[usize]) -> Result<Tensor, ShapeError> {
    let shape = images.shape();
    if shape.rank() < 2 {
        return Err(ShapeError::new(
            "gather_batch",
            format!("expected batched tensor, got {shape}"),
        ));
    }
    let n = shape.dim(0);
    let stride = shape.len() / n.max(1);
    let mut data = Vec::with_capacity(indices.len() * stride);
    for &i in indices {
        if i >= n {
            return Err(ShapeError::new(
                "gather_batch",
                format!("index {i} out of bounds for batch of {n}"),
            ));
        }
        data.extend_from_slice(&images.as_slice()[i * stride..(i + 1) * stride]);
    }
    let mut dims = shape.dims().to_vec();
    dims[0] = indices.len();
    Tensor::from_vec(dims, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_tensor::Shape;

    /// A linearly separable toy problem the network must learn quickly.
    fn toy_problem(rng: &mut TensorRng, n: usize) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let centre = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..4 {
                data.push(rng.next_gaussian(centre, 0.3));
            }
            labels.push(class);
        }
        (Tensor::from_vec([n, 4], data).unwrap(), labels)
    }

    #[test]
    fn adam_reduces_loss_on_toy_problem() {
        let mut rng = TensorRng::seed_from(46);
        let (x, y) = toy_problem(&mut rng, 64);
        let mut net = Network::builder(Shape::matrix(1, 4))
            .linear(8, &mut rng)
            .unwrap()
            .relu()
            .linear(2, &mut rng)
            .unwrap()
            .build();
        let mut trainer = Trainer::new(Adam::new(0.01), 16);
        let first = trainer.train_epoch(&mut net, &x, &y, &mut rng).unwrap();
        let mut last = first;
        for _ in 0..15 {
            last = trainer.train_epoch(&mut net, &x, &y, &mut rng).unwrap();
        }
        assert!(
            last.mean_loss < first.mean_loss * 0.5,
            "{first:?} -> {last:?}"
        );
        assert!(trainer.evaluate(&mut net, &x, &y).unwrap() > 0.9);
    }

    #[test]
    fn adam_moves_parameters_with_tiny_gradients() {
        // The property SGD lacks: normalised step sizes. A constant
        // tiny gradient should still move a parameter by ≈ lr per step.
        let mut rng = TensorRng::seed_from(47);
        let mut net = Network::builder(Shape::matrix(1, 1))
            .linear(1, &mut rng)
            .unwrap()
            .build();
        let mut before = Vec::new();
        net.visit_params(&mut |p, g| {
            before.extend_from_slice(p.as_slice());
            // Inject a minuscule constant gradient.
            g.map_inplace(|_| 1e-6);
        });
        let mut adam = Adam::new(0.01);
        Adam::step(&mut adam, &mut net);
        let mut after = Vec::new();
        net.visit_params(&mut |p, _| after.extend_from_slice(p.as_slice()));
        for (b, a) in before.iter().zip(&after) {
            let step = (b - a).abs();
            assert!(step > 1e-3, "Adam step {step} too small for lr 0.01");
        }
    }

    #[test]
    fn optimizer_trait_learning_rate_round_trip() {
        let mut sgd = Sgd::new(0.1);
        Optimizer::set_learning_rate(&mut sgd, 0.02);
        assert_eq!(Optimizer::learning_rate(&sgd), 0.02);
        let mut adam = Adam::new(0.001).betas(0.8, 0.95);
        Optimizer::set_learning_rate(&mut adam, 0.005);
        assert_eq!(Optimizer::learning_rate(&adam), 0.005);
    }

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let mut rng = TensorRng::seed_from(40);
        let (x, y) = toy_problem(&mut rng, 64);
        let mut net = Network::builder(Shape::matrix(1, 4))
            .linear(8, &mut rng)
            .unwrap()
            .relu()
            .linear(2, &mut rng)
            .unwrap()
            .build();
        let mut trainer = Trainer::new(Sgd::new(0.1).momentum(0.9), 16);
        let first = trainer.train_epoch(&mut net, &x, &y, &mut rng).unwrap();
        let mut last = first;
        for _ in 0..20 {
            last = trainer.train_epoch(&mut net, &x, &y, &mut rng).unwrap();
        }
        assert!(
            last.mean_loss < first.mean_loss * 0.5,
            "{first:?} -> {last:?}"
        );
        let acc = trainer.evaluate(&mut net, &x, &y).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn momentum_differs_from_plain_sgd() {
        let mut rng = TensorRng::seed_from(41);
        let (x, y) = toy_problem(&mut rng, 32);
        let build = |rng: &mut TensorRng| {
            Network::builder(Shape::matrix(1, 4))
                .linear(2, rng)
                .unwrap()
                .build()
        };
        let mut rng_a = TensorRng::seed_from(42);
        let mut rng_b = TensorRng::seed_from(42);
        let mut net_a = build(&mut rng_a);
        let mut net_b = build(&mut rng_b);
        let mut t_plain = Trainer::new(Sgd::new(0.05), 8);
        let mut t_momentum = Trainer::new(Sgd::new(0.05).momentum(0.9), 8);
        let mut rng1 = TensorRng::seed_from(43);
        let mut rng2 = TensorRng::seed_from(43);
        for _ in 0..3 {
            t_plain.train_epoch(&mut net_a, &x, &y, &mut rng1).unwrap();
            t_momentum
                .train_epoch(&mut net_b, &x, &y, &mut rng2)
                .unwrap();
        }
        // Networks should have diverged: compare first-layer weights.
        let mut wa = Vec::new();
        net_a.visit_params(&mut |p, _| wa.extend_from_slice(p.as_slice()));
        let mut wb = Vec::new();
        net_b.visit_params(&mut |p, _| wb.extend_from_slice(p.as_slice()));
        assert_ne!(wa, wb);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut rng = TensorRng::seed_from(44);
        let mut net = Network::builder(Shape::matrix(1, 4))
            .linear(2, &mut rng)
            .unwrap()
            .build();
        let mut norm_before = 0.0f32;
        net.visit_params(&mut |p, _| norm_before += p.iter().map(|v| v * v).sum::<f32>());
        // Step with zero gradients: only decay acts.
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.step(&mut net);
        let mut norm_after = 0.0f32;
        net.visit_params(&mut |p, _| norm_after += p.iter().map(|v| v * v).sum::<f32>());
        assert!(norm_after < norm_before);
    }

    #[test]
    fn gather_batch_selects_rows() {
        let x = Tensor::from_fn([4, 2], |i| i as f32);
        let b = gather_batch(&x, &[2, 0]).unwrap();
        assert_eq!(b.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(gather_batch(&x, &[4]).is_err());
        assert!(gather_batch(&Tensor::zeros([3]), &[0]).is_err());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = Trainer::new(Sgd::new(0.1), 0);
    }

    #[test]
    fn mismatched_labels_rejected() {
        let mut rng = TensorRng::seed_from(45);
        let mut net = Network::builder(Shape::matrix(1, 2))
            .linear(2, &mut rng)
            .unwrap()
            .build();
        let mut trainer = Trainer::new(Sgd::new(0.1), 4);
        let x = Tensor::zeros([4, 2]);
        assert!(trainer
            .train_epoch(&mut net, &x, &[0, 1], &mut rng)
            .is_err());
        assert!(evaluate(&mut net, &x, &[0], 4).is_err());
    }
}
