//! # mp-nn
//!
//! A from-scratch float32 convolutional neural network engine: the
//! "high-accuracy" half of the paper's multi-precision system, standing in
//! for Caffe + OpenBLAS on the ARM host.
//!
//! The engine provides:
//!
//! - [`Layer`]: an object-safe forward/backward layer trait,
//! - layer implementations in [`layers`]: convolution (im2col + GEMM, the
//!   same lowering FINN uses), max/average pooling, fully-connected, ReLU,
//!   sigmoid, local response normalisation (cuda-convnet style, for the
//!   paper's Model A), dropout, batch normalisation (consumed by the BNN's
//!   threshold folding) and softmax,
//! - [`Network`]: a sequential container with a builder,
//! - [`loss`]: softmax cross-entropy,
//! - [`train`]: minibatch SGD with momentum and weight decay,
//! - [`cost`]: per-layer multiply-accumulate / parameter / activation
//!   accounting used by the ARM host cost model in `mp-host`.
//!
//! # Example
//!
//! ```
//! use mp_nn::Network;
//! use mp_tensor::{init::TensorRng, Shape, Tensor};
//!
//! # fn main() -> Result<(), mp_tensor::ShapeError> {
//! let mut rng = TensorRng::seed_from(0);
//! let mut net = Network::builder(Shape::nchw(1, 1, 8, 8))
//!     .conv2d(4, 3, 1, 0, &mut rng)?
//!     .relu()
//!     .max_pool(2)?
//!     .flatten()
//!     .linear(10, &mut rng)?
//!     .build();
//! let x = Tensor::zeros(Shape::nchw(2, 1, 8, 8));
//! let scores = net.forward(&x)?;
//! assert_eq!(scores.shape().dims(), &[2, 10]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod layer;
mod network;

pub mod cost;
pub mod layers;
pub mod loss;
pub mod train;

pub use cost::LayerCost;
pub use layer::{Layer, Mode};
pub use network::{Network, NetworkBuilder};
pub use train::{Adam, Model, Optimizer, Sgd, Trainer};
