//! Training losses.
//!
//! The classification networks train with fused softmax cross-entropy
//! ([`softmax_cross_entropy`]); the DMU's correctness predictor trains
//! with binary cross-entropy over a sigmoid output
//! ([`binary_cross_entropy`]).

use mp_tensor::{ShapeError, Tensor};

use crate::layers::Softmax;

/// Fused softmax + cross-entropy loss over `[N, classes]` logits.
///
/// Returns `(mean loss, gradient w.r.t. logits)`. The gradient is the
/// familiar `(softmax(logits) − one_hot(labels)) / N`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `logits` is not rank-2, `labels.len()`
/// differs from the batch size, or any label is out of range.
///
/// # Example
///
/// ```
/// use mp_nn::loss::softmax_cross_entropy;
/// use mp_tensor::Tensor;
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let logits = Tensor::from_vec([1, 3], vec![10.0, -5.0, -5.0])?;
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0])?;
/// assert!(loss < 0.01); // confident and correct
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), ShapeError> {
    if logits.shape().rank() != 2 {
        return Err(ShapeError::new(
            "softmax_cross_entropy",
            format!("expected [N,classes] logits, got {}", logits.shape()),
        ));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if labels.len() != n {
        return Err(ShapeError::new(
            "softmax_cross_entropy",
            format!("{} labels for a batch of {n}", labels.len()),
        ));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(ShapeError::new(
            "softmax_cross_entropy",
            format!("label {bad} out of range for {k} classes"),
        ));
    }
    let probs = Softmax::eval(logits)?;
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    for (row, &label) in labels.iter().enumerate() {
        let p = probs.as_slice()[row * k + label].max(1e-12);
        loss -= p.ln();
        grad.as_mut_slice()[row * k + label] -= 1.0;
    }
    grad.scale(inv_n);
    Ok((loss * inv_n, grad))
}

/// Binary cross-entropy over already-sigmoided probabilities.
///
/// Returns `(mean loss, gradient w.r.t. the pre-sigmoid logit)` — the
/// gradient is computed for the fused sigmoid+BCE form `(p − t) / N`,
/// matching how the DMU trains its single sigmoid unit.
///
/// # Errors
///
/// Returns [`ShapeError`] when lengths differ or `probs` is not rank-1.
pub fn binary_cross_entropy(probs: &Tensor, targets: &[f32]) -> Result<(f32, Tensor), ShapeError> {
    if probs.shape().rank() != 1 || probs.len() != targets.len() {
        return Err(ShapeError::new(
            "binary_cross_entropy",
            format!(
                "expected rank-1 probabilities matching {} targets, got {}",
                targets.len(),
                probs.shape()
            ),
        ));
    }
    let n = probs.len().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(probs.shape().clone());
    for (i, (&p, &t)) in probs.iter().zip(targets).enumerate() {
        let p = p.clamp(1e-7, 1.0 - 1e-7);
        loss -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
        grad.as_mut_slice()[i] = (p - t) / n;
    }
    Ok((loss / n, grad))
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns [`ShapeError`] if `scores` is not rank-2 or sizes mismatch.
pub fn accuracy(scores: &Tensor, labels: &[usize]) -> Result<f32, ShapeError> {
    let preds = crate::Network::argmax_rows(scores)?;
    if preds.len() != labels.len() {
        return Err(ShapeError::new(
            "accuracy",
            format!("{} predictions vs {} labels", preds.len(), labels.len()),
        ));
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(hits as f32 / labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -1.0, 0.2, 2.0, 0.0, -0.5]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((grad.as_slice()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros([2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros([3]), &[0]).is_err());
    }

    #[test]
    fn bce_is_low_for_correct_confident() {
        let probs = Tensor::from_vec([2], vec![0.99, 0.01]).unwrap();
        let (loss, _) = binary_cross_entropy(&probs, &[1.0, 0.0]).unwrap();
        assert!(loss < 0.05);
        let (bad_loss, _) = binary_cross_entropy(&probs, &[0.0, 1.0]).unwrap();
        assert!(bad_loss > 2.0);
    }

    #[test]
    fn bce_gradient_sign() {
        let probs = Tensor::from_vec([2], vec![0.8, 0.3]).unwrap();
        let (_, grad) = binary_cross_entropy(&probs, &[1.0, 0.0]).unwrap();
        assert!(grad.as_slice()[0] < 0.0); // push logit up
        assert!(grad.as_slice()[1] > 0.0); // push logit down
    }

    #[test]
    fn accuracy_counts_hits() {
        let scores = Tensor::from_vec([3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        let acc = accuracy(&scores, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros([0, 2]), &[]).unwrap(), 0.0);
        assert!(accuracy(&scores, &[0, 1]).is_err());
    }
}
