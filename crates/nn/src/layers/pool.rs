use mp_tensor::conv::ConvGeometry;
use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::layer::{Layer, Mode};

fn check_nchw(input: &Shape, layer: &str) -> Result<(usize, usize, usize, usize), ShapeError> {
    if input.rank() != 4 {
        return Err(ShapeError::new(
            layer,
            format!("expected NCHW input, got {input}"),
        ));
    }
    Ok((input.dim(0), input.dim(1), input.dim(2), input.dim(3)))
}

/// 2-D max pooling.
///
/// # Example
///
/// ```
/// use mp_nn::{layers::MaxPool2d, Layer, Mode};
/// use mp_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut pool = MaxPool2d::new(2, 2)?;
/// let x = Tensor::from_fn(Shape::nchw(1, 1, 4, 4), |i| i as f32);
/// let y = pool.forward(&x, Mode::Infer)?;
/// assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
/// assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    geom: ConvGeometry,
    // For each output element, the linear index of its argmax in the input.
    cached_argmax: Option<(Shape, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a pooling layer with a square `kernel` and `stride`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Result<Self, ShapeError> {
        if kernel == 0 || stride == 0 {
            return Err(ShapeError::new(
                "MaxPool2d::new",
                "kernel and stride must be positive",
            ));
        }
        Ok(Self {
            geom: ConvGeometry::new(kernel, stride, 0),
            cached_argmax: None,
        })
    }

    /// The pooling geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("maxpool{0}x{0}", self.geom.kernel)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let (n, c, h, w) = check_nchw(input, "MaxPool2d")?;
        let oh = self.geom.output_dim(h);
        let ow = self.geom.output_dim(w);
        if oh == 0 || ow == 0 {
            return Err(ShapeError::new(
                "MaxPool2d",
                format!("window does not fit input {input}"),
            ));
        }
        Ok(Shape::nchw(n, c, oh, ow))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let out_shape = self.output_shape(input.shape())?;
        let (n, c, h, w) = check_nchw(input.shape(), "MaxPool2d")?;
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let mut out = vec![0.0f32; out_shape.len()];
        let mut argmax = vec![0usize; out_shape.len()];
        let xv = input.as_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                let obase = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = base + (oy * s + ky) * w + (ox * s + kx);
                                if xv[idx] > best {
                                    best = xv[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[obase + oy * ow + ox] = best;
                        argmax[obase + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        if mode.is_train() {
            self.cached_argmax = Some((input.shape().clone(), argmax));
        }
        Tensor::from_vec(out_shape, out)
    }

    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        let out_shape = self.output_shape(input.shape())?;
        let (n, c, h, w) = check_nchw(input.shape(), "MaxPool2d")?;
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let mut out = ws.take(out_shape.len());
        out.clear();
        out.resize(out_shape.len(), 0.0);
        let xv = input.as_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                let obase = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..k {
                            for kx in 0..k {
                                let v = xv[base + (oy * s + ky) * w + (ox * s + kx)];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        out[obase + oy * ow + ox] = best;
                    }
                }
            }
        }
        Tensor::from_vec(out_shape, out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let (in_shape, argmax) = self.cached_argmax.take().ok_or_else(|| {
            ShapeError::new(
                "MaxPool2d",
                "backward called without a preceding training-mode forward",
            )
        })?;
        if grad_output.len() != argmax.len() {
            return Err(ShapeError::new(
                "MaxPool2d",
                format!(
                    "gradient has {} elements, expected {}",
                    grad_output.len(),
                    argmax.len()
                ),
            ));
        }
        let mut grad_in = Tensor::zeros(in_shape);
        for (&g, &idx) in grad_output.iter().zip(&argmax) {
            grad_in.as_mut_slice()[idx] += g;
        }
        Ok(grad_in)
    }
}

/// 2-D average pooling.
#[derive(Debug)]
pub struct AvgPool2d {
    geom: ConvGeometry,
    cached_input_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average pooling layer with a square `kernel` and `stride`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Result<Self, ShapeError> {
        if kernel == 0 || stride == 0 {
            return Err(ShapeError::new(
                "AvgPool2d::new",
                "kernel and stride must be positive",
            ));
        }
        Ok(Self {
            geom: ConvGeometry::new(kernel, stride, 0),
            cached_input_shape: None,
        })
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!("avgpool{0}x{0}", self.geom.kernel)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let (n, c, h, w) = check_nchw(input, "AvgPool2d")?;
        let oh = self.geom.output_dim(h);
        let ow = self.geom.output_dim(w);
        if oh == 0 || ow == 0 {
            return Err(ShapeError::new(
                "AvgPool2d",
                format!("window does not fit input {input}"),
            ));
        }
        Ok(Shape::nchw(n, c, oh, ow))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let out_shape = self.output_shape(input.shape())?;
        let (n, c, h, w) = check_nchw(input.shape(), "AvgPool2d")?;
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let norm = 1.0 / (k * k) as f32;
        let mut out = vec![0.0f32; out_shape.len()];
        let xv = input.as_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                let obase = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += xv[base + (oy * s + ky) * w + (ox * s + kx)];
                            }
                        }
                        out[obase + oy * ow + ox] = acc * norm;
                    }
                }
            }
        }
        if mode.is_train() {
            self.cached_input_shape = Some(input.shape().clone());
        }
        Tensor::from_vec(out_shape, out)
    }

    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        let out_shape = self.output_shape(input.shape())?;
        let (n, c, h, w) = check_nchw(input.shape(), "AvgPool2d")?;
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let norm = 1.0 / (k * k) as f32;
        let mut out = ws.take(out_shape.len());
        out.clear();
        out.resize(out_shape.len(), 0.0);
        let xv = input.as_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                let obase = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += xv[base + (oy * s + ky) * w + (ox * s + kx)];
                            }
                        }
                        out[obase + oy * ow + ox] = acc * norm;
                    }
                }
            }
        }
        Tensor::from_vec(out_shape, out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let in_shape = self.cached_input_shape.take().ok_or_else(|| {
            ShapeError::new(
                "AvgPool2d",
                "backward called without a preceding training-mode forward",
            )
        })?;
        let (n, c, h, w) = check_nchw(&in_shape, "AvgPool2d")?;
        let oh = self.geom.output_dim(h);
        let ow = self.geom.output_dim(w);
        let want = Shape::nchw(n, c, oh, ow);
        if grad_output.shape() != &want {
            return Err(ShapeError::new(
                "AvgPool2d",
                format!("expected grad {want}, got {}", grad_output.shape()),
            ));
        }
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let norm = 1.0 / (k * k) as f32;
        let mut grad_in = Tensor::zeros(in_shape);
        let gv = grad_output.as_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                let obase = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gv[obase + oy * ow + ox] * norm;
                        for ky in 0..k {
                            for kx in 0..k {
                                grad_in.as_mut_slice()[base + (oy * s + ky) * w + (ox * s + kx)] +=
                                    g;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
///
/// Used by the paper's Models B and C, which end in a pooling layer that
/// reduces the final `1×1-conv-10` feature maps to class scores.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_input_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> String {
        "global-avgpool".to_owned()
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let (n, c, _, _) = check_nchw(input, "GlobalAvgPool")?;
        Ok(Shape::matrix(n, c))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let (n, c, h, w) = check_nchw(input.shape(), "GlobalAvgPool")?;
        let plane = h * w;
        let norm = 1.0 / plane as f32;
        let mut out = vec![0.0f32; n * c];
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                out[img * c + ch] = input.as_slice()[base..base + plane].iter().sum::<f32>() * norm;
            }
        }
        if mode.is_train() {
            self.cached_input_shape = Some(input.shape().clone());
        }
        Tensor::from_vec(Shape::matrix(n, c), out)
    }

    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        let (n, c, h, w) = check_nchw(input.shape(), "GlobalAvgPool")?;
        let plane = h * w;
        let norm = 1.0 / plane as f32;
        let mut out = ws.take(n * c);
        out.clear();
        out.resize(n * c, 0.0);
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                out[img * c + ch] = input.as_slice()[base..base + plane].iter().sum::<f32>() * norm;
            }
        }
        Tensor::from_vec(Shape::matrix(n, c), out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let in_shape = self.cached_input_shape.take().ok_or_else(|| {
            ShapeError::new(
                "GlobalAvgPool",
                "backward called without a preceding training-mode forward",
            )
        })?;
        let (n, c, h, w) = check_nchw(&in_shape, "GlobalAvgPool")?;
        if grad_output.shape() != &Shape::matrix(n, c) {
            return Err(ShapeError::new(
                "GlobalAvgPool",
                format!("expected grad [{n}×{c}], got {}", grad_output.shape()),
            ));
        }
        let plane = h * w;
        let norm = 1.0 / plane as f32;
        let mut grad_in = Tensor::zeros(in_shape);
        for img in 0..n {
            for ch in 0..c {
                let g = grad_output.as_slice()[img * c + ch] * norm;
                let base = (img * c + ch) * plane;
                for v in &mut grad_in.as_mut_slice()[base..base + plane] {
                    *v = g;
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        let x = Tensor::from_fn(Shape::nchw(1, 1, 4, 4), |i| i as f32);
        let y = pool.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_overlapping_windows() {
        let mut pool = MaxPool2d::new(3, 2).unwrap();
        let x = Tensor::from_fn(Shape::nchw(1, 1, 5, 5), |i| i as f32);
        let y = pool.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[12.0, 14.0, 22.0, 24.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        pool.forward(&x, Mode::Train).unwrap();
        let dx = pool
            .backward(&Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![5.0]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_means_windows() {
        let mut pool = AvgPool2d::new(2, 2).unwrap();
        let x = Tensor::from_fn(Shape::nchw(1, 1, 2, 2), |i| i as f32);
        let y = pool.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[1.5]);
    }

    #[test]
    fn avgpool_backward_distributes_evenly() {
        let mut pool = AvgPool2d::new(2, 2).unwrap();
        let x = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        pool.forward(&x, Mode::Train).unwrap();
        let dx = pool
            .backward(&Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![4.0]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avgpool_reduces_to_nc() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_fn(Shape::nchw(2, 3, 2, 2), |i| i as f32);
        let y = pool.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.as_slice()[0], 1.5); // mean of 0..=3
        assert_eq!(y.as_slice()[3], 13.5); // mean of 12..=15
    }

    #[test]
    fn global_avgpool_gradient_is_uniform() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        pool.forward(&x, Mode::Train).unwrap();
        let dx = pool
            .backward(&Tensor::from_vec([1, 1], vec![8.0]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn errors_on_bad_shapes() {
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        assert!(pool.forward(&Tensor::zeros([4, 4]), Mode::Infer).is_err());
        assert!(pool
            .forward(&Tensor::zeros(Shape::nchw(1, 1, 1, 1)), Mode::Infer)
            .is_err());
        assert!(pool
            .backward(&Tensor::zeros(Shape::nchw(1, 1, 1, 1)))
            .is_err());
        assert!(MaxPool2d::new(0, 1).is_err());
        assert!(AvgPool2d::new(2, 0).is_err());
    }
}
