use mp_tensor::init::TensorRng;
use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::layer::{cached, Layer, Mode};

/// Inverted dropout.
///
/// During training each activation is zeroed with probability `p` and the
/// survivors are scaled by `1/(1-p)`, so inference is the identity — the
/// convention used by Caffe for the paper's Models B and C.
///
/// # Example
///
/// ```
/// use mp_nn::{layers::Dropout, Layer, Mode};
/// use mp_tensor::Tensor;
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut drop = Dropout::new(0.5, 42)?;
/// let x = Tensor::ones([8]);
/// // Inference leaves activations untouched.
/// assert_eq!(drop.forward(&x, Mode::Infer)?, x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: TensorRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer that drops with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self, ShapeError> {
        if !(0.0..1.0).contains(&p) {
            return Err(ShapeError::new(
                "Dropout::new",
                format!("drop probability {p} must be in [0, 1)"),
            ));
        }
        Ok(Self {
            p,
            rng: TensorRng::seed_from(seed),
            cached_mask: None,
        })
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        format!("dropout({})", self.p)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        if !mode.is_train() || self.p == 0.0 {
            return Ok(input.clone());
        }
        let keep_scale = 1.0 / (1.0 - self.p);
        let p = self.p;
        let rng = &mut self.rng;
        let mask = Tensor::from_fn(input.shape().clone(), |_| {
            if rng.next_bool(p) {
                0.0
            } else {
                keep_scale
            }
        });
        let out = input.zip_with(&mask, |x, m| x * m)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        Ok(input.clone())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        if self.p == 0.0 {
            return Ok(grad_output.clone());
        }
        let mask = cached(&self.cached_mask, "Dropout")?;
        mask.zip_with(grad_output, |m, g| m * g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.9, 0).unwrap();
        let x = Tensor::ones([100]);
        assert_eq!(d.forward(&x, Mode::Infer).unwrap(), x);
    }

    #[test]
    fn training_zeroes_about_p_fraction() {
        let mut d = Dropout::new(0.5, 1).unwrap();
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let zeros = y.iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
        // survivors are scaled to keep the expectation
        assert!(y.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::ones([64]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let dx = d.backward(&Tensor::ones([64])).unwrap();
        for (a, b) in y.iter().zip(dx.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_probability_passes_through_training() {
        let mut d = Dropout::new(0.0, 3).unwrap();
        let x = Tensor::ones([8]);
        assert_eq!(d.forward(&x, Mode::Train).unwrap(), x);
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }
}
